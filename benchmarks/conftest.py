"""Shared helpers for the benchmark harness.

Every benchmark regenerates the rows/series of one table or figure of the
paper, prints them (visible with ``pytest -s`` or on failure) and writes
them to ``results/<experiment>.txt`` so the output survives the run.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

import pytest

from repro.metrics.report import format_table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "results")

#: Wall-time + message-count artifact for the fig6 tail benchmark, written
#: next to the repository root so the CI results-drift check (which covers
#: ``results/`` only) ignores its run-to-run timing noise.
BENCH_FIG6_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_fig6.json"
)
BENCH_FIG6_NODE = "test_bench_fig6_tail_percentiles"


def emit(name: str, rows: Sequence[Dict[str, object]], title: str, columns: Optional[List[str]] = None) -> str:
    """Format rows as a table, print it and persist it under ``results/``."""
    table = format_table(list(rows), columns=columns, title=title)
    print("\n" + table + "\n")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(table + "\n")
    return table


@pytest.fixture
def results_emitter():
    """Fixture exposing :func:`emit` to benchmarks."""
    return emit


# -- message-traffic reporting -------------------------------------------------
#
# Every simulator-backed experiment run records its per-kind message counts;
# a summary is printed in the terminal summary (uncaptured, so it shows up in
# CI logs next to the --durations wall times), making message-traffic
# regressions as visible as runtime regressions.

_TRAFFIC_LOG: List[Dict[str, object]] = []


def _record_traffic(config, result) -> None:
    _TRAFFIC_LOG.append(
        {
            "experiment": f"{config.protocol} f={config.faults} "
            f"clients={config.clients_per_site}",
            "messages": int(result.stats.get("messages_sent", 0)),
            "batches": int(result.stats.get("batches_sent", 0)),
            "deliveries": int(result.stats.get("deliveries", 0)),
            "commit_requests": int(result.stats.get("sent:MCommitRequest", 0)),
            "promise_messages": int(result.stats.get("sent:MPromises", 0)),
            "events": int(result.stats.get("events", 0)),
            "heap_ops": int(result.stats.get("heap_ops", 0)),
            "live_records": int(result.stats.get("live_records", 0)),
            "archived_records": int(result.stats.get("archived_records", 0)),
            "peak_live_per_key": int(result.stats.get("peak_live_per_key", 0)),
            "gc_collected": int(result.stats.get("gc_collected", 0)),
        }
    )


def pytest_configure(config):
    from repro.cluster.runner import EXPERIMENT_OBSERVERS

    if _record_traffic not in EXPERIMENT_OBSERVERS:
        EXPERIMENT_OBSERVERS.append(_record_traffic)


# -- BENCH_fig6.json artifact --------------------------------------------------
#
# The fig6 tail benchmark doubles as the perf-regression canary for the
# simulator hot path; its wall time and per-run message counts are written
# to BENCH_fig6.json so CI (and PR reviews) can diff the numbers without
# scraping pytest output.  The wire-codec microbenchmark contributes its
# ``codec_ns``/``encoded_bytes`` columns to the same artifact; partial runs
# (only fig6, or only the codec bench) merge into the existing file instead
# of dropping the other benchmark's columns.

_BENCH_FIG6: Dict[str, object] = {}
_CODEC_BENCH: Dict[str, object] = {}


@pytest.fixture
def codec_bench_recorder():
    """Fixture for the codec bench to publish its artifact columns."""

    def record(codec_ns: Dict[str, float], encoded_bytes: Dict[str, int]) -> None:
        _CODEC_BENCH["codec_ns"] = dict(sorted(codec_ns.items()))
        _CODEC_BENCH["encoded_bytes"] = dict(sorted(encoded_bytes.items()))

    return record


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    is_fig6 = BENCH_FIG6_NODE in item.nodeid
    traffic_start = len(_TRAFFIC_LOG) if is_fig6 else 0
    yield
    if is_fig6:
        _BENCH_FIG6["traffic"] = [dict(row) for row in _TRAFFIC_LOG[traffic_start:]]


def pytest_runtest_logreport(report):
    if report.when == "call" and BENCH_FIG6_NODE in report.nodeid:
        _BENCH_FIG6["nodeid"] = report.nodeid
        _BENCH_FIG6["wall_seconds"] = round(report.duration, 3)
        _BENCH_FIG6["outcome"] = report.outcome


def _write_bench_fig6_artifact() -> None:
    if "wall_seconds" not in _BENCH_FIG6 and not _CODEC_BENCH:
        return
    # Merge into the existing artifact so a partial run (only fig6, or only
    # the codec bench) keeps the other benchmark's columns.
    try:
        with open(BENCH_FIG6_PATH, encoding="utf-8") as handle:
            artifact = json.load(handle)
    except (OSError, ValueError):
        artifact = {}
    if "wall_seconds" in _BENCH_FIG6:
        traffic = _BENCH_FIG6.get("traffic", [])
        totals: Dict[str, int] = {}
        for row in traffic:
            for key, value in row.items():
                if key == "experiment":
                    continue
                if key == "peak_live_per_key":
                    # A high-water mark: the meaningful aggregate is the
                    # worst run, not the sum over runs.
                    totals[key] = max(totals.get(key, 0), int(value))
                else:
                    totals[key] = totals.get(key, 0) + int(value)
        # Peak RSS of the whole pytest process (KiB on Linux): the coarse
        # memory ceiling the CI gate enforces next to the per-structure
        # live/archive columns above.
        try:
            import resource

            peak_rss_kb = int(
                resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            )
        except Exception:
            peak_rss_kb = 0
        artifact.update(
            {
                "benchmark": _BENCH_FIG6.get("nodeid"),
                "outcome": _BENCH_FIG6.get("outcome"),
                "wall_seconds": _BENCH_FIG6.get("wall_seconds"),
                "peak_rss_kb": peak_rss_kb,
                "message_counts": traffic,
                "message_totals": totals,
            }
        )
    if _CODEC_BENCH:
        artifact["codec_ns"] = _CODEC_BENCH["codec_ns"]
        artifact["encoded_bytes"] = _CODEC_BENCH["encoded_bytes"]
    with open(BENCH_FIG6_PATH, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")


def pytest_terminal_summary(terminalreporter):
    _write_bench_fig6_artifact()
    if "wall_seconds" in _BENCH_FIG6 or _CODEC_BENCH:
        terminalreporter.section("BENCH_fig6.json")
        parts = []
        if "wall_seconds" in _BENCH_FIG6:
            parts.append(f"wall_seconds={_BENCH_FIG6['wall_seconds']}")
        if _CODEC_BENCH:
            parts.append(f"codec kinds={len(_CODEC_BENCH['codec_ns'])}")
        terminalreporter.write_line(
            f"  {' '.join(parts)} (artifact at {os.path.normpath(BENCH_FIG6_PATH)})"
        )
    if not _TRAFFIC_LOG:
        return
    totals: Dict[str, int] = {}
    for row in _TRAFFIC_LOG:
        for key, value in row.items():
            if key == "experiment":
                continue
            totals[key] = totals.get(key, 0) + int(value)
    terminalreporter.section("message traffic (per run)")
    for row in _TRAFFIC_LOG:
        parts = ", ".join(
            f"{key}={value}" for key, value in row.items() if key != "experiment"
        )
        terminalreporter.write_line(f"  {row['experiment']}: {parts}")
    terminalreporter.write_line(
        "  TOTAL: " + ", ".join(f"{key}={value}" for key, value in sorted(totals.items()))
    )
