"""Shared helpers for the benchmark harness.

Every benchmark regenerates the rows/series of one table or figure of the
paper, prints them (visible with ``pytest -s`` or on failure) and writes
them to ``results/<experiment>.txt`` so the output survives the run.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

import pytest

from repro.metrics.report import format_table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "results")


def emit(name: str, rows: Sequence[Dict[str, object]], title: str, columns: Optional[List[str]] = None) -> str:
    """Format rows as a table, print it and persist it under ``results/``."""
    table = format_table(list(rows), columns=columns, title=title)
    print("\n" + table + "\n")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(table + "\n")
    return table


@pytest.fixture
def results_emitter():
    """Fixture exposing :func:`emit` to benchmarks."""
    return emit
