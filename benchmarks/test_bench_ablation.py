"""Ablation benches for the design choices called out in DESIGN.md §6.

* fast-path condition: Tempo's ``count(max) >= f`` vs an EPaxos-style
  "all proposals equal" rule — measured as fast-path ratio under concurrent
  conflicting submissions;
* ack-broadcast optimisation: execution latency with and without letting
  fast-quorum members observe the fast-path commit directly;
* read/write awareness in dependency protocols: dependency-set sizes with
  and without the read optimisation (§3.3).
"""

from __future__ import annotations

from typing import Dict, List

from repro.cluster.config import ExperimentConfig
from repro.cluster.runner import run_experiment
from repro.core.commands import Partitioner
from repro.core.config import ProtocolConfig
from repro.core.process import TempoProcess
from repro.protocols.atlas import AtlasProcess
from repro.simulator.inline import RecordingNetwork


def _fast_path_ratio(faults: int, concurrent: int, epaxos_style: bool) -> float:
    """Fraction of concurrently submitted conflicting commands committed on
    the fast path, under the given fast-path rule."""
    config = ProtocolConfig(num_processes=5, faults=faults)
    partitioner = Partitioner(1)
    # Watermark GC off: the ratio below reads the per-command records after
    # settling, which collection would have dropped.
    processes = [
        TempoProcess(
            process_id, config, partitioner=partitioner, watermark_gc=False
        )
        for process_id in range(5)
    ]
    network = RecordingNetwork(processes)
    commands = []
    for index in range(concurrent):
        process = processes[index % 5]
        command = process.new_command(["hot"])
        process.submit(command, 0.0)
        commands.append(command)
    network.settle(rounds=15)
    fast = 0
    for command in commands:
        coordinator = processes[command.dot.source]
        record = coordinator._info[command.dot]
        proposals = list(record.proposals.values())
        if not proposals:
            continue
        top = max(proposals)
        if epaxos_style:
            taken = len(set(proposals)) == 1
        else:
            taken = sum(1 for value in proposals if value == top) >= faults
        if taken:
            fast += 1
    return fast / len(commands)


def test_bench_ablation_fast_path_condition(benchmark, results_emitter):
    def measure() -> List[Dict[str, object]]:
        rows = []
        for faults in (1, 2):
            tempo_rule = _fast_path_ratio(faults, concurrent=20, epaxos_style=False)
            equal_rule = _fast_path_ratio(faults, concurrent=20, epaxos_style=True)
            rows.append(
                {
                    "f": faults,
                    "tempo_rule_fast_ratio": round(tempo_rule, 2),
                    "all_equal_rule_fast_ratio": round(equal_rule, 2),
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    results_emitter(
        "ablation_fastpath",
        rows,
        "Ablation - Tempo fast-path rule vs EPaxos-style all-equal rule",
    )
    for row in rows:
        assert row["tempo_rule_fast_ratio"] >= row["all_equal_rule_fast_ratio"]
    # With f = 1 the Tempo rule always takes the fast path.
    assert float(rows[0]["tempo_rule_fast_ratio"]) == 1.0


def test_bench_ablation_ack_broadcast(benchmark, results_emitter):
    def measure() -> List[Dict[str, object]]:
        rows = []
        for enabled in (True, False):
            config = ExperimentConfig(
                protocol="tempo",
                num_sites=5,
                faults=1,
                clients_per_site=6,
                conflict_rate=0.02,
                duration_ms=2_000.0,
                warmup_ms=400.0,
                protocol_kwargs={"ack_broadcast": enabled},
            )
            result = run_experiment(config)
            rows.append(
                {
                    "ack_broadcast": enabled,
                    "mean_ms": round(result.mean_latency(), 1),
                    "p99_ms": round(result.percentile(99.0), 1),
                    "completed": result.completed,
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    results_emitter(
        "ablation_ack_broadcast",
        rows,
        "Ablation - execution latency with/without fast-quorum ack broadcast",
    )
    with_opt = next(row for row in rows if row["ack_broadcast"])
    without_opt = next(row for row in rows if not row["ack_broadcast"])
    assert float(with_opt["mean_ms"]) < float(without_opt["mean_ms"])


def test_bench_ablation_read_write_awareness(benchmark, results_emitter):
    def measure() -> List[Dict[str, object]]:
        rows = []
        for aware in (True, False):
            config = ProtocolConfig(num_processes=3, faults=1)
            partitioner = Partitioner(1)
            processes = [
                AtlasProcess(
                    process_id,
                    config,
                    partitioner=partitioner,
                    read_write_aware=aware,
                )
                for process_id in range(3)
            ]
            network = RecordingNetwork(processes)
            total_deps = 0
            commands = []
            for index in range(30):
                process = processes[index % 3]
                command = process.new_command(["hot"], read_only=(index % 2 == 0))
                process.submit(command, 0.0)
                commands.append(command)
                network.settle(rounds=3)
            for command in commands:
                total_deps += len(processes[0].committed_dependencies(command.dot))
            rows.append(
                {
                    "read_write_aware": aware,
                    "total_committed_deps": total_deps,
                    "avg_deps": round(total_deps / len(commands), 2),
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    results_emitter(
        "ablation_read_write",
        rows,
        "Ablation - dependency-set sizes with/without the read/write distinction",
    )
    aware = next(row for row in rows if row["read_write_aware"])
    unaware = next(row for row in rows if not row["read_write_aware"])
    assert int(aware["total_committed_deps"]) <= int(unaware["total_committed_deps"])
