"""Microbenchmark for the wire codecs: encode+decode cost per message kind.

Two outputs with very different stability requirements:

* **Timing** (``codec_ns`` per round-trip, derived ops/sec) is noisy and
  goes to ``BENCH_fig6.json`` — the artifact CI diffs by eye, never by
  byte.
* **Sizes** (measured frame bytes vs ``size_bytes()``, per kind) are
  deterministic and are emitted to ``results/wire_drift.txt`` so the
  epoch-2 invariant — the accounted size *is* the measured frame size,
  zero drift for every kind — is pinned by the CI results-drift check
  like every other figure.
"""

from __future__ import annotations

import time

from repro.metrics.report import format_table
from repro.wire import (
    decode_frame,
    encode_frame,
    encoded_size,
    sample_messages,
)
from repro.wire.drift import drift_rows, drifted_kinds

#: Round-trips timed per kind; enough to average out timer noise while the
#: whole sweep stays well under a second.
_ITERATIONS = 500


def test_bench_codec_round_trip(benchmark, codec_bench_recorder):
    samples = sample_messages()

    def sweep():
        per_kind = {}
        for kind, message in sorted(samples.items()):
            decoded = None
            start = time.perf_counter_ns()
            for _ in range(_ITERATIONS):
                decoded, _ = decode_frame(encode_frame(message))
            elapsed = time.perf_counter_ns() - start
            assert decoded == message, kind
            per_kind[kind] = elapsed / _ITERATIONS
        return per_kind

    per_kind = benchmark.pedantic(sweep, rounds=1, iterations=1)

    codec_ns = {kind: round(ns, 1) for kind, ns in per_kind.items()}
    encoded_bytes = {
        kind: encoded_size(message) for kind, message in samples.items()
    }
    codec_bench_recorder(codec_ns, encoded_bytes)

    rows = [
        {
            "kind": kind,
            "ns_per_roundtrip": f"{per_kind[kind]:.0f}",
            "ops_per_sec": f"{1e9 / per_kind[kind]:,.0f}",
            "frame_bytes": encoded_bytes[kind],
        }
        for kind in sorted(samples)
    ]
    print(
        "\n"
        + format_table(rows, title="Wire codec round-trip cost per kind")
        + "\n"
    )

    # Sanity gates: every kind must round-trip far below a millisecond —
    # the codec is charged on the runtime's per-message path.
    for kind, ns in per_kind.items():
        assert ns < 1_000_000, f"{kind} round-trip took {ns:.0f} ns"


def test_bench_codec_drift_report(results_emitter):
    """Deterministic measured-vs-estimated report (``results/wire_drift.txt``).

    Since the epoch-2 re-baseline ``size_bytes()`` *is* the exact frame
    length (``repro.core.wiresize``), so this report doubles as the
    exhaustive equality gate: every registered kind — including the
    post-epoch-1 additions ``MPromiseResync`` and ``MExecutedClock`` — must
    show zero drift, or the arithmetic size model has diverged from the
    codec.
    """
    samples = sample_messages()
    estimated = {}
    measured = {}
    for kind, message in samples.items():
        if kind == "MBatch":
            # The envelope has no size_bytes() of its own: the network
            # charges the exact inner frame sizes plus framing overhead.
            continue
        estimated[kind] = float(message.size_bytes())
        measured[kind] = float(encoded_size(message))

    rows = drift_rows(estimated, measured)
    display = [
        {
            "kind": row["kind"],
            "estimate_bytes": int(row["estimate_bytes"]),
            "measured_bytes": int(row["measured_bytes"]),
            "drift_pct": f"{row['drift_pct']:.1f}",
            "drifted": "yes" if row["drifted"] else "no",
            "corrected_estimate": int(row["corrected_estimate"]),
        }
        for row in rows
    ]
    results_emitter(
        "wire_drift",
        display,
        "Wire format - measured frame bytes vs size_bytes() estimate "
        "(canonical 100 B payload samples)",
    )

    # Epoch-2 equality gate: no kind may drift at all, and the accounted
    # size must match the measured frame byte for byte.
    assert not drifted_kinds(rows), f"drifted kinds: {sorted(drifted_kinds(rows))}"
    for kind in estimated:
        assert estimated[kind] == measured[kind], (
            f"{kind}: size_bytes()={estimated[kind]:.0f} != "
            f"encoded={measured[kind]:.0f}"
        )
