"""Crash-during-contention tail benchmark (commit-hint watchdog end-to-end).

A Tempo coordinator is crashed mid-run under the contended fig6 workload.
Commands it was coordinating are stranded mid-broadcast: fast-quorum members
self-commit from the ack broadcast, everyone else learns of the identifiers
only through promise broadcasts (commit hints) whose promised commit never
arrives — the exact path the commit-hint watchdog (``TempoProcess._hint_tick``)
escalates to a forced ``MCommitRequest``.  Meanwhile the stranded attached
promises freeze the stability frontier, stalling execution cluster-wide until
the partition leader recovers the commands (Algorithm 4).

The benchmark asserts the recovery story end to end: survivors converge on an
identical execution order with no pending commands, the latency tail is
bounded by the recovery timeout (plus a few wide-area round trips) rather
than unbounded, the median is unaffected, and the liveness machinery
(commit requests) demonstrably fired more than in the healthy twin run.
"""

from __future__ import annotations

from repro.cluster.config import ExperimentConfig
from repro.cluster.runner import run_experiment

#: Tolerated tail bound: recovery timeout (500 ms) + leader-election lag via
#: the pending watchdog (another timeout) + a few wide-area round trips.
TAIL_BOUND_MS = 2_000.0


def _config(**overrides) -> ExperimentConfig:
    base = dict(
        protocol="tempo",
        num_sites=5,
        faults=1,
        clients_per_site=8,
        conflict_rate=0.15,
        duration_ms=3_000.0,
        warmup_ms=500.0,
        seed=1,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def _row(name: str, result) -> dict:
    return {
        "scenario": name,
        "completed": result.completed,
        "p50": round(result.percentile(50.0), 1),
        "p95": round(result.percentile(95.0), 1),
        "p99": round(result.percentile(99.0), 1),
        "p99.9": round(result.percentile(99.9), 1),
        "commit_requests": int(result.stats.get("sent:MCommitRequest", 0.0)),
    }


def test_bench_crash_during_contention_tail(benchmark, results_emitter):
    def run_pair():
        healthy = run_experiment(_config())
        crashed = run_experiment(_config(crash_site_rank=0, crash_at_ms=1_200.0))
        return healthy, crashed

    healthy, crashed = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    results_emitter(
        "crash_tail",
        [_row("healthy", healthy), _row("coordinator crash @1.2s", crashed)],
        "Crash during contention - tail latency (ms), tempo f=1, 5 sites",
    )

    survivors = [
        process for process in crashed.deployment.processes if process.alive
    ]
    assert len(survivors) == 4

    # Recovery commits: every stranded command was recovered and executed,
    # and the survivors agree on one execution order.
    for process in survivors:
        assert process.pending_dots() == [], (
            f"process {process.process_id} still has pending commands"
        )
    orders = {tuple(process.executed_dots()) for process in survivors}
    assert len(orders) == 1, "survivors diverged on execution order"
    # The crashed process executed a strict prefix of the agreed order.
    crashed_process = next(
        process for process in crashed.deployment.processes if not process.alive
    )
    agreed = next(iter(orders))
    prefix = tuple(crashed_process.executed_dots())
    assert agreed[: len(prefix)] == prefix

    # Bounded tail: the stall is capped by the recovery machinery, not the
    # run length; the fast path (median) is unaffected.
    assert crashed.percentile(99.9) <= TAIL_BOUND_MS, _row("crash", crashed)
    assert crashed.percentile(99.9) > healthy.percentile(99.9), (
        "crash run should show the recovery stall in its tail"
    )
    assert abs(crashed.percentile(50.0) - healthy.percentile(50.0)) <= 25.0

    # The commit-hint watchdog / liveness path fired: stranded identifiers
    # forced extra MCommitRequests over the healthy twin, and no hint was
    # leaked (every hint either committed or escalated).
    assert crashed.stats["sent:MCommitRequest"] > healthy.stats["sent:MCommitRequest"]
    for process in survivors:
        assert not process._commit_hinted, (
            f"process {process.process_id} leaked commit hints"
        )

    # Progress still happened under the crash (clients at the four healthy
    # sites keep completing commands).
    assert crashed.completed >= healthy.completed * 0.4
