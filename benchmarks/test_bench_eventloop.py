"""Micro-benchmark of the simulator scheduler (pytest-benchmark timings).

Drives the timestamp-lane :class:`~repro.simulator.events.EventQueue`
through a fig6-shaped workload: delivery delays drawn round-robin from the
EC2 one-way latency set (plus the intra-site constant and the 5 ms tick),
so events cluster on repeated timestamps exactly as the wide-area
simulations produce them.  Tracked alongside ``BENCH_fig6.json``'s
``events``/``heap_ops`` columns so scheduler regressions are visible both
in isolation and end to end.
"""

from __future__ import annotations

from repro.simulator.events import EventKind, EventQueue

#: One-way delays of the fig6 deployments: EC2 site pairs (half the Table 2
#: pings), the intra-site constant, and the tick interval.
FIG6_DELAYS = (0.25, 5.0, 36.0, 39.0, 61.5, 70.5, 90.5, 91.5, 93.0, 95.0, 110.5, 169.0)

#: Events pushed through the scheduler per benchmark round.
OPS = 50_000


def drive_scheduler(queue: EventQueue, operations: int = OPS) -> int:
    """Closed-loop push/pop: every popped event reschedules a successor,
    with the delay chosen per *handling step* (as a broadcast does), so
    same-step successors land on a shared timestamp — the clustering the
    wide-area runs produce.  Mirrors the simulation loop's consumption
    pattern (``pop_lane`` + lane iteration)."""
    delays = FIG6_DELAYS
    delay_count = len(delays)
    schedule = queue.schedule_message
    # Seed: a small broadcast per "site pair" — 3 messages per delay.
    for index, delay in enumerate(delays):
        for replica in range(3):
            schedule(delay, 0, index * 3 + replica, None)
    processed = 0
    steps = 0
    while processed < operations:
        popped = queue.pop_lane()
        if popped is None:
            break
        time, lane = popped
        steps += 1
        at = time + delays[steps % delay_count]
        for _ in lane:
            processed += 1
            schedule(at, 0, processed, None)
    return processed


def test_bench_scheduler_fig6_shape(benchmark):
    def run():
        queue = EventQueue()
        return drive_scheduler(queue), queue

    processed, queue = benchmark(run)
    assert processed >= OPS  # the last lane may overshoot by its length
    # The scheduler's reason to exist: far fewer heap operations than
    # events.  On this workload events share lanes, so the ratio stays
    # clearly below the flat heap's 2 ops/event.
    assert queue.heap_ops < 1.2 * OPS


def test_bench_scheduler_single_instant_burst(benchmark):
    """N events at one instant must cost one heap op (plus retirement)."""

    def run():
        queue = EventQueue()
        schedule = queue.schedule_message
        for index in range(10_000):
            schedule(42.0, 0, index, None)
        drained = 0
        while queue.pop_lane() is not None:
            drained += 1
        return queue

    queue = benchmark(run)
    assert queue.heap_ops == 2

def test_bench_scheduler_validated_push_tick_chain(benchmark):
    """The validated ``push`` path, as the fused tick chain uses it."""

    def run():
        queue = EventQueue()
        now = 0.0
        for _ in range(10_000):
            queue.push(now + 5.0, EventKind.TICK)
            popped = queue.pop_lane()
            now = popped[0]
        return queue

    queue = benchmark(run)
    assert len(queue) == 0
