"""Benchmark regenerating Figures 2 and 3 (stability examples)."""

from __future__ import annotations

from repro.experiments import fig2_stability


def test_bench_fig2_stability_table(benchmark, results_emitter):
    report = benchmark.pedantic(fig2_stability.run, rounds=1, iterations=1)
    rows = report["figure2"]
    results_emitter(
        "fig2_stability",
        rows,
        "Figure 2 - stable timestamps per promise-set combination (r = 3)",
    )
    for row in rows:
        assert row["stable_timestamp"] == row["expected"]


def test_bench_fig3_comparison(benchmark, results_emitter):
    report = benchmark.pedantic(fig2_stability.run, rounds=1, iterations=1)
    tempo = report["figure3_tempo"]
    epaxos = report["figure3_epaxos"]
    caesar = report["figure3_caesar"]
    rows = [
        {
            "approach": "tempo (timestamp stability)",
            "progress": f"executes {len(tempo['executable'])} of 3 committed",
            "blocked_on_x": tempo["blocked_on_x"],
        },
        {
            "approach": "epaxos (dependency graph)",
            "progress": f"executes {len(epaxos['executable'])} of 3 committed",
            "blocked_on_x": epaxos["blocked_on_x"],
        },
        {
            "approach": "caesar (dependency stability)",
            "progress": f"commits {len(caesar['committed'])} of 4 proposed",
            "blocked_on_x": caesar["blocked_on_x"],
        },
    ]
    results_emitter(
        "fig3_comparison", rows, "Figure 3 - timestamp stability vs explicit dependencies"
    )
    # Tempo executes w and y despite x being uncommitted; the others stall.
    assert tempo["stable_timestamp"] == 2 and len(tempo["executable"]) == 2
    assert epaxos["blocked_on_x"] and not epaxos["executable"]
    assert caesar["blocked_on_x"] and not caesar["committed"]
