"""Benchmark regenerating Figure 5 (per-site latency / fairness).

Scaled-down simulator deployment (16 clients/site instead of 512); the
fairness comparison between leader-based and leaderless protocols is the
asserted shape.  Absolute Tempo latencies carry an extra stability delay in
the simulator (see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.experiments import fig5_fairness


def test_bench_fig5_per_site_latency(benchmark, results_emitter):
    options = fig5_fairness.Figure5Options(
        clients_per_site=8, duration_ms=2_500.0, warmup_ms=500.0
    )
    rows = benchmark.pedantic(fig5_fairness.run, args=(options,), rounds=1, iterations=1)
    sites = ["ireland", "n-california", "singapore", "canada", "sao-paulo"]
    results_emitter(
        "fig5_fairness",
        rows,
        "Figure 5 - per-site mean latency (ms), 5 sites, 2% conflicts",
        columns=["protocol"] + sites + ["average", "completed"],
    )
    by_protocol = {str(row["protocol"]): row for row in rows}

    # FPaxos is unfair: non-leader sites are far slower than the leader site.
    for name in ("fpaxos f=1", "fpaxos f=2"):
        ratio = fig5_fairness.fairness_ratio(by_protocol[name], sites)
        assert ratio > 2.0, f"{name} should be unfair across sites (got {ratio:.2f}x)"

    # Leaderless protocols are much fairer than FPaxos.
    for name in ("tempo f=1", "atlas f=1", "tempo f=2", "atlas f=2", "caesar f=2"):
        ratio = fig5_fairness.fairness_ratio(by_protocol[name], sites)
        assert ratio < 2.6, f"{name} should serve sites uniformly (got {ratio:.2f}x)"

    # The leader site of FPaxos is its fastest site (Ireland).
    fpaxos = by_protocol["fpaxos f=1"]
    assert float(fpaxos["ireland"]) == min(float(fpaxos[site]) for site in sites)

    # Every protocol actually completed work at every site.
    for row in rows:
        assert int(row["completed"]) > 0
