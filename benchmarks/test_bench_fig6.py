"""Benchmark regenerating Figure 6 (tail-latency percentiles).

The paper's qualitative claim: the latency tails of dependency-based
protocols (Atlas, EPaxos, Caesar) blow up under contention and load, while
Tempo's tail remains flat.  Client counts are scaled down and the conflict
rate scaled up to preserve the number of concurrently conflicting commands
(see EXPERIMENTS.md for the scaling argument).
"""

from __future__ import annotations

from repro.experiments import fig6_tail


def test_bench_fig6_tail_percentiles(benchmark, results_emitter):
    options = fig6_tail.Figure6Options(
        client_loads=(8, 16),
        conflict_rates=(0.15, 0.15),
        duration_ms=3_000.0,
        warmup_ms=500.0,
        protocols=(
            ("tempo", 1),
            ("tempo", 2),
            ("atlas", 1),
            ("atlas", 2),
            ("epaxos", 1),
            ("caesar", 2),
        ),
    )
    rows = benchmark.pedantic(fig6_tail.run, args=(options,), rounds=1, iterations=1)
    results_emitter(
        "fig6_tail",
        rows,
        "Figure 6 - latency percentiles (ms), 5 sites, contended workload",
    )
    by_key = {
        (str(row["protocol"]), int(row["clients_per_site"])): row for row in rows
    }

    for load in (8, 16):
        tempo1 = by_key[("tempo f=1", load)]
        tempo2 = by_key[("tempo f=2", load)]
        # Tempo's tail stays within a small factor of its median-ish p95.
        for tempo_row in (tempo1, tempo2):
            assert float(tempo_row["p99.9"]) <= 4.0 * float(tempo_row["p95.0"]), tempo_row
        # Dependency-based protocols exhibit a much longer tail than Tempo
        # under contention (the paper reports 1.4-14x at p99.9).
        worst_dep_tail = max(
            float(by_key[(name, load)]["p99.9"])
            for name in ("atlas f=1", "atlas f=2", "epaxos f=1", "caesar f=2")
        )
        assert worst_dep_tail > float(tempo1["p99.9"]), (
            "expected at least one dependency-based protocol to have a longer "
            "p99.9 tail than Tempo f=1"
        )

    # Load increase degrades the dependency-based tails more than Tempo's.
    atlas_growth = float(by_key[("atlas f=2", 16)]["p99.9"]) - float(
        by_key[("atlas f=2", 8)]["p99.9"]
    )
    tempo_growth = float(by_key[("tempo f=1", 16)]["p99.9"]) - float(
        by_key[("tempo f=1", 8)]["p99.9"]
    )
    assert atlas_growth >= tempo_growth - 50.0


def test_bench_fig6_traced_cell_is_consistent(monkeypatch):
    """One Figure 6 cell re-run with execution tracing: the recorded trace
    must satisfy every PSMR/Tempo invariant (per-key order agreement,
    timestamp monotonicity, execute-at-most-once, real-time order), and
    tracing must be observation-only — identical latency results to the
    untraced benchmark cell at the same parameters."""
    options = fig6_tail.Figure6Options(duration_ms=1_500.0, warmup_ms=300.0)
    baseline = fig6_tail.run_one("tempo", 1, 8, 0.15, options)
    monkeypatch.setenv("REPRO_TRACE_CHECK", "1")
    traced = fig6_tail.run_one("tempo", 1, 8, 0.15, options)
    assert traced == baseline, "tracing perturbed the simulation"
