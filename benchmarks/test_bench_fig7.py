"""Benchmark regenerating Figure 7 (throughput/latency under growing load).

Uses the calibrated resource model for the saturation ceilings, the analytic
latency model for the curves and asserts the paper's headline comparisons:
Tempo delivers 1.8x+ the throughput of Atlas and 3x+ the throughput of
FPaxos, is insensitive to the conflict rate, and the dependency-based
protocols degrade when contention rises from 2% to 10%.
"""

from __future__ import annotations

from repro.experiments import fig7_load


def test_bench_fig7_saturation_table(benchmark, results_emitter):
    rows = benchmark.pedantic(fig7_load.saturation_table, rounds=1, iterations=1)
    results_emitter(
        "fig7_saturation",
        rows,
        "Figure 7 - maximum throughput (K ops/s), 5 sites, 4KB payloads",
    )
    table = {
        (str(row["protocol"]), float(row["conflict_rate"])): float(row["max_kops"])
        for row in rows
    }
    speedups = fig7_load.speedups(rows)

    # Tempo's ceiling is unaffected by the conflict rate and by f.
    assert abs(table[("tempo f=1", 0.02)] - table[("tempo f=1", 0.10)]) < 1.0
    assert abs(table[("tempo f=1", 0.02)] - table[("tempo f=2", 0.02)]) < 25.0

    # Paper: Tempo is 1.8-3.4x Atlas and 4.3-5.1x FPaxos.
    assert speedups["tempo/atlas f=1@0.02"] > 1.5
    assert speedups["tempo/atlas f=1@0.1"] > 2.0
    assert speedups["tempo/fpaxos f=1@0.02"] > 3.0
    assert speedups["tempo/caesar f=2@0.1"] > 5.0

    # Contention degrades the dependency-based protocols and Caesar.
    assert table[("atlas f=1", 0.10)] < table[("atlas f=1", 0.02)]
    assert table[("caesar f=2", 0.10)] < 0.5 * table[("caesar f=2", 0.02)]
    # FPaxos is insensitive to contention.
    assert abs(table[("fpaxos f=1", 0.02)] - table[("fpaxos f=1", 0.10)]) < 1.0


def test_bench_fig7_latency_throughput_curves(benchmark, results_emitter):
    rows = benchmark.pedantic(
        fig7_load.latency_throughput_curves, rounds=1, iterations=1
    )
    results_emitter(
        "fig7_curves",
        [row for row in rows if row["conflict_rate"] == 0.02],
        "Figure 7 (top) - latency vs throughput as clients grow, 2% conflicts",
    )
    by_protocol = {}
    for row in rows:
        if row["conflict_rate"] != 0.02:
            continue
        by_protocol.setdefault(str(row["protocol"]), []).append(row)
    for protocol, points in by_protocol.items():
        points.sort(key=lambda point: point["clients_per_site"])
        throughputs = [float(point["throughput_kops"]) for point in points]
        latencies = [float(point["latency_ms"]) for point in points]
        # Throughput grows monotonically with offered load up to saturation.
        assert all(b >= a - 1e-6 for a, b in zip(throughputs, throughputs[1:]))
        # Latency is flat until saturation and then rises (hockey stick).
        assert latencies[-1] > latencies[0]
        # The knee of each curve approaches the protocol's ceiling.
        assert max(throughputs) <= max(float(p["throughput_kops"]) for p in points) + 1e-6


def test_bench_fig7_utilization_heatmap(benchmark, results_emitter):
    rows = benchmark.pedantic(fig7_load.heatmap, rounds=1, iterations=1)
    results_emitter(
        "fig7_heatmap",
        rows,
        "Figure 7 (heatmap) - hardware utilization at saturation, 2% conflicts",
    )
    by_protocol = {str(row["protocol"]): row for row in rows}
    # FPaxos saturates its leader (thread or NIC), with the rest idle-ish.
    assert by_protocol["fpaxos"]["bottleneck"] in ("net_out", "execution")
    # Atlas saturates the single-threaded execution while CPU stays low.
    assert by_protocol["atlas"]["bottleneck"] == "execution"
    assert float(by_protocol["atlas"]["cpu"]) < 70.0
    # Tempo saturates on overall CPU with high network usage.
    assert by_protocol["tempo"]["bottleneck"] == "cpu"
    assert float(by_protocol["tempo"]["net_out"]) > 40.0
