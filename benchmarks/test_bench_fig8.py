"""Benchmark regenerating Figure 8 (batching ON/OFF across payload sizes)."""

from __future__ import annotations

from repro.experiments import fig8_batching


def test_bench_fig8_batching(benchmark, results_emitter):
    rows = benchmark.pedantic(fig8_batching.run, rounds=1, iterations=1)
    results_emitter(
        "fig8_batching",
        rows,
        "Figure 8 - max throughput (K ops/s) with batching OFF/ON",
    )
    gains = fig8_batching.batching_gains(rows)

    # Batching boosts the leader-based protocol a lot at small payloads...
    assert gains["fpaxos f=1@256B"] > 3.0
    # ...but does not help once FPaxos is network-bound at large payloads.
    assert gains["fpaxos f=1@4096B"] < 1.2
    # The benefit for leaderless Tempo is much more limited.
    assert gains["tempo f=1@256B"] < gains["fpaxos f=1@256B"]
    assert gains["tempo f=1@4096B"] < gains["tempo f=1@256B"]

    # Even with batching enabled, Tempo matches or outperforms FPaxos.
    by_key = {(row["protocol"], row["payload_bytes"]): row for row in rows}
    for payload in (256, 1024, 4096):
        tempo_on = float(by_key[("tempo f=1", payload)]["batching_on_kops"])
        fpaxos_on = float(by_key[("fpaxos f=1", payload)]["batching_on_kops"])
        assert tempo_on >= fpaxos_on
