"""Benchmark regenerating Figure 9 and the §6.4 tail-latency comparison
(partial replication, YCSB+T, Tempo vs Janus*)."""

from __future__ import annotations

from repro.experiments import fig9_partial


def test_bench_fig9_partial_replication_throughput(benchmark, results_emitter):
    rows = benchmark.pedantic(fig9_partial.run, rounds=1, iterations=1)
    results_emitter(
        "fig9_partial",
        rows,
        "Figure 9 - max throughput (K ops/s) with 2/4/6 shards, 3 sites per shard",
    )
    by_key = {(int(row["shards"]), float(row["zipf"])): row for row in rows}

    # Tempo scales with the number of shards (genuine partial replication).
    for zipf in (0.5, 0.7):
        assert (
            by_key[(2, zipf)]["tempo_kops"]
            < by_key[(4, zipf)]["tempo_kops"]
            < by_key[(6, zipf)]["tempo_kops"]
        )
        # Tempo is unaffected by contention.
        assert by_key[(2, 0.5)]["tempo_kops"] == by_key[(2, 0.7)]["tempo_kops"]

    for (shards, zipf), row in by_key.items():
        w0 = float(row["janus_w0_kops"])
        w5 = float(row["janus_w5_kops"])
        w50 = float(row["janus_w50_kops"])
        tempo = float(row["tempo_kops"])
        # Janus* degrades as the write ratio grows.
        assert w0 > w5 > w50
        # Tempo is close to Janus*'s best case (read-only workload C)...
        assert tempo > 0.8 * w0
        # ...and far ahead of the update-heavy workload A (paper: 2-16x).
        assert float(row["speedup_vs_w50"]) > 2.0
        if zipf == 0.7:
            assert float(row["speedup_vs_w50"]) > 5.0

    # Contention hurts Janus* but not Tempo.
    assert (
        by_key[(6, 0.7)]["janus_w5_kops"] < by_key[(6, 0.5)]["janus_w5_kops"]
    )


def test_bench_fig9_tail_latency(benchmark, results_emitter):
    # Scaled-down contention: the paper's scenario (6 shards, zipf 0.7,
    # w = 5%, thousands of clients) is shrunk to 3 shards and tens of
    # clients; the key space and write ratio are adjusted so the number of
    # concurrently conflicting commands is preserved (see EXPERIMENTS.md).
    rows = benchmark.pedantic(
        fig9_partial.tail_latency_comparison,
        kwargs={"num_shards": 3, "zipf": 0.7, "write_ratio": 0.30,
                "clients_per_site": 10, "duration_ms": 2_500.0, "keys_per_shard": 20},
        rounds=1,
        iterations=1,
    )
    results_emitter(
        "fig9_tail",
        rows,
        "§6.4 - tail latency under partial replication (scaled-down simulator run)",
    )
    by_protocol = {str(row["protocol"]): row for row in rows}
    assert int(by_protocol["tempo"]["completed"]) > 0
    assert int(by_protocol["janus"]["completed"]) > 0
    # The dependency-tracking tail carries over to partial replication:
    # Janus*'s p99.99 exceeds Tempo's.
    assert float(by_protocol["janus"]["p99.99_ms"]) > float(
        by_protocol["tempo"]["p99.99_ms"]
    )
