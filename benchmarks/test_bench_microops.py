"""Micro-benchmarks of the core data structures (pytest-benchmark timings).

These are not figures from the paper; they track the cost of the hot
operations of the library (promise insertion, stability queries, dependency
graph execution, clock operations) so regressions are visible.
"""

from __future__ import annotations

from repro.core.clock import LogicalClock
from repro.core.identifiers import Dot
from repro.core.promises import Promise, PromiseSet
from repro.kvstore.store import KeyValueStore
from repro.core.commands import Command
from repro.protocols.depgraph import DependencyGraph


def test_bench_promise_set_insertion(benchmark):
    def insert():
        promises = PromiseSet()
        for process in range(5):
            for timestamp in range(1, 501):
                promises.add(Promise(process, timestamp))
        return promises

    promises = benchmark(insert)
    assert promises.highest_contiguous_promise(0) == 500


def test_bench_stability_query(benchmark):
    promises = PromiseSet()
    for process in range(5):
        for timestamp in range(1, 2001):
            promises.add(Promise(process, timestamp))

    result = benchmark(promises.stable_timestamp, range(5))
    assert result == 2000


def test_bench_clock_proposals(benchmark):
    def run():
        clock = LogicalClock()
        for index in range(1, 1001):
            clock.proposal(index * 2)
        return clock

    clock = benchmark(run)
    assert clock.value == 2000


def test_bench_dependency_graph_execution(benchmark):
    def run():
        graph = DependencyGraph()
        previous = None
        for index in range(1, 501):
            dot = Dot(0, index)
            deps = {previous} if previous is not None else set()
            graph.commit(dot, deps, sequence=index)
            previous = dot
        return graph.execute_ready()

    executed = benchmark(run)
    assert len(executed) == 500


def test_bench_kvstore_apply(benchmark):
    def run():
        store = KeyValueStore()
        for index in range(1, 1001):
            store.apply(Command.write(Dot(0, index), [f"k{index % 50}"]))
        return store

    store = benchmark(run)
    assert len(store.applied_commands()) == 1000
