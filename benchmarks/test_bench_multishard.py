"""Benchmark: multi-shard (partial replication) fig5/fig6 variant.

The paper's full-replication contention results (Figures 5 and 6) carry
over to partial replication (§6.4): Tempo stays flat because it is genuine
— ordering a command only involves the shards it accesses — while Janus*
pays cross-shard dependency tracking.  This variant runs the contended
microbenchmark on a 2-shard deployment with two-key commands, so a
fraction of the commands genuinely spans both shards.
"""

from __future__ import annotations

from repro.experiments import fig6_tail


def test_bench_fig6_multishard_tail(benchmark, results_emitter):
    options = fig6_tail.MultiShardOptions(
        num_shards=2,
        client_loads=(8,),
        conflict_rates=(0.15,),
        duration_ms=2_500.0,
        warmup_ms=500.0,
    )
    rows = benchmark.pedantic(
        fig6_tail.run_multishard, args=(options,), rounds=1, iterations=1
    )
    results_emitter(
        "fig6_multishard",
        rows,
        "Figure 6 variant - latency percentiles (ms), 3 sites, 2 shards, "
        "two-key commands, contended workload",
    )
    by_protocol = {str(row["protocol"]): row for row in rows}
    tempo = by_protocol["tempo f=1"]
    janus = by_protocol["janus f=1"]
    # Both deployments make progress on the sharded workload.
    assert int(tempo["completed"]) > 100, tempo
    assert int(janus["completed"]) > 100, janus
    # The dependency-based baseline pays for cross-shard dependency
    # tracking under contention: its tail is no better than Tempo's.
    assert float(janus["p99.9"]) >= float(tempo["p99.9"]), (tempo, janus)
