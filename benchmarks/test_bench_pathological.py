"""Benchmark regenerating the §D pathological scenarios."""

from __future__ import annotations

from repro.experiments import pathological


def test_bench_pathological_schedule(benchmark, results_emitter):
    rows = benchmark.pedantic(pathological.run, kwargs={"rounds": 8}, rounds=1, iterations=1)
    results_emitter(
        "pathological",
        rows,
        "§D - adversarial round-robin schedule (3 processes, all commands conflict)",
    )
    by_protocol = {str(row["protocol"]): row for row in rows}

    # Tempo keeps committing and executing while the schedule runs.
    assert int(by_protocol["tempo"]["committed_during"]) > 0
    assert int(by_protocol["tempo"]["executed_during"]) > 0

    # EPaxos executes nothing during the schedule and builds a strongly
    # connected component that grows with the schedule length.
    assert int(by_protocol["epaxos"]["executed_during"]) == 0
    assert int(by_protocol["epaxos"]["largest_component"]) >= 12

    # Caesar commits nothing during the schedule: replies are blocked by the
    # wait condition.
    assert int(by_protocol["caesar"]["committed_during"]) == 0
    assert int(by_protocol["caesar"]["blocked_replies"]) > 0

    # Once the adversary relents, liveness is restored everywhere.
    for row in rows:
        assert int(row["executed_final"]) == int(row["submitted"])


def test_bench_pathological_component_growth(benchmark, results_emitter):
    """EPaxos' largest component grows linearly with the schedule length."""

    def measure():
        rows = []
        for rounds in (4, 8, 12):
            report = pathological.replay_schedule("epaxos", rounds=rounds)
            rows.append(
                {
                    "rounds": rounds,
                    "submitted": report.submitted,
                    "largest_component": report.largest_component,
                    "executed_during": report.executed_during,
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    results_emitter(
        "pathological_growth",
        rows,
        "§D - EPaxos dependency-component growth with schedule length",
    )
    sizes = [int(row["largest_component"]) for row in rows]
    assert sizes[0] < sizes[1] < sizes[2]
    assert all(int(row["executed_during"]) == 0 for row in rows)
