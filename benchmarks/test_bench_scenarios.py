"""Fault-injection campaign: the trace-certified scenario matrix.

Runs the full adversarial grid of :mod:`repro.experiments.scenarios` —
crash-site/time sweep, crash/restart, partition/heal, flaky links,
message-class-targeted loss and Zipfian skew, for every protocol — with
execution tracing forced on, so every row of
``results/scenario_matrix.txt`` certifies that the run's invariants held
(``run_experiment`` raises on any trace violation).

The matrix doubles as the CI regression gate for the unhappy paths:

* every cell whose fault plan can lose or delay traffic *asserts*
  convergence inside ``run_cell`` (no stuck commands, one agreed execution
  order per shard) — the reliable-delivery layer flips the formerly
  stranded restart/partition/flaky/targeted cells; only the baselines'
  unrecoverable coordinator crashes still report ``converged=no``;
* the promoted worst cells (Tempo's crash and partition cells, whose
  recovery stalls dominate the grid) additionally gate their p99.9 under
  ``WORST_CELL_TAIL_BOUND_MS``;
* the emitted table is deterministic byte-for-byte, so the results-drift
  CI job diffs it like every other golden figure.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.scenarios import (
    WORST_CELL_TAIL_BOUND_MS,
    ScenarioOptions,
    build_matrix,
    run_cell,
)


@pytest.fixture(autouse=True)
def _force_trace_check(monkeypatch):
    """Every cell runs under the trace checker, whatever the environment."""
    monkeypatch.setitem(os.environ, "REPRO_TRACE_CHECK", "1")


def test_bench_scenario_matrix(benchmark, results_emitter):
    cells = build_matrix(ScenarioOptions())

    # Coverage floor: the campaign must sweep >= 3 protocols x >= 4 fault
    # shapes (the zipf control rides along as the fifth).
    protocols = {cell.protocol for cell in cells}
    shapes = {cell.shape for cell in cells}
    assert len(protocols) >= 3, protocols
    assert len(shapes) >= 4, shapes

    rows = benchmark.pedantic(
        lambda: [run_cell(cell) for cell in cells], rounds=1, iterations=1
    )
    results_emitter(
        "scenario_matrix",
        rows,
        "Fault-injection scenario matrix - trace-certified, "
        "p50/p99/p99.9 latency (ms), stuck commands on alive replicas",
    )

    # Every protocol with a liveness story converged in every cell that
    # requires it (run_cell already asserted; spot-check the table too).
    by_cell = {(row["scenario"], row["protocol"]): row for row in rows}
    for cell in cells:
        row = by_cell[(cell.name, cell.protocol)]
        if cell.requires_convergence:
            assert row["converged"] == "yes", row
            assert row["stuck"] == 0, row
        if cell.tail_gated:
            assert float(row["p99.9"]) <= WORST_CELL_TAIL_BOUND_MS, row

    # The MStable send-once gap is closed: the cross-shard stability
    # watchdog re-solicits the lost notifications, so the targeted loss
    # cell drains completely once the window lifts.
    mstable = by_cell[("mstable-loss/x-shard", "tempo")]
    assert mstable["converged"] == "yes" and mstable["stuck"] == 0, mstable

    # The reliable-delivery layer retransmits the baselines' commit
    # broadcasts until acked, so sustained targeted loss no longer
    # strands work on them.
    for protocol in ("atlas", "epaxos"):
        loss = by_cell[("commit-loss/p0.3", protocol)]
        assert loss["stuck"] == 0 and loss["converged"] == "yes", loss

    # Crash/restart: every restarted replica catches up — Tempo via its
    # liveness machinery, the baselines via commit retransmission and
    # coordinator re-solicitation — AND the watermark GC, stalled while
    # the peer was down, resumed collecting after the catch-up.
    restart_cells = [cell for cell in cells if cell.shape == "restart"]
    assert restart_cells, "restart shape missing from the matrix"
    for cell in restart_cells:
        row = by_cell[(cell.name, cell.protocol)]
        assert row["converged"] == "yes" and row["stuck"] == 0, row
        assert row["gc"] > 0, row

    # The baselines' unrecoverable coordinator crash stays honestly
    # reported: crash-only plans keep the reliability layer off, and the
    # dead coordinator's quorum state is not reconstructible.
    for protocol in ("atlas", "epaxos"):
        crashed = by_cell[("crash@s0/t800", protocol)]
        assert crashed["stuck"] > 0 and crashed["converged"] == "no", crashed
