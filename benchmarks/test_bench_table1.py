"""Benchmark regenerating Table 1 (fast-path examples)."""

from __future__ import annotations

from repro.experiments import table1_fastpath


def test_bench_table1_fast_path(benchmark, results_emitter):
    rows = benchmark.pedantic(table1_fastpath.run, rounds=1, iterations=1)
    results_emitter(
        "table1_fastpath",
        rows,
        "Table 1 - Tempo fast-path examples (r = 5)",
    )
    for row in rows:
        assert row["fast_path(analytic)"] == row["expected_fast_path"]
        assert row["fast_path(simulated)"] == row["expected_fast_path"]
    # Example a: fast path taken even though proposals do not match.
    example_a = next(row for row in rows if row["example"] == "a")
    assert example_a["match"] is False and example_a["fast_path(simulated)"] is True
