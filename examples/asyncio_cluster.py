#!/usr/bin/env python3
"""Run Tempo as a real asyncio cluster (no simulator).

Each replica runs as an asyncio task with its own inbox; messages travel
over in-memory channels with a configurable artificial latency.  A small
bank-transfer workload is executed concurrently and the replicated stores
are checked for convergence.

Run with::

    python examples/asyncio_cluster.py
"""

from __future__ import annotations

import asyncio
import time

from repro.runtime import AsyncCluster, AsyncClusterOptions


async def run() -> None:
    options = AsyncClusterOptions(
        protocol="tempo",
        num_processes=3,
        faults=1,
        latency_seconds=0.002,  # 2 ms one-way artificial latency
    )
    async with AsyncCluster(options) as cluster:
        started = time.monotonic()
        accounts = ["alice", "bob", "carol"]
        # 30 concurrent transfers, many touching the same accounts.
        keys_list = [[accounts[i % 3], accounts[(i + 1) % 3]] for i in range(30)]
        replies = await cluster.submit_many(keys_list)
        elapsed = time.monotonic() - started
        print(f"executed {len(replies)} transfers in {elapsed * 1000:.0f} ms")

        # Give the background promise exchange a moment, then verify that all
        # replicas hold exactly the same state.
        await asyncio.sleep(0.3)
        print(f"per-replica executed counts: {cluster.executed_counts()}")
        print(f"replicated stores agree: {cluster.stores_agree()}")
        for account in accounts:
            print(f"  {account} last written by command {cluster.value_of(account)}")


def main() -> None:
    asyncio.run(run())


if __name__ == "__main__":
    main()
