#!/usr/bin/env python3
"""Fault tolerance: crash a coordinator and recover its command.

The example submits a command, crashes its coordinator before the commit is
disseminated, and shows the recovery protocol (Algorithm 4) taking over from
another replica: the command is committed with a consistent timestamp and
executed by every surviving replica.

Run with::

    python examples/fault_tolerance_recovery.py
"""

from __future__ import annotations

from repro.core.commands import Partitioner
from repro.core.config import ProtocolConfig
from repro.core.process import TempoProcess
from repro.kvstore.store import KeyValueStore
from repro.simulator.inline import RecordingNetwork


def main() -> None:
    config = ProtocolConfig(num_processes=5, faults=1)
    partitioner = Partitioner(1)
    stores = {}
    processes = []
    for process_id in range(5):
        store = KeyValueStore()
        stores[process_id] = store
        processes.append(
            TempoProcess(
                process_id,
                config,
                partitioner=partitioner,
                apply_fn=store.apply,
                # Disable the ack-broadcast optimisation so the crash really
                # leaves the command undecided (worst case for recovery).
                ack_broadcast=False,
            )
        )
    network = RecordingNetwork(processes)

    # 1. Process 0 coordinates a command.
    coordinator = processes[0]
    command = coordinator.new_command(["ledger"])
    coordinator.submit(command, 0.0)
    print(f"process 0 submitted {command.dot}")

    # 2. The proposal round reaches the fast quorum ...
    network.step(0.0)
    # ... but the coordinator crashes before sending any MCommit.
    coordinator.crash()
    coordinator.outbox.clear()
    for process in processes:
        process.set_alive_view(0, False)
    print("process 0 crashed before committing")

    # 3. Without recovery nothing commits.
    network.settle(rounds=5)
    committed = [
        process.process_id
        for process in processes[1:]
        if process.committed_timestamp(command.dot) is not None
    ]
    print(f"committed at {committed or 'no replica'} before recovery")

    # 4. The new leader (process 1) recovers the command.
    recoverer = processes[1]
    print("process 1 takes over as coordinator and runs recovery ...")
    recoverer.recover(command.dot, 0.0)
    network.settle(rounds=20)

    timestamps = {
        process.process_id: process.committed_timestamp(command.dot)
        for process in processes[1:]
    }
    print(f"committed timestamps after recovery: {timestamps}")
    assert len(set(timestamps.values())) == 1

    executed = [
        process.process_id
        for process in processes[1:]
        if command.dot in process.executed_dots()
    ]
    print(f"executed at surviving replicas: {executed}")
    recovery_messages = sorted(
        {kind for _, _, kind in network.log if kind.startswith("MRec")}
    )
    print(f"recovery messages exchanged: {recovery_messages}")
    print("the command survived the coordinator crash ✔")


if __name__ == "__main__":
    main()
