#!/usr/bin/env python3
"""Geo-replication: compare per-site latency of Tempo, Atlas and FPaxos.

Reproduces a scaled-down version of the paper's Figure 5 scenario: five EC2
regions (with the real ping latencies of Table 2), closed-loop clients at
every site, a 2% conflict rate, and three protocols.  Leader-based FPaxos
serves clients near its leader quickly and everyone else slowly; the
leaderless protocols serve all sites uniformly.

Run with::

    python examples/geo_replication_latency.py
"""

from __future__ import annotations

from repro.cluster import ExperimentConfig, run_experiment
from repro.metrics.report import format_table

SITES = ["ireland", "n-california", "singapore", "canada", "sao-paulo"]


def main() -> None:
    rows = []
    for protocol, faults in (("tempo", 1), ("atlas", 1), ("fpaxos", 1)):
        config = ExperimentConfig(
            protocol=protocol,
            num_sites=5,
            faults=faults,
            clients_per_site=8,
            conflict_rate=0.02,
            duration_ms=2_500.0,
            warmup_ms=500.0,
        )
        print(f"running {protocol} (f={faults}) ...")
        result = run_experiment(config)
        row = {"protocol": f"{protocol} f={faults}"}
        for site, mean in result.site_mean_latency().items():
            row[site] = round(mean, 1)
        row["average"] = round(result.mean_latency(), 1)
        row["unfairness"] = round(
            max(result.site_mean_latency().values())
            / max(1e-9, min(result.site_mean_latency().values())),
            2,
        )
        rows.append(row)

    print()
    print(
        format_table(
            rows,
            columns=["protocol"] + SITES + ["average", "unfairness"],
            title="Per-site mean latency (ms) - scaled-down Figure 5",
        )
    )
    print(
        "\nFPaxos favours clients co-located with its leader (Ireland); the "
        "leaderless protocols offer a similar quality of service everywhere."
    )


if __name__ == "__main__":
    main()
