#!/usr/bin/env python3
"""Partial replication: YCSB+T transactions over multiple shards.

Deploys Tempo and Janus* over 3 shards replicated at 3 sites (the paper's
§6.4 setting, scaled down), drives them with two-key zipfian YCSB+T
transactions, and compares mean and tail latency.  It also prints the
modelled maximum-throughput comparison of Figure 9.

Run with::

    python examples/partial_replication_ycsb.py
"""

from __future__ import annotations

from repro.cluster import ExperimentConfig, run_experiment
from repro.experiments import fig9_partial
from repro.metrics.report import format_table

SITES = ("ireland", "n-california", "singapore")


def run_simulated_comparison() -> None:
    rows = []
    for protocol in ("tempo", "janus"):
        config = ExperimentConfig(
            protocol=protocol,
            num_sites=3,
            num_shards=3,
            clients_per_site=8,
            workload="ycsbt",
            zipf=0.7,
            write_ratio=0.30,
            keys_per_shard=50,
            duration_ms=2_500.0,
            warmup_ms=500.0,
            sites=SITES,
        )
        print(f"running {protocol} over 3 shards ...")
        result = run_experiment(config)
        rows.append(
            {
                "protocol": protocol,
                "mean_ms": round(result.mean_latency(), 1),
                "p99_ms": round(result.percentile(99.0), 1),
                "p99.99_ms": round(result.percentile(99.99), 1),
                "completed": result.completed,
            }
        )
    print()
    print(
        format_table(
            rows,
            title="YCSB+T latency, 3 shards x 3 sites, zipf=0.7 (simulator)",
        )
    )


def print_throughput_model() -> None:
    rows = fig9_partial.run()
    print()
    print(
        format_table(
            rows,
            title="Figure 9 (modelled): max throughput (K ops/s), Tempo vs Janus*",
        )
    )
    print(
        "\nTempo is unaffected by contention and write ratio; Janus* degrades "
        "as writes and zipf skew grow (2-16x in the paper's update-heavy mix)."
    )


def main() -> None:
    run_simulated_comparison()
    print_throughput_model()


if __name__ == "__main__":
    main()
