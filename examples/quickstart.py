#!/usr/bin/env python3
"""Quickstart: replicate a key-value store with Tempo on three processes.

The example builds three Tempo replicas connected by an in-memory network,
submits a handful of commands (some of them conflicting), and shows that all
replicas execute the same commands in the same order and converge to the
same store contents.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.commands import Partitioner
from repro.core.config import ProtocolConfig
from repro.core.process import TempoProcess
from repro.kvstore.store import KeyValueStore
from repro.simulator.inline import InlineNetwork


def main() -> None:
    # 1. Configuration: three replicas, tolerating one failure.
    config = ProtocolConfig(num_processes=3, faults=1)
    partitioner = Partitioner(num_partitions=1)

    # 2. One Tempo process plus one key-value store per replica.
    stores = {}
    processes = []
    for process_id in range(config.num_processes):
        store = KeyValueStore()
        stores[process_id] = store
        processes.append(
            TempoProcess(
                process_id,
                config,
                partitioner=partitioner,
                apply_fn=store.apply,
            )
        )
    network = InlineNetwork(processes)

    # 3. Submit commands at different replicas; "account" commands conflict.
    submissions = [
        (0, ["account"]),
        (1, ["account"]),
        (2, ["balance-2"]),
        (0, ["balance-0"]),
        (2, ["account"]),
    ]
    commands = []
    for process_id, keys in submissions:
        process = processes[process_id]
        command = process.new_command(keys)
        process.submit(command, 0.0)
        commands.append(command)
        print(f"submitted {command.dot} at process {process_id} for keys {sorted(keys)}")

    # 4. Let the protocol run until quiescence.
    network.settle(rounds=15)

    # 5. Every replica committed every command with the same timestamp ...
    print("\ncommitted timestamps (identical at every replica):")
    for command in commands:
        timestamps = {
            process.committed_timestamp(command.dot) for process in processes
        }
        assert len(timestamps) == 1
        print(f"  {command.dot}: timestamp {timestamps.pop()}")

    # 6. ... executed them in the same (timestamp) order ...
    print("\nexecution order (identical at every replica):")
    orders = {tuple(str(dot) for dot in process.executed_dots()) for process in processes}
    assert len(orders) == 1
    print("  " + " -> ".join(orders.pop()))

    # 7. ... and the replicated stores converged.
    snapshots = {tuple(sorted(store.snapshot().items())) for store in stores.values()}
    assert len(snapshots) == 1
    print("\nreplicated store contents:")
    for key, value in sorted(stores[0].snapshot().items()):
        print(f"  {key} = {value}")
    print("\nall replicas agree ✔")


if __name__ == "__main__":
    main()
