"""Setuptools shim so `pip install -e .` works without PEP-517 build isolation
(the execution environment has no network access and an older setuptools)."""

from setuptools import setup

setup()
