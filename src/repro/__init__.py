"""Tempo reproduction: efficient replication via timestamp stability.

Top-level convenience re-exports of the most commonly used pieces of the
library.  See README.md for a tour and DESIGN.md for the full inventory.
"""

from repro.core.commands import Command, Partitioner
from repro.core.config import ProtocolConfig
from repro.core.process import TempoProcess
from repro.kvstore.store import KeyValueStore

__version__ = "1.0.0"

__all__ = [
    "Command",
    "KeyValueStore",
    "Partitioner",
    "ProtocolConfig",
    "TempoProcess",
    "__version__",
]
