"""Correctness analysis: the executable specification of the reproduction.

Three pillars (see ``docs/correctness_spec.md``):

* :mod:`repro.analysis.trace` / :mod:`repro.analysis.consistency` — record
  per-replica execution traces behind
  ``ExperimentConfig.record_execution_trace`` and assert the Tempo/PSMR
  invariants (per-key order agreement, timestamp monotonicity,
  execute-at-most-once, real-time order against client windows).
* :mod:`repro.analysis.smallmodel` — exhaustive DFS over all delivery-order
  interleavings of a bounded schedule (TLA+-style state enumeration) for
  the Tempo commit/recovery path and Caesar's wait condition.
* :mod:`repro.analysis.lint` — AST-based source gates, runnable as
  ``python -m repro.analysis.lint``.

The analysis layer deliberately reads protocol internals (``_info`` tables,
promise frontiers): it is the auditor, not part of the protocol surface.
"""

from repro.analysis.consistency import ConsistencyReport, Violation, check_trace
from repro.analysis.trace import ExecutionTraceRecorder, TraceEvent

__all__ = [
    "ConsistencyReport",
    "ExecutionTraceRecorder",
    "TraceEvent",
    "Violation",
    "check_trace",
]
