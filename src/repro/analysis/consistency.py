"""Consistency checks over recorded execution traces.

Five invariants, together an executable form of the correctness argument of
the paper (PSMR, §2; Tempo ordering, §3):

1. **Execute-at-most-once** — no replica executes the same identifier twice.
2. **Per-key order agreement** — replicas of one partition execute the
   *conflicting* commands on any key in the same relative order (compared
   on the identifiers both replicas executed, so run-end cutoffs and
   crashes do not produce false positives).

Ordering invariants apply to PSMR's conflict relation (§3.3): two commands
conflict on a key only if at least one **writes** it.  Read-read pairs are
legitimately unordered — the read/write-aware dependency protocols (Atlas,
EPaxos, Janus*) record no dependency between two reads and their replicas
may interleave them differently.
3. **Per-key timestamp monotonicity** — a replica of a timestamp-ordered
   protocol (Tempo, Caesar) executes the commands touching any one key in
   strictly increasing ``(timestamp, id)`` order; an inversion is exactly
   the footprint of a premature-stability bug.  The invariant is per key
   because only conflicting commands are ordered: Caesar's wait condition
   lets non-conflicting commands execute in either order.
4. **Commit-timestamp agreement** — all replicas that executed an
   identifier observed the same committed timestamp for it.
5. **Real-time order** — if command ``a`` completed at its client before
   command ``b`` was submitted and the two conflict (share a key), no
   replica executes ``b`` before ``a``.

All checks operate on the :class:`~repro.analysis.trace.ExecutionTraceRecorder`
data only — they never re-run the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.identifiers import Dot


@dataclass(frozen=True)
class Violation:
    """One invariant violation found in a trace."""

    code: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.code}] {self.detail}"


@dataclass
class ConsistencyReport:
    """Outcome of checking one trace."""

    violations: List[Violation] = field(default_factory=list)
    events: int = 0
    processes: int = 0
    commands: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        return (
            f"trace check: {status} — {self.events} executions across "
            f"{self.processes} processes, {self.commands} commands"
        )

    def raise_if_violations(self) -> None:
        if self.violations:
            lines = "\n".join(str(violation) for violation in self.violations)
            raise AssertionError(f"{self.summary()}\n{lines}")


def check_trace(trace) -> ConsistencyReport:
    """Run every consistency check over a recorded trace."""
    report = ConsistencyReport(
        events=trace.event_count(),
        processes=len(trace.events_by_process),
        commands=len(
            {event.dot for events in trace.events_by_process.values() for event in events}
            | set(trace.windows)
        ),
    )
    violations = report.violations
    _check_at_most_once(trace, violations)
    _check_partition_order(trace, violations)
    _check_timestamp_monotonicity(trace, violations)
    _check_timestamp_agreement(trace, violations)
    _check_real_time_order(trace, violations)
    return report


# -- individual checks -----------------------------------------------------------


def _check_at_most_once(trace, violations: List[Violation]) -> None:
    for process_id, events in trace.events_by_process.items():
        seen = set()
        for event in events:
            if event.dot in seen:
                violations.append(
                    Violation(
                        "execute-twice",
                        f"process {process_id} executed {event.dot} more than once",
                    )
                )
            seen.add(event.dot)


def _writes_key(event, key: str) -> bool:
    """Whether the command of ``event`` writes ``key`` (conservatively
    ``True`` when the event carries no write-key information)."""
    writes = getattr(event, "write_keys", None)
    return True if writes is None else key in writes


def _per_key_sequences(trace) -> Dict[str, Dict[int, List[Tuple[Dot, bool]]]]:
    """``key -> process -> [(dot, writes_key)] executed touching the key``."""
    sequences: Dict[str, Dict[int, List[Tuple[Dot, bool]]]] = {}
    for process_id, events in trace.events_by_process.items():
        for event in events:
            for key in event.keys:
                sequences.setdefault(key, {}).setdefault(process_id, []).append(
                    (event.dot, _writes_key(event, key))
                )
    return sequences


def _check_partition_order(trace, violations: List[Violation]) -> None:
    """Replicas of one partition agree on the per-key *conflict* order.

    Per key and replica pair, restricted to the identifiers both executed:
    the writes must appear in the same order, and every read must see the
    same number of preceding writes (i.e. every read-write pair is ordered
    the same way).  Read-read pairs are unordered by design.
    """
    sequences = _per_key_sequences(trace)
    partitions = trace.partitions
    for key, per_process in sorted(sequences.items()):
        by_partition: Dict[int, List[Tuple[int, List[Tuple[Dot, bool]]]]] = {}
        for process_id, dots in per_process.items():
            partition = partitions.get(process_id, 0)
            by_partition.setdefault(partition, []).append((process_id, dots))
        for partition, members in by_partition.items():
            for index, (left_id, left) in enumerate(members):
                left_set = {dot for dot, _ in left}
                for right_id, right in members[index + 1 :]:
                    common = left_set & {dot for dot, _ in right}
                    if len(common) < 2:
                        continue
                    divergence = _conflict_order_divergence(left, right, common)
                    if divergence is not None:
                        violations.append(
                            Violation(
                                "order-divergence",
                                f"key {key!r} partition {partition}: processes "
                                f"{left_id} and {right_id} disagree — "
                                f"{divergence}",
                            )
                        )
                        # One witness per replica pair per key is enough.
                        break


def _conflict_order_divergence(left, right, common) -> Optional[str]:
    """Compare two per-key sequences on their common conflicting pairs.

    Returns a human-readable witness, or ``None`` if every write-write and
    read-write pair appears in the same order on both sides.
    """
    left_writes = [dot for dot, is_write in left if is_write and dot in common]
    right_writes = [dot for dot, is_write in right if is_write and dot in common]
    if left_writes != right_writes:
        return f"write order {left_writes} vs {right_writes}"
    common_writes = set(left_writes)
    # For each common read, the number of common writes executed before it
    # must match: that pins every read-write pair without ordering reads
    # against each other.
    left_position = _write_positions(left, common, common_writes)
    right_position = _write_positions(right, common, common_writes)
    for dot, position in left_position.items():
        other = right_position[dot]
        if position != other:
            return (
                f"read {dot} follows {position} write(s) on one replica "
                f"but {other} on the other"
            )
    return None


def _write_positions(sequence, common, common_writes) -> Dict[Dot, int]:
    """``read dot -> number of common writes executed before it``."""
    positions: Dict[Dot, int] = {}
    writes_seen = 0
    for dot, is_write in sequence:
        if dot not in common:
            continue
        if dot in common_writes:
            writes_seen += 1
        elif not is_write:
            positions[dot] = writes_seen
    return positions


def _check_timestamp_monotonicity(trace, violations: List[Violation]) -> None:
    """Per-key executions are strictly increasing in ``(timestamp, id)``.

    An executed timestamp *below* its predecessor on the same key means a
    command was executed before it was truly stable (a smaller-timestamped
    conflicting command was still in flight).  Only same-key *conflicting*
    pairs are compared — timestamp order is a property of conflicts:
    Caesar's wait condition legally releases non-conflicting commands out
    of timestamp order, and read-read pairs are never conflicts.  Tempo's
    single stable heap happens to be globally monotone, which implies this.
    """
    for process_id, events in trace.events_by_process.items():
        # Per key: the largest (timestamp, id) executed so far over all
        # commands touching it, and over the writes only.  A write must
        # exceed the former (it conflicts with everything), a read only the
        # latter (reads do not conflict with reads).
        max_any: Dict[str, Tuple[tuple, Dot]] = {}
        max_write: Dict[str, Tuple[tuple, Dot]] = {}
        flagged = set()
        for event in events:
            if event.timestamp is None:
                continue
            current = (event.timestamp, event.dot)
            for key in event.keys:
                is_write = _writes_key(event, key)
                bound = max_any.get(key) if is_write else max_write.get(key)
                if (
                    bound is not None
                    and current <= bound[0]
                    and (bound[1], event.dot) not in flagged
                ):
                    # One report per inverted pair, even if they share
                    # several keys.
                    flagged.add((bound[1], event.dot))
                    violations.append(
                        Violation(
                            "timestamp-order",
                            f"process {process_id} executed {event.dot} at "
                            f"timestamp {event.timestamp} after {bound[1]} "
                            f"at timestamp {bound[0][0]} (key {key!r}) — "
                            f"not stable when executed",
                        )
                    )
                if key not in max_any or current > max_any[key][0]:
                    max_any[key] = (current, event.dot)
                if is_write and (key not in max_write or current > max_write[key][0]):
                    max_write[key] = (current, event.dot)


def _check_timestamp_agreement(trace, violations: List[Violation]) -> None:
    """Every replica observed the same committed timestamp per identifier."""
    observed: Dict[Dot, Dict[object, List[int]]] = {}
    for process_id, events in trace.events_by_process.items():
        for event in events:
            if event.timestamp is None:
                continue
            observed.setdefault(event.dot, {}).setdefault(event.timestamp, []).append(
                process_id
            )
    for dot, per_timestamp in observed.items():
        if len(per_timestamp) > 1:
            detail = ", ".join(
                f"{timestamp} at {sorted(processes)}"
                for timestamp, processes in sorted(
                    per_timestamp.items(), key=lambda item: repr(item[0])
                )
            )
            violations.append(
                Violation(
                    "timestamp-divergence",
                    f"{dot} committed with different timestamps: {detail}",
                )
            )


def _check_real_time_order(trace, violations: List[Violation]) -> None:
    """PSMR real-time order: a command that completed before a conflicting
    one was submitted executes first at every replica.

    Per process and key, scan the executed sequence keeping the minimum
    client-reply time over the suffix: an earlier-executed command whose
    submit time is *after* some later-executed command's reply time is an
    inversion.  Commands without a recorded window (e.g. submitted directly
    in tests) are skipped.
    """
    windows = trace.windows
    if not windows:
        return
    infinity = float("inf")
    for process_id, events in trace.events_by_process.items():
        per_key: Dict[str, List[Tuple[Dot, bool]]] = {}
        for event in events:
            for key in event.keys:
                if event.dot in windows:
                    per_key.setdefault(key, []).append(
                        (event.dot, _writes_key(event, key))
                    )
        for key, sequence in per_key.items():
            replies = [
                windows[dot].replied_at
                if windows[dot].replied_at is not None
                else infinity
                for dot, _ in sequence
            ]
            # suffix_min_any[i] = min reply time over sequence[i:];
            # suffix_min_write[i] = the same over the writes in sequence[i:].
            # An earlier-executed write is checked against any later command,
            # an earlier-executed read only against later writes (a read
            # pair is not a conflict, so its order carries no obligation).
            suffix_min_any = list(replies)
            suffix_min_write = [
                reply if is_write else infinity
                for reply, (_, is_write) in zip(replies, sequence)
            ]
            for index in range(len(sequence) - 2, -1, -1):
                if suffix_min_any[index + 1] < suffix_min_any[index]:
                    suffix_min_any[index] = suffix_min_any[index + 1]
                if suffix_min_write[index + 1] < suffix_min_write[index]:
                    suffix_min_write[index] = suffix_min_write[index + 1]
            for index, (dot, is_write) in enumerate(sequence[:-1]):
                submitted = windows[dot].submitted_at
                suffix = suffix_min_any if is_write else suffix_min_write
                if suffix[index + 1] < submitted:
                    witness = next(
                        later
                        for later, later_write in sequence[index + 1 :]
                        if (is_write or later_write)
                        and windows[later].replied_at is not None
                        and windows[later].replied_at < submitted
                    )
                    violations.append(
                        Violation(
                            "real-time-order",
                            f"process {process_id} key {key!r}: executed {dot} "
                            f"(submitted {submitted:.3f}) before {witness} "
                            f"(replied {windows[witness].replied_at:.3f})",
                        )
                    )
                    break
