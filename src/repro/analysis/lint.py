"""AST-based source gates, runnable as ``python -m repro.analysis.lint``.

Each check returns :class:`LintFinding` records; the module exit code is
non-zero when any check fails.  The checks promote the historical grep gates
into real static analysis (import/alias aware) and add new repo-wide ones:

* ``struct-outside-wire`` — ``struct`` (binary packing) imported outside
  ``repro/wire/``; everything else talks in message objects.
* ``scheduler-internals`` — private :class:`~repro.simulator.events.EventQueue`
  state (``_lanes``, ``_times``, or any ``queue._x`` reach) touched outside
  ``simulator/events.py``.
* ``missing-slots`` — a registered hot class lost its ``__slots__`` /
  ``@dataclass(slots=True)`` declaration.
* ``codec-exhaustiveness`` — a :class:`~repro.core.messages.Message`
  subclass without a wire codec or a canonical sample.
* ``dispatch-completeness`` — a protocol module constructs a protocol
  message its dispatch table cannot handle (Tempo's table must equal
  ``TEMPO_MESSAGE_TYPES`` exactly).
* ``nondeterminism`` — ``random`` or wall-clock ``time`` reads outside
  ``simulator/rng.py`` and ``repro/runtime/`` (the simulator must be a
  deterministic function of the seed).
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class LintFinding:
    """One lint violation at one source location."""

    path: str
    line: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.code}] {self.message}"


def _src_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def _python_files(root: Path) -> List[Path]:
    return sorted(root.rglob("*.py"))


def _relative(path: Path, root: Path) -> str:
    try:
        return str(path.relative_to(root.parent))
    except ValueError:  # pragma: no cover - absolute fallback
        return str(path)


def _parse(path: Path) -> Optional[ast.AST]:
    try:
        return ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except SyntaxError:  # pragma: no cover - the tree must parse to be shipped
        return None


# -- struct stays inside repro/wire/ ---------------------------------------------


def struct_import_findings(root: Optional[Path] = None) -> List[LintFinding]:
    """``struct`` (or ``from struct import ...``) outside ``repro/wire/``."""
    root = root or _src_root()
    findings: List[LintFinding] = []
    for path in _python_files(root):
        if path.parent.name == "wire":
            continue
        tree = _parse(path)
        if tree is None:
            continue
        for node in ast.walk(tree):
            modules: List[str] = []
            if isinstance(node, ast.Import):
                modules = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                modules = [node.module or ""]
            for module in modules:
                if module == "struct" or module.startswith("struct."):
                    findings.append(
                        LintFinding(
                            path=_relative(path, root),
                            line=node.lineno,
                            code="struct-outside-wire",
                            message=(
                                "binary packing belongs to the codec layer "
                                "(repro/wire/)"
                            ),
                        )
                    )
    return findings


# -- scheduler internals stay inside events.py -----------------------------------

#: Private attributes of :class:`repro.simulator.events.EventQueue`.
_SCHEDULER_PRIVATE = frozenset({"_times", "_lanes"})


def scheduler_internal_findings(root: Optional[Path] = None) -> List[LintFinding]:
    """Private scheduler state reached outside ``simulator/events.py``.

    Flags attribute reads of the :class:`EventQueue` internals (``_lanes``,
    ``_times``) anywhere, and *any* private attribute reached through a name
    or attribute called ``queue`` (the historical ``queue._heap`` /
    ``queue._counter`` pattern the public API replaced).
    """
    root = root or _src_root()
    findings: List[LintFinding] = []
    for path in _python_files(root):
        if path.name == "events.py" and path.parent.name == "simulator":
            continue
        tree = _parse(path)
        if tree is None:
            continue
        for node in ast.walk(tree):
            if not isinstance(node, ast.Attribute):
                continue
            private = node.attr.startswith("_") and not node.attr.startswith("__")
            if not private:
                continue
            value = node.value
            via_queue = (isinstance(value, ast.Name) and value.id == "queue") or (
                isinstance(value, ast.Attribute) and value.attr == "queue"
            )
            if node.attr in _SCHEDULER_PRIVATE or via_queue:
                findings.append(
                    LintFinding(
                        path=_relative(path, root),
                        line=node.lineno,
                        code="scheduler-internals",
                        message=(
                            f"scheduler internal {node.attr!r} reached outside "
                            "events.py (use push/schedule_message/pop_lane/"
                            "requeue_lane/peek_time)"
                        ),
                    )
                )
    return findings


# -- __slots__ on registered hot classes ----------------------------------------

#: Classes on the simulator/protocol hot path that must stay dict-free.
#: ``(module path relative to repro/, class name)``.
HOT_CLASSES: Tuple[Tuple[str, str], ...] = (
    ("core/info.py", "CommandInfo"),
    ("core/promises.py", "_IntRanges"),
    ("core/promises.py", "PromiseSet"),
    ("simulator/events.py", "EventQueue"),
    ("wire/primitives.py", "Reader"),
    ("protocols/dependency.py", "KeyConflicts"),
)


def _declares_slots(node: ast.ClassDef) -> bool:
    for statement in node.body:
        targets: List[ast.expr] = []
        if isinstance(statement, ast.Assign):
            targets = statement.targets
        elif isinstance(statement, ast.AnnAssign):
            targets = [statement.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Call):
            name = decorator.func
            is_dataclass = (
                isinstance(name, ast.Name) and name.id == "dataclass"
            ) or (isinstance(name, ast.Attribute) and name.attr == "dataclass")
            if is_dataclass:
                for keyword in decorator.keywords:
                    if (
                        keyword.arg == "slots"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                    ):
                        return True
    return False


def hot_class_slots_findings(root: Optional[Path] = None) -> List[LintFinding]:
    """Registered hot classes must declare ``__slots__`` (or ``slots=True``)."""
    root = root or _src_root()
    findings: List[LintFinding] = []
    for module, class_name in HOT_CLASSES:
        path = root / module
        tree = _parse(path) if path.exists() else None
        if tree is None:
            findings.append(
                LintFinding(
                    path=_relative(path, root),
                    line=1,
                    code="missing-slots",
                    message=f"hot class {class_name} not found in {module}",
                )
            )
            continue
        found = False
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name == class_name:
                found = True
                if not _declares_slots(node):
                    findings.append(
                        LintFinding(
                            path=_relative(path, root),
                            line=node.lineno,
                            code="missing-slots",
                            message=(
                                f"hot class {class_name} must declare __slots__ "
                                "(or @dataclass(slots=True)) — it is allocated "
                                "on the simulator hot path"
                            ),
                        )
                    )
        if not found:
            findings.append(
                LintFinding(
                    path=_relative(path, root),
                    line=1,
                    code="missing-slots",
                    message=f"hot class {class_name} not found in {module}",
                )
            )
    return findings


# -- codec + sample exhaustiveness ----------------------------------------------


def codec_exhaustiveness_findings() -> List[LintFinding]:
    """Every concrete ``Message`` subclass has a codec and a sample frame."""
    import inspect

    import repro.core.messages as core_messages
    import repro.protocols.dep_messages as dep_messages
    from repro.core.base import MBatch
    from repro.core.messages import Message
    from repro.wire import has_codec, registered_types, sample_messages

    findings: List[LintFinding] = []
    for module in (core_messages, dep_messages):
        path = module.__name__.replace(".", "/") + ".py"
        for _, obj in inspect.getmembers(module, inspect.isclass):
            if (
                issubclass(obj, Message)
                and obj is not Message
                and obj.__module__ == module.__name__
                and not has_codec(obj)
            ):
                findings.append(
                    LintFinding(
                        path=path,
                        line=1,
                        code="codec-exhaustiveness",
                        message=(
                            f"{obj.__name__} has no wire codec — register it in "
                            "repro/wire/codecs.py (_REGISTRY_SPEC)"
                        ),
                    )
                )
    if not has_codec(MBatch):
        findings.append(
            LintFinding(
                path="repro/wire/codecs.py",
                line=1,
                code="codec-exhaustiveness",
                message="the MBatch transport envelope has no codec",
            )
        )
    sampled = {type(message) for message in sample_messages().values()}
    for cls in registered_types():
        if cls not in sampled:
            findings.append(
                LintFinding(
                    path="repro/wire/codecs.py",
                    line=1,
                    code="codec-exhaustiveness",
                    message=f"registered kind {cls.__name__} has no sample frame",
                )
            )
    return findings


# -- per-protocol dispatch completeness ------------------------------------------

#: Messages legitimately constructed but never dispatched by a protocol:
#: client-facing replies, and the transport envelope.
_DISPATCH_EXEMPT = frozenset({"ClientReply", "ClientSubmit", "MBatch"})

#: Module groups whose construction/dispatch sets are checked together (the
#: Tempo state machine spans process.py and the recovery mixin).
_DISPATCH_GROUPS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("tempo", ("core/process.py", "core/recovery.py")),
    # Atlas, EPaxos and Janus share DependencyProcessBase's dispatch table
    # (Janus subclasses Atlas), so their construction sets are pooled.
    (
        "dependency-family",
        (
            "protocols/dependency.py",
            "protocols/atlas.py",
            "protocols/epaxos.py",
            "protocols/janus.py",
        ),
    ),
    ("caesar", ("protocols/caesar.py",)),
    ("fpaxos", ("protocols/fpaxos.py",)),
)


def _message_class_names() -> Set[str]:
    import inspect

    import repro.core.messages as core_messages
    import repro.protocols.dep_messages as dep_messages
    from repro.core.messages import Message

    names: Set[str] = set()
    for module in (core_messages, dep_messages):
        for name, obj in inspect.getmembers(module, inspect.isclass):
            if issubclass(obj, Message) and obj is not Message:
                names.add(name)
    return names


def _scan_module(path: Path, message_names: Set[str]) -> Tuple[Set[str], Set[str], int]:
    """``(constructed, dispatch_keys, dispatch_line)`` for one module."""
    constructed: Set[str] = set()
    dispatch_keys: Set[str] = set()
    dispatch_line = 1
    tree = _parse(path)
    if tree is None:
        return constructed, dispatch_keys, dispatch_line
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in message_names:
                constructed.add(name)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            is_dispatch = any(
                isinstance(target, ast.Attribute) and target.attr == "_dispatch"
                for target in targets
            )
            if is_dispatch and isinstance(node.value, ast.Dict):
                dispatch_line = node.lineno
                for key in node.value.keys:
                    if isinstance(key, ast.Name):
                        dispatch_keys.add(key.id)
    return constructed, dispatch_keys, dispatch_line


def dispatch_completeness_findings(root: Optional[Path] = None) -> List[LintFinding]:
    """A protocol's dispatch table covers every message it constructs.

    A message class instantiated by a protocol group is on its wire; if the
    group's ``_dispatch`` table cannot route it, a replica would raise (or
    silently drop) on delivery.  Tempo's table must additionally equal
    ``TEMPO_MESSAGE_TYPES`` exactly — the canonical list used by the wire
    exhaustiveness tests.
    """
    root = root or _src_root()
    message_names = _message_class_names()
    findings: List[LintFinding] = []
    for group, modules in _DISPATCH_GROUPS:
        constructed: Set[str] = set()
        dispatch_keys: Set[str] = set()
        anchor_path = root / modules[0]
        anchor_line = 1
        for module in modules:
            module_constructed, module_dispatch, line = _scan_module(
                root / module, message_names
            )
            constructed |= module_constructed
            if module_dispatch:
                dispatch_keys |= module_dispatch
                anchor_path = root / module
                anchor_line = line
        missing = sorted((constructed - _DISPATCH_EXEMPT) - dispatch_keys)
        for name in missing:
            findings.append(
                LintFinding(
                    path=_relative(anchor_path, root),
                    line=anchor_line,
                    code="dispatch-completeness",
                    message=(
                        f"{group}: {name} is constructed but missing from the "
                        "_dispatch table — a replica cannot route it"
                    ),
                )
            )
        if group == "tempo":
            from repro.core.messages import TEMPO_MESSAGE_TYPES

            expected = {cls.__name__ for cls in TEMPO_MESSAGE_TYPES}
            if dispatch_keys != expected:
                drift = sorted(dispatch_keys.symmetric_difference(expected))
                findings.append(
                    LintFinding(
                        path=_relative(anchor_path, root),
                        line=anchor_line,
                        code="dispatch-completeness",
                        message=(
                            "tempo dispatch table drifted from "
                            f"TEMPO_MESSAGE_TYPES: {drift}"
                        ),
                    )
                )
    return findings


# -- determinism ------------------------------------------------------------------

#: Paths (relative to repro/) allowed to draw randomness or read wall clocks:
#: the seeded RNG wrapper and the real asyncio runtime.
_DETERMINISM_EXEMPT_PREFIXES = ("runtime/",)
_DETERMINISM_EXEMPT_FILES = ("simulator/rng.py",)

#: Wall-clock readers on the ``time`` module.
_WALL_CLOCK_NAMES = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"}
)


def determinism_findings(root: Optional[Path] = None) -> List[LintFinding]:
    """``random`` / wall-clock ``time`` reads outside the sanctioned modules.

    Alias-aware: ``import random as r`` and ``from time import time as now``
    are both caught.  Simulated runs must be a pure function of the seed —
    every random draw goes through :class:`repro.simulator.rng.SeededRng`
    and simulated time comes from the event clock.
    """
    root = root or _src_root()
    findings: List[LintFinding] = []
    for path in _python_files(root):
        relative = path.relative_to(root).as_posix()
        if relative in _DETERMINISM_EXEMPT_FILES or relative.startswith(
            _DETERMINISM_EXEMPT_PREFIXES
        ):
            continue
        tree = _parse(path)
        if tree is None:
            continue
        time_aliases: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        findings.append(
                            LintFinding(
                                path=_relative(path, root),
                                line=node.lineno,
                                code="nondeterminism",
                                message=(
                                    "import random outside simulator/rng.py — "
                                    "draw through SeededRng instead"
                                ),
                            )
                        )
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random":
                    findings.append(
                        LintFinding(
                            path=_relative(path, root),
                            line=node.lineno,
                            code="nondeterminism",
                            message=(
                                "from random import ... outside simulator/rng.py "
                                "— draw through SeededRng instead"
                            ),
                        )
                    )
                elif node.module == "time":
                    for alias in node.names:
                        if alias.name in _WALL_CLOCK_NAMES:
                            findings.append(
                                LintFinding(
                                    path=_relative(path, root),
                                    line=node.lineno,
                                    code="nondeterminism",
                                    message=(
                                        f"wall-clock time.{alias.name} outside the "
                                        "runtime — simulated time comes from the "
                                        "event clock"
                                    ),
                                )
                            )
        if not time_aliases:
            continue
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in time_aliases
                and node.attr in _WALL_CLOCK_NAMES
            ):
                findings.append(
                    LintFinding(
                        path=_relative(path, root),
                        line=node.lineno,
                        code="nondeterminism",
                        message=(
                            f"wall-clock time.{node.attr} outside the runtime — "
                            "simulated time comes from the event clock"
                        ),
                    )
                )
    return findings


# -- entry points -----------------------------------------------------------------

ALL_CHECKS = (
    ("struct-outside-wire", struct_import_findings),
    ("scheduler-internals", scheduler_internal_findings),
    ("missing-slots", hot_class_slots_findings),
    ("codec-exhaustiveness", lambda root=None: codec_exhaustiveness_findings()),
    ("dispatch-completeness", dispatch_completeness_findings),
    ("nondeterminism", determinism_findings),
)


def run_all(root: Optional[Path] = None) -> List[LintFinding]:
    """Run every lint over the source tree; returns all findings."""
    findings: List[LintFinding] = []
    for _, check in ALL_CHECKS:
        findings.extend(check(root))
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: print findings, return non-zero when any exist."""
    findings = run_all()
    for finding in findings:
        print(finding)
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    if findings:
        summary = ", ".join(f"{code}={count}" for code, count in sorted(counts.items()))
        print(f"lint: {len(findings)} finding(s) ({summary})")
        return 1
    print(f"lint: OK ({len(ALL_CHECKS)} checks clean)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m
    sys.exit(main())
