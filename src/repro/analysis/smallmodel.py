"""Exhaustive small-model exploration of bounded protocol schedules.

TLA+-style explicit-state enumeration, in the spirit of the mechanized
event-system checkers (GeneSyst, BesFS): build a bounded cluster (2–4
processes, one partition, ≤3 conflicting commands), submit every command up
front, then DFS over *all* delivery-order interleavings.  Messages travel on
per-``(sender, destination)`` FIFO channels — the same ordering guarantee
the simulator's deterministic per-pair latencies provide — so a schedule is
a choice, at each step, of which channel delivers its head next.  States
are memoized by a canonical fingerprint (channel contents + protocol state
digest), which collapses the exponential interleaving tree into the
commuting-delivery state lattice.

At every quiescent point (all channels empty) the model runs a
deterministic *settle* phase (periodic ticks — promise broadcast, stability
detection, recovery — with FIFO delivery to quiescence) and then asserts
the protocol's final-state invariants:

* every command executes at every live replica (liveness within bounds);
* all replicas execute in the same order;
* committed timestamps agree per identifier and execution order is
  monotone in ``(timestamp, id)`` — premature stability (e.g. the even-``r``
  majority-index bug in ``PromiseSet.stable_timestamp``) surfaces here;
* for Caesar, execution respects the wait-condition ordering (timestamp
  order among conflicting commands).

The optional coordinator-crash branch crashes one process at every depth of
the schedule (once per path); the settle phase then jumps past the recovery
timeout so Algorithm 4 runs, and the invariants are asserted over the
surviving replicas.

The optional message-loss branch (``lose_kinds``; ``lose_commit`` is the
``["MCommit"]`` alias) drops one in-flight message of any registered kind
at every depth (once per path, fair-lossy links): the model then proves
the liveness machinery — commit hints, the hint watchdog's forced
``MCommitRequest``, §B.1 recovery, the promise-resync watchdog, and the
cross-shard ``MStableRequest`` watchdog — re-delivers what was lost; the
full liveness invariant still holds with no process crashed.  A
two-partition topology (``num_partitions=2``) makes every command
cross-shard, so losing a cross-partition ``MStable`` is exhaustively
enumerated — the model counterpart of the scenario matrix's
``mstable-loss/x-shard`` cell.

Epoch-2 state machines are part of the model: ``commit_elision`` toggles
the fast-path MCommit elision (fast-quorum members self-commit, so the
coordinator skips their commit message) and ``watermark_gc`` toggles the
globally-executed watermark exchange.  With GC on, every reachable state —
not just quiescent ones — is checked against the collection-safety
invariant: a dot at or below any process's watermark must have executed at
EVERY replica, i.e. no committed command's bookkeeping is ever dropped
before it is globally executed.
"""

from __future__ import annotations

import copy
import io
import pickle
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.consistency import Violation
from repro.core.base import ProcessBase
from repro.core.commands import Command, Partitioner
from repro.core.config import ProtocolConfig
from repro.core.identifiers import Dot
from repro.core.messages import MCommit
from repro.core.process import TempoProcess
from repro.core.quorums import QuorumSystem
from repro.protocols.caesar import CaesarProcess

#: A channel is the FIFO of in-flight messages from one process to another.
Channels = Dict[Tuple[int, int], List[object]]


@dataclass
class ExplorationResult:
    """Outcome of one exhaustive exploration."""

    protocol: str
    states_explored: int = 0
    distinct_states: int = 0
    final_states: int = 0
    max_depth: int = 0
    complete: bool = True
    #: Why the DFS ended early: "" (ran to completion), "max_states", or
    #: "first-violation" (``stop_at_first_violation`` unwound the search).
    stop_reason: str = ""
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        suffix = "" if self.complete else f" (stopped early: {self.stop_reason})"
        return (
            f"{self.protocol} small model: {status} — "
            f"{self.states_explored} states explored "
            f"({self.distinct_states} distinct, {self.final_states} final, "
            f"depth ≤ {self.max_depth}){suffix}"
        )


class _StateBudgetExceeded(Exception):
    pass


class _FoundViolation(Exception):
    pass


def _snapshot(processes: Sequence[ProcessBase], channels: Channels):
    """Capture a branchable copy of the model state.

    Pickling the whole ``(processes, channels)`` pair round-trips roughly
    twice as fast as :func:`copy.deepcopy`, and the DFS restores one copy
    per branch, so this dominates exploration throughput.  Deepcopy remains
    the fallback for protocol state that does not pickle (e.g. an
    ``apply_fn`` closure).
    """
    try:
        blob = pickle.dumps((list(processes), channels), pickle.HIGHEST_PROTOCOL)
    except Exception:
        state = (list(processes), channels)
        return lambda: copy.deepcopy(state)
    return lambda: pickle.loads(blob)


def _drain_outboxes(processes: Sequence[ProcessBase], channels: Channels) -> None:
    """Move every pending outgoing message onto its FIFO channel.

    Client-addressed envelopes (negative destinations) are dropped — the
    model has no clients; liveness is asserted on the replicas directly.
    """
    for process in processes:
        if not process.outbox:
            continue
        for envelope in process.drain_outbox():
            if envelope.destination < 0:
                continue
            channels.setdefault(
                (envelope.sender, envelope.destination), []
            ).append(envelope.message)


def _pump_fifo(processes: Sequence[ProcessBase], channels: Channels, now: float) -> None:
    """Deliver every in-flight message in deterministic FIFO order."""
    for _ in range(10_000):
        pairs = sorted(pair for pair, queue in channels.items() if queue)
        if not pairs:
            return
        for pair in pairs:
            queue = channels.get(pair)
            if not queue:
                continue
            message = queue.pop(0)
            if not queue:
                del channels[pair]
            target = processes[pair[1]]
            if target.alive:
                target.deliver(pair[0], message, now)
            _drain_outboxes(processes, channels)
    raise RuntimeError("small-model settle did not quiesce")  # pragma: no cover


class _Explorer:
    """Generic DFS over delivery interleavings with memoized fingerprints."""

    def __init__(
        self,
        result: ExplorationResult,
        digest: Callable[[ProcessBase], object],
        settle: Callable[[List[ProcessBase], Channels, bool], None],
        final_check: Callable[[List[ProcessBase], bool, List[Violation]], None],
        crash_process: Optional[int],
        max_states: int,
        stop_at_first_violation: bool = False,
        state_check: Optional[
            Callable[[Sequence[ProcessBase], List[Violation]], None]
        ] = None,
        lose_predicate: Optional[Callable[[object], bool]] = None,
    ) -> None:
        self.result = result
        self.digest = digest
        self.settle = settle
        self.final_check = final_check
        self.crash_process = crash_process
        self.max_states = max_states
        self.stop_at_first_violation = stop_at_first_violation
        self.state_check = state_check
        self.lose_predicate = lose_predicate
        self.seen: Set[object] = set()

    def fingerprint(
        self,
        processes: Sequence[ProcessBase],
        channels: Channels,
        crashed: bool,
        lost: bool,
    ) -> object:
        in_flight = tuple(
            (pair, tuple(repr(message) for message in queue))
            for pair, queue in sorted(channels.items())
            if queue
        )
        return (crashed, lost, in_flight, tuple(self.digest(p) for p in processes))

    def explore(
        self,
        processes: List[ProcessBase],
        channels: Channels,
        crashed: bool,
        lost: bool,
        depth: int,
    ) -> None:
        fingerprint = self.fingerprint(processes, channels, crashed, lost)
        if fingerprint in self.seen:
            return
        self.seen.add(fingerprint)
        result = self.result
        result.states_explored += 1
        result.distinct_states = len(self.seen)
        if depth > result.max_depth:
            result.max_depth = depth
        if result.states_explored > self.max_states:
            raise _StateBudgetExceeded
        if self.state_check is not None:
            # Invariants that must hold in EVERY reachable state, not just
            # at quiescence (TLA+-style safety properties).
            self.state_check(processes, result.violations)
            if result.violations and self.stop_at_first_violation:
                raise _FoundViolation
        choices = sorted(
            pair
            for pair, queue in channels.items()
            if queue and processes[pair[1]].alive
        )
        restore = _snapshot(processes, channels)
        if not choices:
            final_processes, final_channels = restore()
            self.settle(final_processes, final_channels, crashed or lost)
            result.final_states += 1
            self.final_check(final_processes, crashed, result.violations)
            if result.violations and self.stop_at_first_violation:
                raise _FoundViolation
        for pair in choices:
            branch_processes, branch_channels = restore()
            queue = branch_channels[pair]
            message = queue.pop(0)
            if not queue:
                del branch_channels[pair]
            branch_processes[pair[1]].deliver(pair[0], message, 0.0)
            _drain_outboxes(branch_processes, branch_channels)
            self.explore(branch_processes, branch_channels, crashed, lost, depth + 1)
        if self.lose_predicate is not None and not lost:
            # Message-loss transition (fair-lossy links): at every depth,
            # any deliverable head message matching the predicate may
            # instead vanish in transit — once per path, so the model stays
            # bounded while covering a loss at every protocol stage.
            for pair in choices:
                if not self.lose_predicate(channels[pair][0]):
                    continue
                branch_processes, branch_channels = restore()
                queue = branch_channels[pair]
                queue.pop(0)
                if not queue:
                    del branch_channels[pair]
                self.explore(
                    branch_processes, branch_channels, crashed, True, depth + 1
                )
        if self.crash_process is not None and not crashed:
            branch_processes, branch_channels = restore()
            victim = self.crash_process
            branch_processes[victim].crash()
            # Crash-stop: in-flight traffic to and from the victim is lost,
            # and the failure detector eventually reports the crash.
            for pair in list(branch_channels):
                if victim in pair:
                    del branch_channels[pair]
            for process in branch_processes:
                if process.process_id != victim:
                    process.set_alive_view(victim, False)
            self.explore(branch_processes, branch_channels, True, lost, depth + 1)


def _run(
    result: ExplorationResult,
    processes: List[ProcessBase],
    digest,
    settle,
    final_check,
    crash_process: Optional[int],
    max_states: int,
    stop_at_first_violation: bool = False,
    state_check=None,
    lose_predicate=None,
) -> ExplorationResult:
    channels: Channels = {}
    _drain_outboxes(processes, channels)
    explorer = _Explorer(
        result,
        digest,
        settle,
        final_check,
        crash_process,
        max_states,
        stop_at_first_violation=stop_at_first_violation,
        state_check=state_check,
        lose_predicate=lose_predicate,
    )
    try:
        explorer.explore(processes, channels, False, False, 0)
    except _FoundViolation:
        result.complete = False
        result.stop_reason = "first-violation"
    except _StateBudgetExceeded:
        result.complete = False
        result.stop_reason = "max_states"
        result.violations.append(
            Violation(
                "state-budget",
                f"exploration truncated after {max_states} states — tighten "
                "the model bounds or raise max_states",
            )
        )
    return result


# -- shared final-state checks ----------------------------------------------------


def _check_common_final_state(
    processes: Sequence[ProcessBase],
    expected_dots: Set,
    timestamp_of,
    violations: List[Violation],
    require_all: bool,
) -> None:
    live = [process for process in processes if process.alive]
    # Liveness within the bounded schedule: a command committed anywhere
    # live must execute at every live replica; without a crash, every
    # submitted command must execute everywhere.
    must_execute = set(expected_dots) if require_all else set()
    for process in live:
        for dot, _ in process.executed:
            must_execute.add(dot)
        committed = getattr(process, "committed_dots", None)
        if committed is not None:
            must_execute.update(committed())
    for process in live:
        executed = [dot for dot, _ in process.executed]
        missing = must_execute - set(executed)
        if missing:
            violations.append(
                Violation(
                    "liveness",
                    f"process {process.process_id} never executed "
                    f"{sorted(str(dot) for dot in missing)} after settle",
                )
            )
        if len(executed) != len(set(executed)):
            violations.append(
                Violation(
                    "execute-twice",
                    f"process {process.process_id} executed a command twice: "
                    f"{executed}",
                )
            )
    # Order agreement across every replica (crashed ones too: their executed
    # prefix is immutable history and must embed in the common order).
    orders = {}
    for process in processes:
        executed = tuple(dot for dot, _ in process.executed)
        orders[process.process_id] = executed
    reference: Optional[Tuple] = None
    for process_id, executed in sorted(orders.items()):
        if reference is None and processes[process_id].alive:
            reference = executed
            continue
        if reference is None:
            continue
        common = set(executed) & set(reference)
        left = [dot for dot in executed if dot in common]
        right = [dot for dot in reference if dot in common]
        if left != right:
            violations.append(
                Violation(
                    "order-divergence",
                    f"process {process_id} executed {left} but the reference "
                    f"order is {right}",
                )
            )
    # Timestamp agreement per dot and per-process monotone execution order.
    timestamps: Dict[object, Dict[object, List[int]]] = {}
    for process in processes:
        previous = None
        for dot, _ in process.executed:
            timestamp = timestamp_of(process, dot)
            if timestamp is None:
                continue
            timestamps.setdefault(dot, {}).setdefault(timestamp, []).append(
                process.process_id
            )
            current = (timestamp, dot)
            if previous is not None and current <= previous:
                violations.append(
                    Violation(
                        "timestamp-order",
                        f"process {process.process_id} executed {dot} at "
                        f"{timestamp} after {previous[1]} at {previous[0]} — "
                        "executed before stable",
                    )
                )
            previous = current
    for dot, per_timestamp in timestamps.items():
        if len(per_timestamp) > 1:
            violations.append(
                Violation(
                    "timestamp-divergence",
                    f"{dot} committed at different timestamps: "
                    f"{sorted(per_timestamp)}",
                )
            )


# -- epoch-2 GC (shared between the Tempo and Caesar models) ----------------------


def _gc_digest(process: ProcessBase) -> object:
    """Canonical fingerprint of a process's ``GcTracker`` state (or ``()``)."""
    gc = getattr(process, "gc", None)
    if gc is None:
        return ()
    return (
        tuple(sorted(gc._frontier.items())),
        tuple(sorted(gc._watermark.items())),
        tuple(
            (peer, tuple(sorted(clock.items())))
            for peer, clock in sorted(gc._peer_clocks.items())
        ),
        tuple(
            (source, tuple(sorted(pending)))
            for source, pending in sorted(gc._pending.items())
            if pending
        ),
        tuple(sorted(gc._stale)),
        gc._dirty,
    )


def _gc_collection_safety(
    current: Sequence[ProcessBase], violations: List[Violation]
) -> None:
    """The watermark-GC safety invariant, checked in EVERY reachable state.

    A dot at or below any process's globally-executed watermark has had its
    bookkeeping dropped (or is about to); that is sound only if the dot
    already executed at *every* replica — crashed ones included, since the
    watermark can only cover sequences the crashed peer announced as
    executed before dying.  A violation here means a committed command was
    garbage-collected before it was globally executed.
    """
    executed_sets = {
        process.process_id: {dot for dot, _ in process.executed}
        for process in current
    }
    for process in current:
        gc = getattr(process, "gc", None)
        if gc is None:
            continue
        for source in sorted(gc._sources):
            watermark = gc.watermark_of(source)
            for sequence in range(1, watermark + 1):
                dot = Dot(source, sequence)
                for peer_id, executed in sorted(executed_sets.items()):
                    if dot not in executed:
                        violations.append(
                            Violation(
                                "gc-before-global-execution",
                                f"process {process.process_id} holds watermark "
                                f"{watermark} for source {source}, collecting "
                                f"{dot}, but process {peer_id} never executed "
                                "it — collected before globally executed",
                            )
                        )


# -- Tempo model ------------------------------------------------------------------


def _tempo_digest(process: TempoProcess) -> object:
    info = tuple(
        sorted(
            (
                dot.source,
                dot.sequence,
                record.phase.name,
                record.timestamp,
                record.final_timestamp or 0,
                record.ballot,
                record.accepted_ballot,
                record.stable_sent,
                tuple(sorted(record.partition_commits.items())),
                tuple(sorted(record.proposals.items())),
                tuple(sorted(repr(p) for p in record.collected_attached)),
                repr(record.collected_detached),
                tuple(
                    (ts, tuple(sorted(acks)))
                    for ts, acks in sorted(record.consensus_acks.items())
                ),
                tuple(sorted(record.stable_from)),
            )
            for dot, record in process._info.items()
        )
    )
    peers = process.partition_peers()
    buffered = tuple(
        sorted(
            (dot.source, dot.sequence, tuple(sorted(entries)))
            for dot, entries in process._buffered_attached.items()
        )
    )
    return (
        process.process_id,
        process.alive,
        process.clock.value,
        tuple(process.promises.frontier(peers)),
        len(process.promises),
        buffered,
        tuple((dot.source, dot.sequence) for dot, _ in process.executed),
        _gc_digest(process),
        info,
    )


def explore_tempo(
    num_processes: int = 3,
    faults: int = 1,
    num_commands: int = 2,
    num_keys: int = 1,
    crash_coordinator: bool = False,
    lose_commit: bool = False,
    lose_kinds: Optional[Sequence[str]] = None,
    num_partitions: int = 1,
    ack_broadcast: bool = True,
    commit_elision: bool = True,
    watermark_gc: bool = True,
    max_states: int = 400_000,
    settle_rounds: int = 8,
    stop_at_first_violation: bool = False,
) -> ExplorationResult:
    """Exhaustively explore a bounded Tempo schedule.

    ``num_commands`` conflicting commands (cycling over ``num_keys`` keys)
    are submitted up front at distinct replicas; every delivery interleaving
    is explored.  With ``crash_coordinator`` the replica submitting the
    first command may crash at any depth, exercising recovery (Algorithm 4).

    The loss transition generalises over message kinds: ``lose_kinds`` names
    the registered message classes (for instance ``["MCommit", "MStable"]``)
    of which one in-flight instance may vanish at any depth (once per path,
    fair-lossy links); ``lose_commit`` is the backwards-compatible alias for
    ``lose_kinds=["MCommit"]``.  No process crashes on a loss path, so the
    full liveness invariant stands — the commit-hint watchdog,
    ``MCommitRequest``/``MPromiseResync`` machinery and the cross-shard
    ``MStableRequest`` watchdog must re-deliver whatever was lost.

    ``num_partitions=2`` builds a two-partition topology (``num_processes``
    replicas *per partition*); every command then accesses one key in each
    partition, so commit and stability must cross the shard boundary and a
    lost cross-partition ``MStable`` is exhaustively enumerated — the model
    counterpart of the scenario matrix's ``mstable-loss/x-shard`` cell.

    ``commit_elision`` and ``watermark_gc`` (both on by default, matching
    the production process) put the epoch-2 state machines under the model:
    the digest covers the GC tracker, and with GC on every reachable state
    is checked against the collection-safety invariant (no dot collected
    before it executed everywhere).

    State-space sizes (exhaustive, clean): the default-config
    ``r=3, 2 commands`` model has 121,225 states with 42,624 final
    (quiescent-then-settled) states; with ``ack_broadcast=False`` the
    commit traffic shrinks and the same schedule closes in a few thousand
    states — the right size for a per-commit pytest gate.  Mutation hunts
    should pass ``stop_at_first_violation=True``: the DFS unwinds at the
    first settled state that breaks an invariant instead of enumerating
    the rest of the space.
    """
    config = ProtocolConfig(
        num_processes=num_processes, faults=faults, num_partitions=num_partitions
    )
    if num_partitions == 1:
        partitioner = Partitioner(1)
    else:
        partitioner = Partitioner(
            num_partitions,
            explicit={
                f"key{partition}": partition for partition in range(num_partitions)
            },
        )
    processes = [
        TempoProcess(
            process_id,
            config,
            partitioner=partitioner,
            ack_broadcast=ack_broadcast,
            commit_elision=commit_elision,
            watermark_gc=watermark_gc,
        )
        for process_id in range(config.total_processes())
    ]
    dots = []
    for index in range(num_commands):
        submitter = processes[index % len(processes)]
        if num_partitions == 1:
            keys = [f"key{index % num_keys}"]
        else:
            # One key per partition: every command is cross-shard, so its
            # execution needs the remote partitions' MStable notifications.
            keys = [f"key{partition}" for partition in range(num_partitions)]
        command = submitter.new_command(keys)
        submitter.submit(command, 0.0)
        dots.append(command.dot)
    expected = set(dots)

    interval = config.promise_interval
    recovery_at = config.recovery_timeout + interval
    #: GC-safety violations observed at intermediate settle rounds of the
    #: CURRENT final state; ``final_check`` folds them into the result (the
    #: explorer calls settle and final_check back to back per final state).
    settle_violations: List[Violation] = []

    def settle(
        final_processes: List[ProcessBase], channels: Channels, degraded: bool
    ) -> None:
        # Periodic duties at the normal cadence first (promise broadcast and
        # stability detection), then — so recovery can run for schedules
        # that crashed the coordinator or lost a payload — the same cadence
        # past the recovery timeout.
        times = [interval * (round + 1) for round in range(settle_rounds)]
        times.extend(recovery_at + interval * round for round in range(settle_rounds))
        if degraded:
            # Crash/loss schedules can chain two timeouts: a commit hint
            # noted during the first recovery window arms the hint watchdog,
            # whose forced MCommitRequest fires one recovery timeout later.
            times.extend(
                2 * recovery_at + interval * round for round in range(settle_rounds)
            )
        for now in times:
            for process in final_processes:
                if process.alive:
                    process.tick(now)
            _drain_outboxes(final_processes, channels)
            _pump_fifo(final_processes, channels, now)
            if watermark_gc and not settle_violations:
                # The watermark only moves during the settle-phase clock
                # exchange, so the transient windows live here: check after
                # every round, not just at the settled state.
                _gc_collection_safety(final_processes, settle_violations)

    def timestamp_of(process: TempoProcess, dot) -> Optional[int]:
        return process.committed_timestamp(dot)

    majority = num_processes // 2 + 1

    def stability_safety(
        current: Sequence[ProcessBase], violations: List[Violation]
    ) -> None:
        # Theorem 1, re-derived independently of the implementation: a
        # timestamp ``s`` may be considered stable at a process only if a
        # strict majority of its peers have promised every timestamp up to
        # ``s``.  The even-``r`` majority-index regression (picking the
        # ``r//2``-th sorted frontier instead of the ``(r-1)//2``-th) yields
        # an ``s`` backed by only ``r/2`` processes — one short — and is
        # caught here at the first asymmetric frontier, long before the
        # premature execution it licenses would diverge.
        for process in current:
            if not process.alive:
                continue
            peers = list(process.partition_peers())
            stable = process.promises.stable_timestamp(peers)
            if stable <= 0:
                continue
            backed = sum(
                1
                for frontier in process.promises.frontier(peers)
                if frontier >= stable
            )
            if backed < majority:
                violations.append(
                    Violation(
                        "stability-safety",
                        f"process {process.process_id} considers timestamp "
                        f"{stable} stable with promises from only {backed} of "
                        f"{len(peers)} processes (majority is {majority}) — "
                        "Theorem 1 requires a strict majority",
                    )
                )

    def state_check(
        current: Sequence[ProcessBase], violations: List[Violation]
    ) -> None:
        stability_safety(current, violations)
        if watermark_gc:
            _gc_collection_safety(current, violations)

    def final_check(
        final_processes: List[ProcessBase], crashed: bool, violations: List[Violation]
    ) -> None:
        _check_common_final_state(
            final_processes,
            expected,
            timestamp_of,
            violations,
            require_all=not crashed,
        )
        if watermark_gc:
            # Collection happens mostly during settle (the clock exchange
            # rides the periodic tick), so re-assert GC safety on the
            # settled state, not just along the schedule — and fold in any
            # transient violation the per-round settle checks observed.
            _gc_collection_safety(final_processes, violations)
            violations.extend(settle_violations)
            settle_violations.clear()

    lose_names = set(lose_kinds or ())
    if lose_commit:
        lose_names.add(MCommit.__name__)
    protocol_label = f"tempo r={num_processes} f={faults}"
    if num_partitions > 1:
        protocol_label += f" p={num_partitions}"
    result = ExplorationResult(protocol=protocol_label)
    return _run(
        result,
        processes,
        _tempo_digest,
        settle,
        final_check,
        crash_process=dots[0].source if crash_coordinator else None,
        max_states=max_states,
        stop_at_first_violation=stop_at_first_violation,
        state_check=state_check,
        lose_predicate=(
            (lambda message: type(message).__name__ in lose_names)
            if lose_names
            else None
        ),
    )


# -- Caesar model -----------------------------------------------------------------


def _caesar_digest(process: CaesarProcess) -> object:
    info = tuple(
        sorted(
            (
                dot.source,
                dot.sequence,
                record.status,
                record.timestamp,
                tuple(
                    sorted(
                        (dep.source, dep.sequence) for dep in record.dependencies
                    )
                ),
                tuple(
                    (sender, tuple(sorted((d.source, d.sequence) for d in deps)))
                    for sender, deps in sorted(record.acks.items())
                ),
            )
            for dot, record in process._info.items()
        )
    )
    deferred = tuple(
        sorted(
            (entry.dot.source, entry.dot.sequence, entry.coordinator)
            for entry in process._deferred.values()
        )
    )
    return (
        process.process_id,
        process.clock,
        deferred,
        tuple((dot.source, dot.sequence) for dot, _ in process.executed),
        _gc_digest(process),
        info,
    )


def explore_caesar(
    num_processes: int = 3,
    faults: int = 1,
    num_commands: int = 2,
    num_keys: int = 1,
    watermark_gc: bool = True,
    max_states: int = 400_000,
) -> ExplorationResult:
    """Exhaustively explore a bounded Caesar schedule.

    Checks that the wait condition and dependency-based stability never let
    conflicting commands execute out of timestamp order or diverge across
    replicas.  Caesar here commits purely through messages (no periodic
    duties), so the settle phase only drives the execution retry tick —
    plus, with ``watermark_gc``, a second round of ticks one ``gc_interval``
    later so the clock exchange and collection run before the final checks
    (the GC safety invariant is asserted in every reachable state either
    way).
    """
    config = ProtocolConfig(num_processes=num_processes, faults=faults)
    partitioner = Partitioner(1)
    processes = [
        CaesarProcess(
            process_id, config, partitioner=partitioner, watermark_gc=watermark_gc
        )
        for process_id in range(num_processes)
    ]
    dots = []
    for index in range(num_commands):
        submitter = processes[index % num_processes]
        command = submitter.new_command([f"key{index % num_keys}"])
        submitter.submit(command, 0.0)
        dots.append(command.dot)
    expected = set(dots)

    times = [float(round + 1) for round in range(4)]
    if watermark_gc:
        # A second tick window one gc_interval later: executions recorded
        # during the first window get announced, ingested and collected.
        times.extend(config.gc_interval + round + 1 for round in range(4))
    settle_violations: List[Violation] = []

    def settle(
        final_processes: List[ProcessBase], channels: Channels, crashed: bool
    ) -> None:
        for now in times:
            for process in final_processes:
                process.tick(now)
            _drain_outboxes(final_processes, channels)
            _pump_fifo(final_processes, channels, now)
            if watermark_gc and not settle_violations:
                _gc_collection_safety(final_processes, settle_violations)

    def timestamp_of(process: CaesarProcess, dot) -> Optional[object]:
        record = process._info.get(dot)
        if record is not None and record.status in ("commit", "execute"):
            return record.timestamp
        return None

    def final_check(
        final_processes: List[ProcessBase], crashed: bool, violations: List[Violation]
    ) -> None:
        _check_common_final_state(
            final_processes, expected, timestamp_of, violations, require_all=True
        )
        if watermark_gc:
            _gc_collection_safety(final_processes, violations)
            violations.extend(settle_violations)
            settle_violations.clear()

    result = ExplorationResult(protocol=f"caesar r={num_processes} f={faults}")
    return _run(
        result,
        processes,
        _caesar_digest,
        settle,
        final_check,
        crash_process=None,
        max_states=max_states,
        state_check=_gc_collection_safety if watermark_gc else None,
    )


# -- CLI entry point ---------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run one bounded model from the command line; non-zero on violations.

    ``python -m repro.analysis.smallmodel --protocol tempo --commands 2``
    prints the exploration summary (state counts, completeness) and every
    violation.  The CI ``analysis`` job uses this to drive the models too
    large for the per-commit pytest gate.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.analysis.smallmodel",
        description="Exhaustive small-model exploration of a bounded schedule.",
    )
    parser.add_argument("--protocol", choices=("tempo", "caesar"), default="tempo")
    parser.add_argument("--processes", type=int, default=3)
    parser.add_argument("--faults", type=int, default=1)
    parser.add_argument("--commands", type=int, default=2)
    parser.add_argument("--keys", type=int, default=1)
    parser.add_argument("--crash", action="store_true", help="crash the coordinator")
    parser.add_argument(
        "--lose-commit",
        action="store_true",
        help="allow one in-flight MCommit broadcast to be lost (tempo only)",
    )
    parser.add_argument(
        "--lose-kind",
        action="append",
        default=None,
        metavar="KIND",
        help="allow one in-flight message of this class (e.g. MStable) to be "
        "lost; repeatable (tempo only)",
    )
    parser.add_argument(
        "--partitions",
        type=int,
        default=1,
        help="number of partitions (PROCESSES replicas each); >1 makes every "
        "command cross-shard (tempo only)",
    )
    parser.add_argument(
        "--ack-broadcast",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="Tempo ack-broadcast optimisation (default on)",
    )
    parser.add_argument(
        "--commit-elision",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="Tempo fast-path MCommit elision (default on)",
    )
    parser.add_argument(
        "--watermark-gc",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="globally-executed watermark GC (default on)",
    )
    parser.add_argument("--max-states", type=int, default=400_000)
    parser.add_argument(
        "--bounded",
        action="store_true",
        help="treat a clean run truncated by --max-states as success: a "
        "sound-but-bounded sweep for models too large to close (e.g. the "
        "6-process two-partition topology); any protocol violation inside "
        "the explored prefix still fails",
    )
    args = parser.parse_args(argv)
    if args.protocol == "tempo":
        result = explore_tempo(
            num_processes=args.processes,
            faults=args.faults,
            num_commands=args.commands,
            num_keys=args.keys,
            crash_coordinator=args.crash,
            lose_commit=args.lose_commit,
            lose_kinds=args.lose_kind,
            num_partitions=args.partitions,
            ack_broadcast=args.ack_broadcast,
            commit_elision=args.commit_elision,
            watermark_gc=args.watermark_gc,
            max_states=args.max_states,
        )
    else:
        result = explore_caesar(
            num_processes=args.processes,
            faults=args.faults,
            num_commands=args.commands,
            num_keys=args.keys,
            watermark_gc=args.watermark_gc,
            max_states=args.max_states,
        )
    print(result.summary())
    for violation in result.violations:
        print(f"  {violation}")
    if args.bounded and result.stop_reason == "max_states":
        protocol_violations = [
            violation
            for violation in result.violations
            if violation.code != "state-budget"
        ]
        return 1 if protocol_violations else 0
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via python -m
    import sys

    sys.exit(main())
