"""Execution-trace recording for the consistency checker.

An :class:`ExecutionTraceRecorder` attaches to protocol processes through
:meth:`repro.core.base.ProcessBase.add_execution_listener` and records, per
replica, the sequence of executed commands — identifier, keys, partition and
(for the timestamp-ordered protocols) the committed timestamp read off the
process at execution time.  Client submit/reply times are recorded as
*windows* so the checker can assert PSMR's real-time order.

Recording is observation-only: it never touches protocol state, RNG draws or
the event schedule, so a traced run produces byte-identical results to an
untraced one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.core.base import ProcessBase
from repro.core.identifiers import Dot


class TraceEvent(NamedTuple):
    """One command execution at one replica."""

    process_id: int
    partition: int
    dot: Dot
    keys: Tuple[str, ...]
    #: Committed timestamp at execution time: an ``int`` for Tempo, a
    #: ``(clock, rank)`` tuple for Caesar, ``None`` for the protocols that
    #: do not order execution by an agreed timestamp (Atlas/EPaxos/Janus
    #: execute by dependency ordering, FPaxos by slot).
    timestamp: Optional[object]
    time: float
    #: Subset of ``keys`` the command *writes*.  The consistency checks use
    #: it for the conflict relation (§3.3): two commands conflict on a key
    #: only if at least one writes it, so read-read pairs are unordered.
    #: ``None`` (e.g. hand-built events in tests) is the conservative
    #: reading: every key counts as written.
    write_keys: Optional[Tuple[str, ...]] = None


@dataclass
class CommandWindow:
    """Client-side real-time window of one command."""

    keys: Tuple[str, ...]
    submitted_at: float
    replied_at: Optional[float] = None


def _timestamp_of(process: ProcessBase, dot: Dot) -> Optional[object]:
    """Committed timestamp of ``dot`` at ``process``, if the protocol has one.

    Duck-typed per protocol family: Tempo exposes ``committed_timestamp``
    (an ``int``); Caesar keeps ``(clock, rank)`` tuples in its info table.
    The dependency- and slot-ordered baselines have no agreed per-command
    timestamp, so their events carry ``None`` and skip the timestamp checks.
    """
    reader = getattr(process, "committed_timestamp", None)
    if reader is not None:
        return reader(dot)
    if getattr(process, "name", None) == "caesar":
        record = process._info.get(dot)
        if record is not None and record.status in ("commit", "execute"):
            return record.timestamp
    return None


@dataclass
class ExecutionTraceRecorder:
    """Collects execution events and client windows for one run."""

    events_by_process: Dict[int, List[TraceEvent]] = field(default_factory=dict)
    windows: Dict[Dot, CommandWindow] = field(default_factory=dict)
    partitions: Dict[int, int] = field(default_factory=dict)

    # -- wiring ----------------------------------------------------------------

    def attach(self, processes: Sequence[ProcessBase]) -> "ExecutionTraceRecorder":
        """Subscribe to the execution events of every given process."""
        for process in processes:
            self.partitions[process.process_id] = process.partition
            self.events_by_process.setdefault(process.process_id, [])
            process.add_execution_listener(self._listener_for(process))
        return self

    def _listener_for(self, process: ProcessBase):
        events = self.events_by_process[process.process_id]
        partition = process.partition

        def listener(process_id: int, dot: Dot, command, now: float) -> None:
            events.append(
                TraceEvent(
                    process_id=process_id,
                    partition=partition,
                    dot=dot,
                    keys=tuple(command.keys),
                    timestamp=_timestamp_of(process, dot),
                    time=now,
                    write_keys=tuple(op.key for op in command.ops if op.is_write()),
                )
            )

        return listener

    # -- client windows ---------------------------------------------------------

    def note_submit(self, dot: Dot, keys: Sequence[str], now: float) -> None:
        """Record the client-side submission time of ``dot``."""
        if dot not in self.windows:
            self.windows[dot] = CommandWindow(keys=tuple(keys), submitted_at=now)

    def note_reply(self, dot: Dot, now: float) -> None:
        """Record the client-side completion time of ``dot``."""
        window = self.windows.get(dot)
        if window is not None and window.replied_at is None:
            window.replied_at = now

    # -- inspection --------------------------------------------------------------

    def event_count(self) -> int:
        return sum(len(events) for events in self.events_by_process.values())

    def check(self):
        """Run the full consistency check over the recorded trace."""
        from repro.analysis.consistency import check_trace

        return check_trace(self)
