"""Command-line interface for running experiments and regenerating figures.

Usage (after ``pip install -e .``)::

    python -m repro protocols
    python -m repro run --protocol tempo --sites 5 --clients 8 --conflict 0.02
    python -m repro figure fig5 --clients 8
    python -m repro figure fig7
    python -m repro throughput --protocol tempo --payload 4096 --conflict 0.02
    python -m repro scenarios --select crash --protocol tempo
    python -m repro check --protocol tempo

The CLI is a thin wrapper over :mod:`repro.cluster` and
:mod:`repro.experiments`; everything it prints can also be obtained
programmatically.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.cluster.config import ExperimentConfig
from repro.cluster.runner import run_experiment
from repro.core.config import ProtocolConfig
from repro.experiments.throughput_model import max_throughput
from repro.metrics.report import format_table
from repro.protocols.registry import protocol_names
from repro.simulator.latency import EC2_REGIONS


def _add_run_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "run", help="run one experiment on the discrete-event simulator"
    )
    parser.add_argument("--protocol", default="tempo", choices=protocol_names())
    parser.add_argument("--sites", type=int, default=5, help="number of sites (replicas per shard)")
    parser.add_argument("--faults", type=int, default=1, help="tolerated failures f")
    parser.add_argument("--shards", type=int, default=1, help="number of shards (1 = full replication)")
    parser.add_argument("--clients", type=int, default=8, help="closed-loop clients per site")
    parser.add_argument("--conflict", type=float, default=0.02, help="microbenchmark conflict rate")
    parser.add_argument("--payload", type=int, default=100, help="payload size in bytes")
    parser.add_argument("--duration", type=float, default=3_000.0, help="simulated duration (ms)")
    parser.add_argument("--warmup", type=float, default=500.0, help="warm-up period (ms)")
    parser.add_argument("--workload", default="micro", choices=("micro", "ycsbt"))
    parser.add_argument("--zipf", type=float, default=0.5, help="zipf exponent for YCSB+T")
    parser.add_argument("--writes", type=float, default=0.05, help="write ratio for YCSB+T")
    parser.add_argument("--seed", type=int, default=1)


def _add_figure_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "figure", help="regenerate one of the paper's tables/figures"
    )
    parser.add_argument(
        "name",
        choices=("table1", "fig2", "fig5", "fig6", "fig7", "fig8", "fig9", "pathological"),
    )
    parser.add_argument("--clients", type=int, default=8, help="clients per site for simulator figures")
    parser.add_argument("--duration", type=float, default=2_500.0, help="simulated duration (ms)")


def _add_throughput_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "throughput", help="query the analytical maximum-throughput model"
    )
    parser.add_argument("--protocol", default="tempo", choices=protocol_names())
    parser.add_argument("--sites", type=int, default=5)
    parser.add_argument("--faults", type=int, default=1)
    parser.add_argument("--payload", type=float, default=4096.0)
    parser.add_argument("--conflict", type=float, default=0.02)
    parser.add_argument("--shards", type=int, default=1)


def _add_scenarios_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "scenarios",
        help="run the fault-injection scenario matrix (trace-certified)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="TOKEN",
        help="only run cells whose name or shape matches TOKEN (repeatable); "
        "e.g. --select crash --select zipf for the CI smoke slice",
    )
    parser.add_argument(
        "--protocol",
        action="append",
        dest="protocols",
        choices=protocol_names(),
        help="restrict to one or more protocols (repeatable)",
    )
    parser.add_argument("--duration", type=float, default=2_000.0, help="simulated duration per cell (ms)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--list", action="store_true", help="list the matching cells without running them"
    )


def _add_check_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "check",
        help="run the correctness analyzer: repo lints plus a trace-checked simulation",
    )
    parser.add_argument("--protocol", default="tempo", choices=protocol_names())
    parser.add_argument("--sites", type=int, default=3)
    parser.add_argument("--faults", type=int, default=1)
    parser.add_argument("--clients", type=int, default=2, help="closed-loop clients per site")
    parser.add_argument("--conflict", type=float, default=0.5, help="conflict rate (high by default: conflicts exercise the ordering invariants)")
    parser.add_argument("--duration", type=float, default=1_000.0, help="simulated duration (ms)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--skip-lint", action="store_true", help="only run the trace-checked simulation")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tempo (EuroSys'21) reproduction - experiments and figures",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("protocols", help="list the available protocols")
    _add_run_parser(subparsers)
    _add_figure_parser(subparsers)
    _add_throughput_parser(subparsers)
    _add_scenarios_parser(subparsers)
    _add_check_parser(subparsers)
    return parser


def _command_protocols() -> int:
    for name in protocol_names():
        print(name)
    return 0


def _command_run(args) -> int:
    sites = EC2_REGIONS[: args.sites]
    config = ExperimentConfig(
        protocol=args.protocol,
        num_sites=args.sites,
        faults=args.faults,
        num_shards=args.shards,
        clients_per_site=args.clients,
        conflict_rate=args.conflict,
        payload_size=args.payload,
        workload=args.workload,
        zipf=args.zipf,
        write_ratio=args.writes,
        duration_ms=args.duration,
        warmup_ms=args.warmup,
        seed=args.seed,
        sites=sites,
    )
    result = run_experiment(config)
    rows = [
        {
            "site": site,
            "mean_ms": round(histogram.mean(), 1),
            "p99_ms": round(histogram.percentile(99.0), 1) if len(histogram) else 0.0,
            "samples": len(histogram),
        }
        for site, histogram in result.per_site_latency.items()
    ]
    print(format_table(rows, title=f"{args.protocol} f={args.faults}: per-site latency"))
    print(
        f"\noverall: mean {result.mean_latency():.1f} ms, "
        f"p99 {result.percentile(99.0):.1f} ms, "
        f"throughput {result.throughput_ops:.1f} ops/s, "
        f"completed {result.completed}"
    )
    return 0


def _command_figure(args) -> int:
    name = args.name
    if name == "table1":
        from repro.experiments import table1_fastpath

        print(format_table(table1_fastpath.run(), title="Table 1"))
    elif name == "fig2":
        from repro.experiments import fig2_stability

        print(format_table(fig2_stability.run()["figure2"], title="Figure 2"))
    elif name == "fig5":
        from repro.experiments import fig5_fairness

        options = fig5_fairness.Figure5Options(
            clients_per_site=args.clients, duration_ms=args.duration
        )
        print(format_table(fig5_fairness.run(options), title="Figure 5"))
    elif name == "fig6":
        from repro.experiments import fig6_tail

        options = fig6_tail.Figure6Options(duration_ms=args.duration)
        print(format_table(fig6_tail.run(options), title="Figure 6"))
    elif name == "fig7":
        from repro.experiments import fig7_load

        print(format_table(fig7_load.saturation_table(), title="Figure 7 (ceilings)"))
        print()
        print(format_table(fig7_load.heatmap(), title="Figure 7 (heatmap)"))
    elif name == "fig8":
        from repro.experiments import fig8_batching

        print(format_table(fig8_batching.run(), title="Figure 8"))
    elif name == "fig9":
        from repro.experiments import fig9_partial

        print(format_table(fig9_partial.run(), title="Figure 9"))
    elif name == "pathological":
        from repro.experiments import pathological

        print(format_table(pathological.run(), title="§D pathological scenarios"))
    else:  # pragma: no cover - argparse prevents this
        raise KeyError(name)
    return 0


def _command_throughput(args) -> int:
    config = ProtocolConfig(num_processes=args.sites, faults=args.faults)
    result = max_throughput(
        args.protocol,
        config=config,
        payload=args.payload,
        conflict_rate=args.conflict,
        num_shards=args.shards,
    )
    rows = [
        {
            "protocol": args.protocol,
            "max_kops": round(result["max_ops_per_second"] / 1000.0, 1),
            "bottleneck": result["bottleneck"],
            "cpu": round(result["cpu_utilization"] * 100.0, 1),
            "net_out": round(result["net_out_utilization"] * 100.0, 1),
        }
    ]
    print(format_table(rows, title="modelled saturation throughput"))
    return 0


def _command_scenarios(args) -> int:
    import os

    from repro.experiments.scenarios import ScenarioOptions, build_matrix, run_cell

    options = ScenarioOptions(
        duration_ms=args.duration,
        seed=args.seed,
        select=args.select,
    )
    if args.protocols:
        options.protocols = tuple(args.protocols)
    cells = build_matrix(options)
    if not cells:
        print("no cells match the selection")
        return 1
    if args.list:
        for cell in cells:
            print(f"{cell.shape:9s} {cell.protocol:7s} {cell.name}")
        return 0
    # Every cell is certified: force the trace checker on for the run.
    os.environ["REPRO_TRACE_CHECK"] = "1"
    rows = [run_cell(cell) for cell in cells]
    print(
        format_table(
            rows,
            title="Fault-injection scenario matrix - trace-certified, "
            "p50/p99/p99.9 latency (ms), stuck commands on alive replicas",
        )
    )
    return 0


def _command_check(args) -> int:
    failed = False
    if not args.skip_lint:
        from repro.analysis import lint

        if lint.main([]) != 0:
            failed = True
        print()
    config = ExperimentConfig(
        protocol=args.protocol,
        num_sites=args.sites,
        faults=args.faults,
        clients_per_site=args.clients,
        conflict_rate=args.conflict,
        duration_ms=args.duration,
        warmup_ms=min(200.0, args.duration / 4.0),
        seed=args.seed,
        sites=EC2_REGIONS[: args.sites],
        record_execution_trace=True,
    )
    try:
        result = run_experiment(config)
    except AssertionError as failure:
        print(failure)
        return 1
    report = result.trace_report
    print(
        f"{args.protocol} r={args.sites} f={args.faults} "
        f"conflict={args.conflict}: {report.summary()}"
    )
    return 1 if failed else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.command == "protocols":
        return _command_protocols()
    if args.command == "run":
        return _command_run(args)
    if args.command == "figure":
        return _command_figure(args)
    if args.command == "throughput":
        return _command_throughput(args)
    if args.command == "scenarios":
        return _command_scenarios(args)
    if args.command == "check":
        return _command_check(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
