"""Cluster harness: replicas + closed-loop clients + experiment runner.

This package is the equivalent of the paper's benchmarking framework: it
deploys a protocol over a set of sites (using the discrete-event simulator
as the testbed), attaches closed-loop clients at each site, runs a workload
for a configured duration and reports latency/throughput metrics.
"""

from repro.cluster.client import ClosedLoopClient
from repro.cluster.config import ExperimentConfig
from repro.cluster.runner import ExperimentResult, run_experiment

__all__ = [
    "ClosedLoopClient",
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
]
