"""Closed-loop clients (§6.2: "clients are closed-loop and always deployed
in separate machines located in the same regions as servers").

A closed-loop client submits one command, waits for its reply, records the
observed latency, and immediately submits the next command, until the
experiment duration elapses.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.commands import Command
from repro.core.identifiers import Dot
from repro.core.messages import ClientReply
from repro.metrics.histogram import LatencyHistogram


class ClosedLoopClient:
    """One closed-loop client attached to a site.

    Args:
        client_id: non-negative client identifier (its network endpoint is
            ``-(client_id + 1)``).
        site: name of the site the client lives at.
        site_rank: rank of the site among the deployment's sites (used to
            find the co-located replica of each shard).
        workload: object with ``next_keys()`` and ``next_is_read()``.
        submit: callback ``submit(client, keys, is_read, now)`` provided by
            the runner; it mints the command, registers it and schedules the
            submission, returning the command.
        stop_at: simulated time after which no new commands are submitted.
        warmup_ms: latency samples completed before this time are dropped.
    """

    def __init__(
        self,
        client_id: int,
        site: str,
        site_rank: int,
        workload,
        submit: Callable[["ClosedLoopClient", List[str], bool, float], Command],
        stop_at: float,
        warmup_ms: float = 0.0,
        payload_size: int = 100,
    ) -> None:
        self.client_id = client_id
        self.site = site
        self.site_rank = site_rank
        self.workload = workload
        self._submit = submit
        self.stop_at = stop_at
        self.warmup_ms = warmup_ms
        self.payload_size = payload_size
        self.endpoint = -(client_id + 1)
        self.latency = LatencyHistogram()
        self.all_latency = LatencyHistogram()
        self.pending: Dict[Dot, float] = {}
        self.completed = 0
        self.submitted = 0
        self.active = False

    # -- lifecycle --------------------------------------------------------------

    def start(self, now: float) -> None:
        """Submit the first command."""
        self.active = True
        self.submit_next(now)

    def submit_next(self, now: float) -> Optional[Command]:
        """Submit the next command unless the experiment window closed."""
        if now >= self.stop_at:
            self.active = False
            return None
        keys = self.workload.next_keys()
        is_read = self.workload.next_is_read()
        command = self._submit(self, keys, is_read, now)
        self.pending[command.dot] = now
        self.submitted += 1
        return command

    def on_reply(self, sender: int, message: object, now: float) -> None:
        """Handle the execution reply for an outstanding command."""
        if not isinstance(message, ClientReply):
            return
        submitted_at = self.pending.pop(message.dot, None)
        if submitted_at is None:
            return
        latency = now - submitted_at
        self.all_latency.record(latency)
        if now >= self.warmup_ms:
            self.latency.record(latency)
        self.completed += 1
        self.submit_next(now)

    # -- introspection -------------------------------------------------------------

    def outstanding(self) -> int:
        """Commands submitted but not yet acknowledged."""
        return len(self.pending)

    def mean_latency(self) -> float:
        return self.latency.mean()
