"""Experiment configuration for the cluster harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.faults.plan import FaultPlan
from repro.simulator.latency import EC2_REGIONS


@dataclass
class ExperimentConfig:
    """One experiment: a protocol, a deployment and a workload.

    Attributes:
        protocol: protocol name from :mod:`repro.protocols.registry`.
        num_sites: number of sites; each site hosts one replica per shard.
        faults: tolerated failures ``f``.
        num_shards: number of shards (partitions); 1 = full replication.
        clients_per_site: closed-loop clients per site.
        conflict_rate: microbenchmark conflict rate (ignored when
            ``workload`` is ``"ycsbt"``).
        payload_size: command payload in bytes.
        keys_per_command: keys per command for the microbenchmark.
        workload: ``"micro"`` or ``"ycsbt"``.
        zipf: zipfian exponent for YCSB+T.
        write_ratio: write fraction for YCSB+T (ignored by Tempo).
        read_ratio: read fraction for the microbenchmark.
        duration_ms: how long clients keep submitting (simulated ms).
        warmup_ms: samples before this time are discarded.
        seed: RNG seed (workloads, jitter).
        sites: site names; defaults to the paper's five EC2 regions.
        protocol_kwargs: extra arguments for the protocol constructor.
        crash_site_rank: if set, crash the replica of ``crash_shard`` hosted
            at this site rank at ``crash_at_ms`` (failure-injection runs,
            e.g. the crash-during-contention tail benchmark).  A legacy shim:
            the pair compiles into a one-event :class:`repro.faults.FaultPlan`
            (see :meth:`compiled_fault_plan`); new code should pass
            ``fault_plan`` directly.
        crash_shard: shard whose replica is crashed (default 0).
        crash_at_ms: simulated time of the injected crash.
        fault_plan: declarative timeline of fault events (crashes, restarts,
            partitions, flaky-link windows, targeted message loss) executed
            by :class:`repro.faults.FaultInjector` during the run.  Mutually
            exclusive with the legacy ``crash_*`` knobs.
        measure_encoded_bytes: run every transmitted message through the
            ``repro.wire`` codec and record measured frame sizes in the
            ``encoded_*`` stats next to the ``size_bytes()`` declarations
            (default off; since the epoch-2 re-baseline ``size_bytes()``
            matches the codec output byte-for-byte, so this is a zero-drift
            cross-check, not a correction).
        record_execution_trace: record every command execution (replica,
            identifier, keys, committed timestamp) plus client submit/reply
            windows, and run the :mod:`repro.analysis` consistency checks
            over the trace after the run, raising on any violation.
            Observation-only: a traced run produces identical results.
            ``REPRO_TRACE_CHECK=1`` in the environment forces it on.
    """

    protocol: str = "tempo"
    num_sites: int = 5
    faults: int = 1
    num_shards: int = 1
    clients_per_site: int = 16
    conflict_rate: float = 0.02
    payload_size: int = 100
    keys_per_command: int = 1
    workload: str = "micro"
    zipf: float = 0.5
    write_ratio: float = 0.05
    read_ratio: float = 0.0
    duration_ms: float = 4_000.0
    warmup_ms: float = 500.0
    seed: int = 1
    sites: Sequence[str] = field(default_factory=lambda: EC2_REGIONS)
    keys_per_shard: int = 10_000
    protocol_kwargs: Dict[str, object] = field(default_factory=dict)
    crash_site_rank: Optional[int] = None
    crash_shard: int = 0
    crash_at_ms: Optional[float] = None
    fault_plan: Optional[FaultPlan] = None
    measure_encoded_bytes: bool = False
    record_execution_trace: bool = False

    def __post_init__(self) -> None:
        if self.num_sites < 1:
            raise ValueError("num_sites must be >= 1")
        if len(self.sites) < self.num_sites:
            raise ValueError("not enough site names for num_sites")
        if self.clients_per_site < 1:
            raise ValueError("clients_per_site must be >= 1")
        if self.duration_ms <= 0 or self.warmup_ms < 0:
            raise ValueError("invalid duration/warmup")
        if self.warmup_ms >= self.duration_ms:
            raise ValueError("warmup_ms must be smaller than duration_ms")
        if self.workload not in ("micro", "ycsbt"):
            raise ValueError("workload must be 'micro' or 'ycsbt'")
        if (self.crash_site_rank is None) != (self.crash_at_ms is None):
            raise ValueError(
                "crash_site_rank and crash_at_ms must be set together"
            )
        if self.crash_site_rank is not None:
            if self.fault_plan is not None:
                raise ValueError(
                    "fault_plan and the legacy crash knobs are mutually "
                    "exclusive; express the crash as a plan event"
                )
            if not 0 <= self.crash_site_rank < self.num_sites:
                raise ValueError("crash_site_rank out of range")
            if not 0 <= self.crash_shard < self.num_shards:
                raise ValueError("crash_shard out of range")
            if self.crash_at_ms <= 0:
                raise ValueError("crash_at_ms must be positive")
        if self.fault_plan is not None:
            self.fault_plan.validate(self.num_sites, self.num_shards)

    def site_names(self) -> Sequence[str]:
        """Names of the sites actually used."""
        return list(self.sites[: self.num_sites])

    def compiled_fault_plan(self) -> Optional[FaultPlan]:
        """The fault plan to run: ``fault_plan`` as given, or the legacy
        crash knobs compiled into a one-event plan, or ``None``."""
        if self.fault_plan is not None:
            return self.fault_plan
        if self.crash_site_rank is not None and self.crash_at_ms is not None:
            return FaultPlan.from_legacy_crash(
                self.crash_site_rank, self.crash_shard, self.crash_at_ms
            )
        return None

    def total_clients(self) -> int:
        return self.clients_per_site * self.num_sites
