"""Experiment runner: deploy a protocol over the simulator and measure it.

``run_experiment(config)`` builds the whole stack — latency matrix, network,
protocol processes (one per shard per site), key-value stores, closed-loop
clients with their workloads — runs the discrete-event simulation for the
configured duration and returns an :class:`ExperimentResult` with per-site
and aggregate latency plus throughput.

This is the reproduction of the paper's *simulator* execution mode (§6.1);
the maximum-throughput figures use the analytical resource model in
:mod:`repro.experiments.throughput_model` instead.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.analysis.trace import ExecutionTraceRecorder
from repro.cluster.client import ClosedLoopClient
from repro.cluster.config import ExperimentConfig
from repro.core.base import ProcessBase
from repro.core.commands import Command, Partitioner
from repro.core.config import ProtocolConfig
from repro.core.quorums import QuorumSystem
from repro.faults.injector import FaultInjector
from repro.faults.plan import Crash
from repro.kvstore.sharding import ShardMap
from repro.reliability import RetransmitBuffer
from repro.kvstore.store import KeyValueStore
from repro.metrics.histogram import LatencyHistogram
from repro.metrics.throughput import ThroughputTracker
from repro.protocols.registry import build_process
from repro.simulator.latency import ec2_latency_matrix
from repro.simulator.network import Network, NetworkOptions
from repro.simulator.rng import SeededRng
from repro.simulator.sim import Simulation, SimulationOptions
from repro.workloads.micro import MicroWorkload
from repro.workloads.ycsbt import YcsbTWorkload


@dataclass
class ExperimentResult:
    """Aggregated outcome of one experiment run."""

    config: ExperimentConfig
    latency: LatencyHistogram
    per_site_latency: Dict[str, LatencyHistogram]
    throughput_ops: float
    completed: int
    submitted: int
    per_site_throughput: Dict[str, float] = field(default_factory=dict)
    fast_path_ratio: Optional[float] = None
    stats: Dict[str, float] = field(default_factory=dict)
    #: The deployment the run executed on (processes, network, stores),
    #: kept so tests can assert on internal protocol state post-run.
    deployment: Optional[object] = field(default=None, repr=False)
    #: Consistency report of the traced run (``record_execution_trace``),
    #: ``None`` when tracing was off.  A report with violations never
    #: reaches the caller: ``run_experiment`` raises instead.
    trace_report: Optional[object] = field(default=None, repr=False)

    def mean_latency(self) -> float:
        return self.latency.mean()

    def site_mean_latency(self) -> Dict[str, float]:
        return {
            site: histogram.mean() for site, histogram in self.per_site_latency.items()
        }

    def percentile(self, percentile: float) -> float:
        return self.latency.percentile(percentile)


#: Callbacks invoked with ``(config, result)`` after every
#: :func:`run_experiment`.  The benchmark harness subscribes one to surface
#: per-run message counts next to wall time in CI output.
EXPERIMENT_OBSERVERS: List[Callable[[ExperimentConfig, "ExperimentResult"], None]] = []


class _Deployment:
    """Everything built for one experiment run."""

    def __init__(self, config: ExperimentConfig) -> None:
        self.config = config
        self.sites = list(config.site_names())
        self.protocol_config = ProtocolConfig(
            num_processes=config.num_sites,
            faults=config.faults,
            num_partitions=config.num_shards,
        )
        self.shard_map = ShardMap(config.num_shards, keys_per_shard=config.keys_per_shard)
        self.partitioner = (
            self.shard_map.partitioner()
            if config.num_shards > 1
            else Partitioner(1)
        )
        self.latency_matrix = ec2_latency_matrix(self.sites)
        self.network = Network(
            self.latency_matrix,
            NetworkOptions(measure_encoded=config.measure_encoded_bytes),
            rng=SeededRng(config.seed),
        )
        self.quorum_system = QuorumSystem(
            self.protocol_config, latencies=self._process_latencies()
        )
        self.stores: Dict[int, KeyValueStore] = {}
        self.processes: List[ProcessBase] = []
        for process_id in range(self.protocol_config.total_processes()):
            store = KeyValueStore(self.protocol_config.partition_of_process(process_id))
            self.stores[process_id] = store
            process = build_process(
                config.protocol,
                process_id,
                self.protocol_config,
                partitioner=self.partitioner,
                quorum_system=self.quorum_system,
                apply_fn=store.apply,
                **config.protocol_kwargs,
            )
            self.processes.append(process)
            site = self.sites[self.protocol_config.site_of_process(process_id)]
            self.network.place(process_id, site)
        self.simulation = Simulation(
            self.processes,
            self.network,
            SimulationOptions(
                tick_interval=5.0,
                max_time=config.duration_ms + 5_000.0,
            ),
        )

    def _process_latencies(self) -> Dict[int, Dict[int, float]]:
        """Latency table between global processes, derived from their sites."""
        config = self.protocol_config
        table: Dict[int, Dict[int, float]] = {}
        for a in range(config.total_processes()):
            table[a] = {}
            site_a = self.sites[config.site_of_process(a)]
            for b in range(config.total_processes()):
                site_b = self.sites[config.site_of_process(b)]
                table[a][b] = self.latency_matrix.latency(site_a, site_b)
        return table

    def process_for(self, site_rank: int, shard: int) -> ProcessBase:
        """The replica of ``shard`` hosted at the site with rank ``site_rank``."""
        process_id = shard * self.protocol_config.num_processes + site_rank
        return self.processes[process_id]


def _build_workload(config: ExperimentConfig, client_id: int, deployment: _Deployment):
    if config.workload == "ycsbt":
        return YcsbTWorkload(
            client_id=client_id,
            shard_map=deployment.shard_map,
            zipf=config.zipf,
            write_ratio=config.write_ratio,
            keys_per_shard=config.keys_per_shard,
            payload_size=config.payload_size,
            rng=SeededRng(config.seed * 10_007 + client_id),
        )
    return MicroWorkload(
        client_id=client_id,
        conflict_rate=config.conflict_rate,
        payload_size=config.payload_size,
        keys_per_command=config.keys_per_command,
        read_ratio=config.read_ratio,
        rng=SeededRng(config.seed * 10_007 + client_id),
    )


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Run one experiment and aggregate its metrics."""
    deployment = _Deployment(config)
    simulation = deployment.simulation
    throughput = ThroughputTracker(warmup_ms=config.warmup_ms)
    clients: List[ClosedLoopClient] = []

    recorder: Optional[ExecutionTraceRecorder] = None
    if config.record_execution_trace or os.environ.get("REPRO_TRACE_CHECK") == "1":
        recorder = ExecutionTraceRecorder().attach(deployment.processes)

    def make_submit(deployment: _Deployment):
        def submit(client: ClosedLoopClient, keys: List[str], is_read: bool, now: float) -> Command:
            shards = sorted({deployment.partitioner.partition_of(key) for key in keys})
            target = deployment.process_for(client.site_rank, shards[0])
            dot = target.dot_generator.next_id()
            if is_read:
                command = Command.read(
                    dot, keys, payload_size=client.payload_size, client_id=client.client_id
                )
            else:
                command = Command.write(
                    dot, keys, payload_size=client.payload_size, client_id=client.client_id
                )
            # Client -> co-located replica delay is the local (intra-site)
            # latency of the network.
            delay = deployment.network.options.local_latency_ms
            simulation.submit_at(now + delay, target.process_id, command)
            if recorder is not None:
                recorder.note_submit(dot, keys, now)
            return command

        return submit

    submit = make_submit(deployment)
    client_id = 0
    for site_rank, site in enumerate(deployment.sites):
        for _ in range(config.clients_per_site):
            workload = _build_workload(config, client_id, deployment)
            client = ClosedLoopClient(
                client_id=client_id,
                site=site,
                site_rank=site_rank,
                workload=workload,
                submit=submit,
                stop_at=config.duration_ms,
                warmup_ms=config.warmup_ms,
                payload_size=config.payload_size,
            )
            clients.append(client)
            deployment.network.place(client.endpoint, site)

            def handler(sender: int, message: object, now: float, client=client, site=site) -> None:
                client.on_reply(sender, message, now)
                if recorder is not None and hasattr(message, "dot"):
                    recorder.note_reply(message.dot, now)
                if now >= config.warmup_ms:
                    throughput.record(now, site)

            simulation.register_external(client.endpoint, handler)
            client_id += 1

    # Stagger client start times slightly so submissions do not all land on
    # the same simulated instant.
    rng = SeededRng(config.seed)
    for client in clients:
        start_delay = rng.uniform_between(0.0, 5.0)
        simulation.schedule(start_delay, lambda now, client=client: client.start(now))

    fault_plan = config.compiled_fault_plan()
    if fault_plan is not None:
        FaultInjector(
            fault_plan,
            sites=deployment.sites,
            process_id_of=lambda site_rank, shard: deployment.process_for(
                site_rank, shard
            ).process_id,
            num_shards=config.num_shards,
        ).install(simulation)
        # Reliable delivery (ack-driven retransmission + the promise-GC
        # ack floor) arms only for plans that can *lose or delay* traffic:
        # restarts, partitions, flaky links, targeted loss.  A crash-only
        # plan drops no message a live process will ever need again (the
        # crashed replica never returns), so those runs — and with them
        # the crash-tail goldens — stay byte-identical to the seed.
        if any(not isinstance(event, Crash) for event in fault_plan):
            for process in deployment.processes:
                process.enable_reliability(RetransmitBuffer(process.process_id))

    simulation.run(until=config.duration_ms + 4_000.0)

    overall = LatencyHistogram()
    per_site: Dict[str, LatencyHistogram] = {site: LatencyHistogram() for site in deployment.sites}
    completed = 0
    submitted = 0
    for client in clients:
        overall.merge(LatencyHistogram(client.latency.samples()))
        per_site[client.site].merge(LatencyHistogram(client.latency.samples()))
        completed += client.completed
        submitted += client.submitted

    network_stats = deployment.network.stats
    stats: Dict[str, float] = {
        "messages_sent": float(network_stats.messages_sent),
        "messages_delivered": float(network_stats.messages_delivered),
        "bytes_sent": float(network_stats.bytes_sent),
        "batches_sent": float(network_stats.batches_sent),
        "deliveries": float(network_stats.deliveries),
        "events": float(simulation.stats.events_processed),
        "heap_ops": float(simulation.queue.heap_ops),
    }
    # Memory columns (epoch-2): end-of-run live bookkeeping and the per-key
    # conflict-window high-water mark, summed/maxed over all processes.
    # With watermark GC these must stay O(in-flight) regardless of run
    # length; the fig6 benchmark artifact and its CI gate read them.
    footprints = [process.memory_footprint() for process in deployment.processes]
    stats["live_records"] = float(sum(f["records"] for f in footprints))
    stats["archived_records"] = float(sum(f["archived"] for f in footprints))
    stats["peak_live_per_key"] = float(
        max(f["peak_live_per_key"] for f in footprints)
    )
    stats["gc_collected"] = float(sum(f["gc_collected"] for f in footprints))
    # Reliable-delivery counters (only present when the run armed it), so
    # the bounded-retransmission tests can assert "no storm" directly.
    buffers = [
        process.reliability.stats()
        for process in deployment.processes
        if process.reliability is not None
    ]
    if buffers:
        for key in ("tracked", "acked", "resends", "expired", "stale_acks", "pending"):
            stats[f"retransmit_{key}"] = float(sum(b[key] for b in buffers))
    # Per-kind message counts (e.g. ``sent:MCommitRequest``) so message-
    # traffic regressions are visible to tests and the CI smoke job.
    for kind in sorted(network_stats.per_kind):
        stats[f"sent:{kind}"] = float(network_stats.per_kind[kind])
    # Measured codec columns appear only when the run measured them
    # (``measure_encoded_bytes``), keeping default stats dicts unchanged.
    if config.measure_encoded_bytes:
        stats["encoded_bytes"] = float(network_stats.encoded_bytes)
        stats["encoded_batch_overhead"] = float(network_stats.encoded_batch_overhead)
        for kind in sorted(network_stats.per_kind_encoded):
            stats[f"encoded:{kind}"] = float(network_stats.per_kind_encoded[kind])
    trace_report = None
    if recorder is not None:
        trace_report = recorder.check()
        trace_report.raise_if_violations()
    result = ExperimentResult(
        config=config,
        latency=overall,
        per_site_latency=per_site,
        throughput_ops=throughput.ops_per_second(),
        completed=completed,
        submitted=submitted,
        per_site_throughput=throughput.ops_per_second_per_site(),
        stats=stats,
        deployment=deployment,
        trace_report=trace_report,
    )
    for observer in EXPERIMENT_OBSERVERS:
        observer(config, result)
    return result
