"""Core Tempo protocol: timestamping, stability detection, commit and recovery.

This package contains the paper's primary contribution — the Tempo
leaderless state-machine-replication protocol (EuroSys '21) — implemented as
message-driven state machines that can be executed by the discrete-event
simulator (:mod:`repro.simulator`), the asyncio runtime
(:mod:`repro.runtime`) or directly from tests.

The main entry point is :class:`repro.core.process.TempoProcess`.
"""

from repro.core.clock import LogicalClock
from repro.core.commands import Command, KeyGenerator
from repro.core.config import ProtocolConfig
from repro.core.identifiers import Dot
from repro.core.phases import Phase
from repro.core.process import TempoProcess
from repro.core.promises import Promise, PromiseSet
from repro.core.quorums import QuorumSystem

__all__ = [
    "Command",
    "Dot",
    "KeyGenerator",
    "LogicalClock",
    "Phase",
    "Promise",
    "PromiseSet",
    "ProtocolConfig",
    "QuorumSystem",
    "TempoProcess",
]
