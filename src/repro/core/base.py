"""Runtime-agnostic process abstraction.

Every replication protocol in this repository (Tempo and the baselines) is a
*message-driven state machine*: it reacts to messages and periodic ticks and
appends outgoing messages to an outbox.  A runtime — the discrete-event
simulator, the asyncio runtime, or a plain test — drives the state machine
by delivering messages and draining the outbox.

Self-addressed messages are delivered synchronously (the paper assumes
"self-addressed messages are delivered immediately", §3.1).
"""

from __future__ import annotations

import abc
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.commands import Command
from repro.core.config import ProtocolConfig
from repro.core.identifiers import Dot


class Envelope(NamedTuple):
    """An outgoing message: who sends it, to whom, and what.

    A ``NamedTuple`` rather than a dataclass: envelopes are created once per
    message per destination on the simulator's hot path, and tuple creation
    is several times cheaper.
    """

    sender: int
    destination: int
    message: object


class MBatch(NamedTuple):
    """Transport-level envelope bundling several messages from one sender to
    one destination into a single delivery.

    ``MBatch`` is not a protocol message: it never appears in a dispatch
    table and protocols never see it.  Runtimes that coalesce same-
    destination traffic (the discrete-event simulator batches every message
    a process emits while handling one event) wrap the messages in an
    ``MBatch`` and :meth:`ProcessBase.deliver` unpacks it, dispatching the
    inner messages in their original send order.  See ``docs/batching.md``.
    """

    messages: Tuple[object, ...]


ExecutionListener = Callable[[int, Dot, Command, float], None]
"""Callback ``(process_id, dot, command, now)`` invoked on command execution."""


class ProcessBase(abc.ABC):
    """Base class for protocol processes.

    Subclasses implement :meth:`submit`, :meth:`on_message` and
    :meth:`tick`; this class provides the outbox, execution bookkeeping and
    the synchronous self-delivery used throughout the pseudocode.
    """

    def __init__(self, process_id: int, config: ProtocolConfig) -> None:
        self.process_id = process_id
        self.config = config
        self.partition = config.partition_of_process(process_id)
        self._partition_peers: Tuple[int, ...] = tuple(
            config.processes_of_partition(self.partition)
        )
        self._partition_peer_set: FrozenSet[int] = frozenset(self._partition_peers)
        #: Depth of the current delivery step (``deliver`` nests through
        #: synchronous self-addressed sends); ``_flush_step`` fires when the
        #: outermost delivery unwinds.
        self._step_depth = 0
        self.outbox: List[Envelope] = []
        self.executed: List[Tuple[Dot, Command]] = []
        self._execution_listeners: List[ExecutionListener] = []
        self.alive = True
        #: Which peers this process currently believes to be alive; runtimes
        #: (or tests) update it to emulate a failure detector.
        self.alive_view: Dict[int, bool] = {}
        #: Count of handled messages per kind, used by tests and the
        #: resource model calibration.
        self.message_counts: Dict[str, int] = {}

    # -- wiring ---------------------------------------------------------------

    def add_execution_listener(self, listener: ExecutionListener) -> None:
        """Register a callback invoked whenever this process executes a
        command."""
        self._execution_listeners.append(listener)

    def drain_outbox(self) -> List[Envelope]:
        """Return and clear the pending outgoing messages."""
        envelopes, self.outbox = self.outbox, []
        return envelopes

    def send(self, destinations: Iterable[int], message: object, now: float = 0.0) -> None:
        """Queue ``message`` for each destination.

        A copy addressed to this very process is handled immediately and
        synchronously rather than queued, matching the paper's assumption
        about self-addressed messages.
        """
        self_addressed = False
        for destination in destinations:
            if destination == self.process_id:
                self_addressed = True
            else:
                self.outbox.append(Envelope(self.process_id, destination, message))
        if self_addressed:
            self.deliver(self.process_id, message, now)

    # -- runtime entry points --------------------------------------------------

    def deliver(self, sender: int, message: object, now: float = 0.0) -> None:
        """Deliver one message (or one :class:`MBatch`) to this process.

        Batches are unpacked here, preserving the send order of the inner
        messages; crashed processes drop the whole delivery.

        Every delivery runs inside a *delivery scope*: reactive work a
        protocol wants to run once per delivered batch rather than once per
        inner message (e.g. Tempo's stability check) is deferred via
        :meth:`_flush_step`, which fires exactly once when the outermost
        delivery unwinds — nested self-addressed deliveries share the
        enclosing scope.
        """
        if not self.alive:
            return
        depth = self._step_depth
        self._step_depth = depth + 1
        message_counts = self.message_counts
        try:
            if type(message) is MBatch:
                on_message = self.on_message
                for inner in message.messages:
                    kind = type(inner).__name__
                    message_counts[kind] = message_counts.get(kind, 0) + 1
                    on_message(sender, inner, now)
            else:
                kind = type(message).__name__
                message_counts[kind] = message_counts.get(kind, 0) + 1
                self.on_message(sender, message, now)
        finally:
            self._step_depth = depth
        if depth == 0:
            self._flush_step(now)

    def _flush_step(self, now: float) -> None:
        """Hook run once per outermost delivery (the batch-delivery scope).

        The default does nothing; protocols override it to coalesce
        per-message reactive work into per-batch work.
        """

    @abc.abstractmethod
    def submit(self, command: Command, now: float = 0.0) -> None:
        """Submit a command at this process on behalf of a client."""

    @abc.abstractmethod
    def on_message(self, sender: int, message: object, now: float) -> None:
        """Handle one protocol message."""

    def tick(self, now: float) -> None:
        """Periodic processing (promise broadcast, stability, recovery).

        The default implementation does nothing; protocols override it.
        """

    # -- failure injection ------------------------------------------------------

    def crash(self) -> None:
        """Crash this process: it stops reacting to messages and ticks."""
        self.alive = False

    def recover_process(self) -> None:
        """Un-crash the process (used only by tests; the paper assumes
        crash-stop failures)."""
        self.alive = True

    def believes_alive(self, process: int) -> bool:
        """Failure-detector view of ``process`` (defaults to alive)."""
        return self.alive_view.get(process, True)

    def set_alive_view(self, process: int, alive: bool) -> None:
        """Update the failure-detector view for ``process``."""
        self.alive_view[process] = alive

    # -- execution bookkeeping ---------------------------------------------------

    def record_execution(self, dot: Dot, command: Command, now: float) -> None:
        """Record that this process executed ``command``."""
        self.executed.append((dot, command))
        for listener in self._execution_listeners:
            listener(self.process_id, dot, command, now)

    def executed_dots(self) -> List[Dot]:
        """Identifiers executed so far, in execution order."""
        return [dot for dot, _ in self.executed]

    # -- introspection -----------------------------------------------------------

    def partition_peers(self) -> Sequence[int]:
        """Processes replicating the same partition (including self)."""
        return self._partition_peers

    def partition_peer_set(self) -> FrozenSet[int]:
        """Frozen set view of :meth:`partition_peers`, cached per process
        (membership tests on the per-message hot path)."""
        return self._partition_peer_set

    def leader_of_partition(self) -> Optional[int]:
        """Simple Omega-style leader: lowest-id peer believed alive."""
        for peer in self.partition_peers():
            if self.believes_alive(peer):
                return peer
        return None
