"""Runtime-agnostic process abstraction.

Every replication protocol in this repository (Tempo and the baselines) is a
*message-driven state machine*: it reacts to messages and periodic ticks and
appends outgoing messages to an outbox.  A runtime — the discrete-event
simulator, the asyncio runtime, or a plain test — drives the state machine
by delivering messages and draining the outbox.

Self-addressed messages are delivered synchronously (the paper assumes
"self-addressed messages are delivered immediately", §3.1).
"""

from __future__ import annotations

import abc
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.commands import Command
from repro.core.config import ProtocolConfig
from repro.core.identifiers import Dot


class Envelope(NamedTuple):
    """An outgoing message: who sends it, to whom, and what.

    A ``NamedTuple`` rather than a dataclass: envelopes are created once per
    message per destination on the simulator's hot path, and tuple creation
    is several times cheaper.
    """

    sender: int
    destination: int
    message: object


class MBatch(NamedTuple):
    """Transport-level envelope bundling several messages from one sender to
    one destination into a single delivery.

    ``MBatch`` is not a protocol message: it never appears in a dispatch
    table and protocols never see it.  Runtimes that coalesce same-
    destination traffic (the discrete-event simulator batches every message
    a process emits while handling one event) wrap the messages in an
    ``MBatch`` and :meth:`ProcessBase.deliver` unpacks it, dispatching the
    inner messages in their original send order.  See ``docs/batching.md``.
    """

    messages: Tuple[object, ...]


ExecutionListener = Callable[[int, Dot, Command, float], None]
"""Callback ``(process_id, dot, command, now)`` invoked on command execution."""


class ProcessBase(abc.ABC):
    """Base class for protocol processes.

    Subclasses implement :meth:`submit`, :meth:`on_message` and
    :meth:`tick`; this class provides the outbox, execution bookkeeping and
    the synchronous self-delivery used throughout the pseudocode.
    """

    #: Type-indexed message dispatch table.  Every protocol populates an
    #: instance attribute of this name in ``__init__``; :meth:`deliver`
    #: dispatches through it directly (one pointer-hash dict probe per
    #: message), skipping the :meth:`on_message` call frame.  Processes
    #: without a table (``None``) fall back to :meth:`on_message`.
    _dispatch: Optional[Dict[type, Callable[[int, object, float], None]]] = None

    def __init__(self, process_id: int, config: ProtocolConfig) -> None:
        self.process_id = process_id
        self.config = config
        self.partition = config.partition_of_process(process_id)
        self._partition_peers: Tuple[int, ...] = tuple(
            config.processes_of_partition(self.partition)
        )
        self._partition_peer_set: FrozenSet[int] = frozenset(self._partition_peers)
        #: Depth of the current delivery step (``deliver`` nests through
        #: synchronous self-addressed sends); ``_flush_step`` fires when the
        #: outermost delivery unwinds.
        self._step_depth = 0
        #: Whether the subclass actually overrides :meth:`_flush_step`;
        #: detected once here so :meth:`deliver` skips the no-op call frame
        #: per delivery for protocols that don't use the hook.
        self._wants_flush = type(self)._flush_step is not ProcessBase._flush_step
        self.outbox: List[Envelope] = []
        self.executed: List[Tuple[Dot, Command]] = []
        self._execution_listeners: List[ExecutionListener] = []
        self.alive = True
        #: Recovery epoch: bumped on every :meth:`recover_process`, stamped
        #: into delivery acks so the reliable-delivery layer can tell a
        #: pre-crash ack from a post-restart one.
        self.epoch = 0
        #: Reliable-delivery state (:class:`repro.reliability.RetransmitBuffer`),
        #: installed by :meth:`enable_reliability` only for runs whose fault
        #: plan can lose messages; ``None`` — the default — keeps every hook
        #: a single attribute test so healthy runs stay bit-identical.
        self.reliability = None
        #: Which peers this process currently believes to be alive; runtimes
        #: (or tests) update it to emulate a failure detector.
        self.alive_view: Dict[int, bool] = {}
        #: Count of handled messages per message *type*.  Keyed by class on
        #: the hot path (pointer hashing beats string hashing); the public
        #: :attr:`message_counts` property derives the kind-name view used
        #: by tests and the resource model calibration.
        self._message_counts: Dict[type, int] = {}

    # -- wiring ---------------------------------------------------------------

    def add_execution_listener(self, listener: ExecutionListener) -> None:
        """Register a callback invoked whenever this process executes a
        command."""
        self._execution_listeners.append(listener)

    def drain_outbox(self) -> List[Envelope]:
        """Return and clear the pending outgoing messages."""
        envelopes, self.outbox = self.outbox, []
        return envelopes

    def send(self, destinations: Iterable[int], message: object, now: float = 0.0) -> None:
        """Queue ``message`` for each destination.

        A copy addressed to this very process is handled immediately and
        synchronously rather than queued, matching the paper's assumption
        about self-addressed messages.
        """
        process_id = self.process_id
        if type(destinations) is list and len(destinations) == 1:
            # Single-destination sends (acks, replies) dominate; skip the
            # loop machinery for them.
            destination = destinations[0]
            if destination == process_id:
                self.deliver(process_id, message, now)
            else:
                self.outbox.append(Envelope(process_id, destination, message))
            return
        self_addressed = False
        for destination in destinations:
            if destination == process_id:
                self_addressed = True
            else:
                self.outbox.append(Envelope(process_id, destination, message))
        if self_addressed:
            self.deliver(process_id, message, now)

    # -- runtime entry points --------------------------------------------------

    def deliver(self, sender: int, message: object, now: float = 0.0) -> None:
        """Deliver one message (or one :class:`MBatch`) to this process.

        Batches are unpacked here, preserving the send order of the inner
        messages; crashed processes drop the whole delivery.

        Every delivery runs inside a *delivery scope*: reactive work a
        protocol wants to run once per delivered batch rather than once per
        inner message (e.g. Tempo's stability check) is deferred via
        :meth:`_flush_step`, which fires exactly once when the outermost
        delivery unwinds — nested self-addressed deliveries share the
        enclosing scope.
        """
        if not self.alive:
            return
        depth = self._step_depth
        self._step_depth = depth + 1
        counts = self._message_counts
        dispatch = self._dispatch
        try:
            if type(message) is MBatch:
                if dispatch is not None:
                    dispatch_get = dispatch.get
                    for inner in message.messages:
                        message_type = inner.__class__
                        counts[message_type] = counts.get(message_type, 0) + 1
                        handler = dispatch_get(message_type)
                        if handler is not None:
                            handler(sender, inner, now)
                        else:
                            self.on_message(sender, inner, now)
                else:
                    on_message = self.on_message
                    for inner in message.messages:
                        message_type = inner.__class__
                        counts[message_type] = counts.get(message_type, 0) + 1
                        on_message(sender, inner, now)
            else:
                message_type = message.__class__
                counts[message_type] = counts.get(message_type, 0) + 1
                if dispatch is not None:
                    handler = dispatch.get(message_type)
                    if handler is not None:
                        handler(sender, message, now)
                    else:
                        self.on_message(sender, message, now)
                else:
                    self.on_message(sender, message, now)
        finally:
            self._step_depth = depth
        if depth == 0 and self._wants_flush:
            self._flush_step(now)

    def _flush_step(self, now: float) -> None:
        """Hook run once per outermost delivery (the batch-delivery scope).

        The default does nothing; protocols override it to coalesce
        per-message reactive work into per-batch work.
        """

    @abc.abstractmethod
    def submit(self, command: Command, now: float = 0.0) -> None:
        """Submit a command at this process on behalf of a client."""

    @abc.abstractmethod
    def on_message(self, sender: int, message: object, now: float) -> None:
        """Handle one protocol message."""

    def tick(self, now: float) -> None:
        """Periodic processing (promise broadcast, stability, recovery).

        The default implementation does nothing; protocols override it.
        """

    @property
    def message_counts(self) -> Dict[str, int]:
        """Count of handled messages per kind name (derived view of the
        type-keyed hot-path counters)."""
        return {
            message_type.__name__: count
            for message_type, count in self._message_counts.items()
        }

    def messages_handled(self) -> int:
        """Total messages handled, without materialising the per-kind view
        (the monitor samples this per process on a fixed interval)."""
        return sum(self._message_counts.values())

    # -- failure injection ------------------------------------------------------

    def crash(self) -> None:
        """Crash this process: it stops reacting to messages and ticks."""
        self.alive = False

    def recover_process(self) -> None:
        """Un-crash the process (crash-recovery model: the replica returns
        holding its durable state under a new recovery epoch)."""
        self.alive = True
        self.epoch += 1

    # -- reliable delivery -------------------------------------------------------

    def enable_reliability(self, buffer) -> None:
        """Install a retransmit buffer (:mod:`repro.reliability`).

        Protocols gate all reliable-delivery work — tracking critical
        outbound messages, acking tracked inbound ones, retransmission on
        ticks — on ``self.reliability is not None``, so a process without a
        buffer behaves (and costs) exactly as before this layer existed.
        """
        self.reliability = buffer

    def _reliability_tick(self, now: float) -> None:
        """Re-send tracked messages whose ack is overdue (called from every
        protocol's ``tick``; no-op without a buffer)."""
        buffer = self.reliability
        if buffer is None:
            return
        for destination, message in buffer.due(now):
            self.send([destination], message, now)

    def _on_delivery_ack(self, sender: int, message: object, now: float) -> None:
        """Retire the retransmit-buffer entry a peer just acknowledged.

        Protocols with promise state override this to also absorb the
        piggybacked frontier (the promise-GC floor); they must call up.
        """
        buffer = self.reliability
        if buffer is not None:
            buffer.record_ack(sender, message.kind_id, message.dot, message.epoch)

    def _ack_delivery(
        self, sender: int, kind_id: int, dot: Dot, now: float, frontier: int = 0
    ) -> None:
        """Send one delivery ack for a tracked inbound message.

        Callers gate on ``self.reliability is not None`` and on
        ``sender != self.process_id`` (self-deliveries need no ack).
        """
        # Imported here, not at module level: ``repro.core.messages`` is a
        # sibling leaf module and this path only runs with a buffer installed.
        from repro.core.messages import MDeliveryAck

        self.send(
            [sender],
            MDeliveryAck(dot, kind_id=kind_id, epoch=self.epoch, frontier=frontier),
            now,
        )

    def believes_alive(self, process: int) -> bool:
        """Failure-detector view of ``process`` (defaults to alive)."""
        return self.alive_view.get(process, True)

    def set_alive_view(self, process: int, alive: bool) -> None:
        """Update the failure-detector view for ``process``."""
        self.alive_view[process] = alive

    # -- execution bookkeeping ---------------------------------------------------

    def record_execution(self, dot: Dot, command: Command, now: float) -> None:
        """Record that this process executed ``command``."""
        self.executed.append((dot, command))
        for listener in self._execution_listeners:
            listener(self.process_id, dot, command, now)

    def executed_dots(self) -> List[Dot]:
        """Identifiers executed so far, in execution order."""
        return [dot for dot, _ in self.executed]

    # -- introspection -----------------------------------------------------------

    def memory_footprint(self) -> Dict[str, int]:
        """Uniform live-state accounting for the memory-bound witnesses.

        ``records`` counts the live per-command bookkeeping (``_info``),
        ``archived`` the executed history a protocol keeps for dependency
        computation (zero here; dependency protocols override),
        ``peak_live_per_key`` the per-key conflict-window high-water mark,
        and ``gc_collected`` the identifiers dropped by the watermark GC.
        ``executed`` (the execution-order witness) is deliberately
        unbounded and reported separately so the bounds can exclude it.
        """
        footprint = {
            "records": len(getattr(self, "_info", ())),
            "executed": len(self.executed),
            "archived": 0,
            "peak_live_per_key": 0,
            "gc_collected": 0,
        }
        gc = getattr(self, "gc", None)
        if gc is not None:
            footprint["gc_collected"] = gc.collected_count
        return footprint

    def partition_peers(self) -> Sequence[int]:
        """Processes replicating the same partition (including self)."""
        return self._partition_peers

    def partition_peer_set(self) -> FrozenSet[int]:
        """Frozen set view of :meth:`partition_peers`, cached per process
        (membership tests on the per-message hot path)."""
        return self._partition_peer_set

    def leader_of_partition(self) -> Optional[int]:
        """Simple Omega-style leader: lowest-id peer believed alive."""
        for peer in self.partition_peers():
            if self.believes_alive(peer):
                return peer
        return None
