"""Commands and the key-based conflict relation.

A command is an operation on the replicated key-value store.  Each key
belongs to exactly one partition; the set of partitions a command accesses is
derived from the keys it touches.  Two commands *conflict* when they access a
common key (the paper's microbenchmark notion of conflict, §6.2).

Tempo itself does not distinguish reads from writes (§3.3), but the baseline
protocols (EPaxos/Atlas/Janus*) do, so commands carry per-key operations with
a read/write kind.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.core.identifiers import Dot


class OpKind(enum.Enum):
    """Kind of a single-key operation."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class KeyOp:
    """A single-key operation inside a command."""

    key: str
    kind: OpKind = OpKind.WRITE
    value: Optional[str] = None

    def is_write(self) -> bool:
        return self.kind is OpKind.WRITE

    def is_read(self) -> bool:
        return self.kind is OpKind.READ


@dataclass(frozen=True)
class Command:
    """A client command, possibly spanning several partitions.

    Attributes:
        dot: unique identifier of the command.
        ops: per-key operations, keyed by key name.
        payload_size: size in bytes of the payload carried by the command
            (used by the resource/throughput model; the microbenchmark uses
            100 B or 4 KB payloads, §6.2).
        client_id: identifier of the submitting client, if any.
    """

    dot: Dot
    ops: Tuple[KeyOp, ...]
    payload_size: int = 100
    client_id: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.ops:
            raise ValueError("a command must access at least one key")
        if self.payload_size < 0:
            raise ValueError("payload_size must be non-negative")
        # Both are immutable functions of ``ops`` and sit on the conflict-
        # computation hot path of every dependency-based protocol.
        object.__setattr__(
            self, "_keys", frozenset(op.key for op in self.ops)
        )
        object.__setattr__(
            self, "_read_only", all(op.is_read() for op in self.ops)
        )

    @classmethod
    def write(
        cls,
        dot: Dot,
        keys: Iterable[str],
        payload_size: int = 100,
        client_id: Optional[int] = None,
    ) -> "Command":
        """Build a write command over ``keys``."""
        ops = tuple(KeyOp(key=k, kind=OpKind.WRITE, value=str(dot)) for k in keys)
        return cls(dot=dot, ops=ops, payload_size=payload_size, client_id=client_id)

    @classmethod
    def read(
        cls,
        dot: Dot,
        keys: Iterable[str],
        payload_size: int = 100,
        client_id: Optional[int] = None,
    ) -> "Command":
        """Build a read command over ``keys``."""
        ops = tuple(KeyOp(key=k, kind=OpKind.READ) for k in keys)
        return cls(dot=dot, ops=ops, payload_size=payload_size, client_id=client_id)

    @property
    def keys(self) -> FrozenSet[str]:
        """Set of keys this command accesses."""
        return self._keys

    def is_read_only(self) -> bool:
        """True when every operation of the command is a read."""
        return self._read_only

    def has_write(self) -> bool:
        return any(op.is_write() for op in self.ops)

    def conflicts_with(self, other: "Command") -> bool:
        """Key-based conflict relation used throughout the evaluation.

        Two commands conflict when they access a common key.  This is the
        conflict notion Tempo and all baselines are driven with in §6; the
        read/write refinement (reads do not conflict with reads) is applied
        only by the dependency-based baselines and is exposed through
        :meth:`interferes_with`.
        """
        return bool(self.keys & other.keys)

    def interferes_with(self, other: "Command") -> bool:
        """Read/write-aware conflict relation (EPaxos-style).

        Two commands interfere when they access a common key and at least
        one of them writes it.
        """
        shared = self.keys & other.keys
        if not shared:
            return False
        for key in shared:
            mine = [op for op in self.ops if op.key == key]
            theirs = [op for op in other.ops if op.key == key]
            if any(op.is_write() for op in mine) or any(op.is_write() for op in theirs):
                return True
        return False

    def partitions(self, partitioner: "Partitioner") -> FrozenSet[int]:
        """Partitions accessed by this command under ``partitioner``."""
        return frozenset(partitioner.partition_of(key) for key in self.keys)


class Partitioner:
    """Maps keys onto partitions.

    The paper assumes the service state is divided into partitions, each
    variable belonging to exactly one partition (§2).  The default mapping
    hashes keys onto ``num_partitions`` buckets; an explicit mapping can be
    supplied for fine-grained control in tests and experiments.
    """

    def __init__(
        self,
        num_partitions: int = 1,
        explicit: Optional[Mapping[str, int]] = None,
    ) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.num_partitions = num_partitions
        self._explicit: Dict[str, int] = dict(explicit or {})
        for key, partition in self._explicit.items():
            if not 0 <= partition < num_partitions:
                raise ValueError(
                    f"explicit mapping for key {key!r} targets partition "
                    f"{partition}, outside [0, {num_partitions})"
                )

    def partition_of(self, key: str) -> int:
        """Partition the given key belongs to."""
        if key in self._explicit:
            return self._explicit[key]
        if self.num_partitions == 1:
            return 0
        # Stable, platform-independent hash so simulations are reproducible.
        digest = 0
        for ch in key:
            digest = (digest * 131 + ord(ch)) % (2**31)
        return digest % self.num_partitions

    def assign(self, key: str, partition: int) -> None:
        """Pin ``key`` to ``partition`` explicitly."""
        if not 0 <= partition < self.num_partitions:
            raise ValueError("partition out of range")
        self._explicit[key] = partition


@dataclass
class KeyGenerator:
    """Generates keys according to the microbenchmark access pattern (§6.2).

    A client chooses the shared key ``conflict_key`` with probability
    ``conflict_rate`` and a unique private key otherwise, so that two
    commands from different clients conflict with probability roughly
    ``conflict_rate**2``... actually with probability ``conflict_rate`` of
    hitting the hot key each; this mirrors the paper's workload definition:
    "a client chooses key 0 with probability rho, and some unique key
    otherwise".
    """

    client_id: int
    conflict_rate: float = 0.02
    conflict_key: str = "key-0"
    _counter: int = field(default=0)

    def __post_init__(self) -> None:
        if not 0.0 <= self.conflict_rate <= 1.0:
            raise ValueError("conflict_rate must be within [0, 1]")

    def next_key(self, uniform: float) -> str:
        """Return the next key given a uniform random draw in [0, 1)."""
        if uniform < self.conflict_rate:
            return self.conflict_key
        self._counter += 1
        return f"key-c{self.client_id}-{self._counter}"
