"""Protocol configuration shared by Tempo and the baseline protocols.

The configuration captures the replication factor ``r`` per partition, the
tolerated number of failures ``f`` (following Flexible Paxos,
``1 <= f <= floor((r - 1) / 2)``), the number of partitions/shards and a few
implementation knobs (batching, promise-broadcast interval, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class ProtocolConfig:
    """Static configuration for a replicated deployment.

    Attributes:
        num_processes: total number of processes per partition (``r``).
        faults: number of tolerated failures per partition (``f``).
        num_partitions: number of partitions of the service state.
        shards_per_partition: unused placeholder kept for API compatibility.
        batching: whether commands are batched before being submitted.
        batch_max_size: maximum number of commands per batch.
        batch_max_delay: maximum delay, in milliseconds, before a batch is
            flushed.
        promise_interval: how often (milliseconds of simulated time) a
            process broadcasts its promises (Algorithm 2, line 44).
        stability_interval: how often a process runs the stability/execution
            check (Algorithm 2, line 49).
        recovery_timeout: how long (milliseconds) a pending command may stay
            un-committed before a process attempts recovery.
        gc_interval: how often (milliseconds) a process announces its
            executed-watermark clock to its partition peers (epoch-2 GC).
            Collection latency only bounds the live-record window, so this
            runs slower than the promise cadence to keep the periodic
            traffic small.
    """

    num_processes: int = 3
    faults: int = 1
    num_partitions: int = 1
    batching: bool = False
    batch_max_size: int = 105
    batch_max_delay: float = 5.0
    promise_interval: float = 5.0
    stability_interval: float = 5.0
    recovery_timeout: float = 500.0
    gc_interval: float = 25.0

    def __post_init__(self) -> None:
        if self.num_processes < 1:
            raise ValueError("num_processes must be >= 1")
        if self.num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        max_f = (self.num_processes - 1) // 2
        if not 1 <= self.faults <= max(max_f, 1):
            raise ValueError(
                f"faults must satisfy 1 <= f <= floor((r-1)/2) = {max_f} "
                f"for r = {self.num_processes}; got {self.faults}"
            )
        if self.faults > max_f and self.num_processes > 1:
            raise ValueError("faults too large for the replication factor")
        if self.batch_max_size < 1:
            raise ValueError("batch_max_size must be >= 1")
        for name in ("batch_max_delay", "promise_interval", "stability_interval",
                     "recovery_timeout", "gc_interval"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    # -- derived quantities -------------------------------------------------

    @property
    def majority(self) -> int:
        """Size of a simple majority: ``floor(r/2) + 1``."""
        return self.num_processes // 2 + 1

    @property
    def fast_quorum_size(self) -> int:
        """Tempo/Atlas fast quorum size: ``floor(r/2) + f``."""
        return self.num_processes // 2 + self.faults

    @property
    def slow_quorum_size(self) -> int:
        """Flexible-Paxos phase-2 quorum size: ``f + 1``."""
        return self.faults + 1

    @property
    def recovery_quorum_size(self) -> int:
        """Flexible-Paxos phase-1 (recovery) quorum size: ``r - f``."""
        return self.num_processes - self.faults

    @property
    def epaxos_fast_quorum_size(self) -> int:
        """EPaxos fast quorum size: ``floor(3r/4)`` (§6)."""
        return (3 * self.num_processes) // 4

    @property
    def caesar_fast_quorum_size(self) -> int:
        """Caesar fast quorum size: ``ceil(3r/4)`` (§6)."""
        return -((-3 * self.num_processes) // 4)

    def total_processes(self) -> int:
        """Total number of processes across all partitions."""
        return self.num_processes * self.num_partitions

    def processes_of_partition(self, partition: int) -> List[int]:
        """Global process identifiers replicating ``partition``.

        Processes are numbered so that partition ``p`` is replicated by
        processes ``p * r .. p * r + r - 1``.
        """
        if not 0 <= partition < self.num_partitions:
            raise ValueError(f"partition {partition} out of range")
        start = partition * self.num_processes
        return list(range(start, start + self.num_processes))

    def partition_of_process(self, process: int) -> int:
        """Partition replicated by global process ``process``."""
        if not 0 <= process < self.total_processes():
            raise ValueError(f"process {process} out of range")
        return process // self.num_processes

    def rank_in_partition(self, process: int) -> int:
        """Index of ``process`` within its partition (0..r-1)."""
        return process % self.num_processes

    def site_of_process(self, process: int) -> int:
        """Site (region) hosting ``process``.

        Processes with the same rank across partitions are co-located at the
        same site, mirroring the paper's deployment where one machine per
        region hosts one replica of every shard.
        """
        return self.rank_in_partition(process)

    def colocated_processes(self, process: int) -> List[int]:
        """All processes co-located at the same site as ``process``."""
        rank = self.rank_in_partition(process)
        return [
            partition * self.num_processes + rank
            for partition in range(self.num_partitions)
        ]


@dataclass
class Deployment:
    """A concrete deployment: configuration plus site names.

    ``site_names[i]`` is the name of the site hosting the processes with
    rank ``i`` in every partition.  The default names match the 5 EC2
    regions used in the paper's evaluation.
    """

    config: ProtocolConfig
    site_names: Sequence[str] = field(
        default_factory=lambda: (
            "ireland",
            "n-california",
            "singapore",
            "canada",
            "sao-paulo",
        )
    )

    def __post_init__(self) -> None:
        if len(self.site_names) < self.config.num_processes:
            raise ValueError(
                "a deployment needs at least one site name per process rank"
            )

    def site_of(self, process: int) -> str:
        """Name of the site hosting the given global process."""
        return self.site_names[self.config.site_of_process(process)]

    def processes_at_site(self, site: str) -> List[int]:
        """Global process identifiers hosted at ``site``."""
        try:
            rank = list(self.site_names).index(site)
        except ValueError as exc:
            raise KeyError(f"unknown site {site!r}") from exc
        return [
            partition * self.config.num_processes + rank
            for partition in range(self.config.num_partitions)
            if rank < self.config.num_processes
        ]

    def sites(self) -> List[str]:
        """Names of the sites actually used by this deployment."""
        return list(self.site_names[: self.config.num_processes])

    def site_latency_table(self) -> Dict[str, Dict[str, float]]:
        """Convenience accessor for the EC2 latency matrix of Appendix A."""
        from repro.simulator.latency import EC2_PING_LATENCIES

        return {
            a: dict(EC2_PING_LATENCIES[a]) for a in self.sites()
        }
