"""Failure detection and leader election (§B.1).

Tempo's liveness mechanisms rely on two oracles:

* **Ω (leader election)** — eventually, all correct processes of a partition
  nominate the same correct process as the leader; only the leader attempts
  recovery of stuck commands, which avoids duelling coordinators.
* **partition-covering detector** (written ``I^i_c`` in the paper) — for a
  command ``c`` and a process ``i``, returns one *responsive* process per
  partition accessed by ``c``, preferring nearby replicas.

Both are trivially implementable under eventual synchrony.  This module
implements them on top of heartbeats: each process periodically reports
"alive"; a peer that has not been heard from within ``timeout_ms`` is
suspected.  The detectors are deliberately independent from the protocol
classes so that the simulator, the asyncio runtime and the tests can drive
them explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.config import ProtocolConfig


@dataclass
class HeartbeatFailureDetector:
    """Suspects processes that missed their heartbeat deadline.

    Attributes:
        timeout_ms: how long (in the caller's time unit, milliseconds by
            convention) a process may stay silent before being suspected.
    """

    timeout_ms: float = 1_000.0
    _last_heard: Dict[int, float] = field(default_factory=dict)
    _forced_down: Dict[int, bool] = field(default_factory=dict)

    def heartbeat(self, process: int, now: float) -> None:
        """Record a heartbeat (or any message) from ``process``."""
        previous = self._last_heard.get(process)
        if previous is None or now > previous:
            self._last_heard[process] = now

    def force_down(self, process: int) -> None:
        """Mark a process as permanently crashed (used by crash injection)."""
        self._forced_down[process] = True

    def force_up(self, process: int) -> None:
        """Clear a forced-down mark (tests only)."""
        self._forced_down.pop(process, None)

    def is_suspected(self, process: int, now: float) -> bool:
        """Whether ``process`` is currently suspected of having failed."""
        if self._forced_down.get(process, False):
            return True
        last = self._last_heard.get(process)
        if last is None:
            # Never heard from: give it one full timeout from time zero.
            return now > self.timeout_ms
        return now - last > self.timeout_ms

    def alive(self, processes: Iterable[int], now: float) -> List[int]:
        """The subset of ``processes`` not currently suspected."""
        return [process for process in processes if not self.is_suspected(process, now)]


@dataclass
class OmegaLeaderElection:
    """Ω leader election for one partition.

    The nominated leader is the lowest-identifier process of the partition
    that is not suspected.  Under eventual synchrony the suspicion lists of
    all correct processes converge, so the nominated leader eventually
    stabilises on the same correct process everywhere — the property
    Algorithm 6 needs.
    """

    config: ProtocolConfig
    partition: int
    detector: HeartbeatFailureDetector = field(default_factory=HeartbeatFailureDetector)

    def members(self) -> List[int]:
        return self.config.processes_of_partition(self.partition)

    def leader(self, now: float) -> Optional[int]:
        """The current nominee, or ``None`` if every member is suspected."""
        for process in self.members():
            if not self.detector.is_suspected(process, now):
                return process
        return None

    def is_leader(self, process: int, now: float) -> bool:
        return self.leader(now) == process


@dataclass
class PartitionCoveringDetector:
    """The ``I^i_c`` oracle: one responsive replica per accessed partition.

    Prefers the replica co-located with the caller (same rank), then falls
    back to the lowest-latency unsuspected replica.
    """

    config: ProtocolConfig
    detector: HeartbeatFailureDetector = field(default_factory=HeartbeatFailureDetector)
    latencies: Optional[Dict[int, Dict[int, float]]] = None

    def _distance(self, a: int, b: int) -> float:
        if self.latencies is not None:
            return float(self.latencies[a][b])
        rank_a = self.config.rank_in_partition(a)
        rank_b = self.config.rank_in_partition(b)
        span = abs(rank_a - rank_b)
        return float(min(span, self.config.num_processes - span))

    def cover(self, caller: int, partitions: Sequence[int], now: float) -> Dict[int, int]:
        """One unsuspected replica per partition, keyed by partition.

        Raises ``RuntimeError`` when some partition has no unsuspected
        replica (more than ``f`` failures — outside the model).
        """
        cover: Dict[int, int] = {}
        for partition in partitions:
            members = self.config.processes_of_partition(partition)
            alive = [
                member for member in members
                if not self.detector.is_suspected(member, now)
            ]
            if not alive:
                raise RuntimeError(
                    f"partition {partition} has no responsive replica"
                )
            colocated = (
                partition * self.config.num_processes
                + self.config.rank_in_partition(caller)
            )
            if colocated in alive:
                cover[partition] = colocated
            else:
                cover[partition] = min(
                    alive, key=lambda member: (self._distance(caller, member), member)
                )
        return cover


def wire_failure_detector(
    processes,
    detector: HeartbeatFailureDetector,
    now: float,
) -> None:
    """Push the detector's current view into the ``alive_view`` of every
    process (the hook :class:`repro.core.base.ProcessBase` exposes)."""
    for process in processes:
        for peer in process.partition_peers():
            process.set_alive_view(peer, not detector.is_suspected(peer, now))
