"""Globally-executed watermark tracking (epoch-2 protocol GC).

fantoch's ``GCTrack``: each process tracks, per same-partition *source*, the
contiguous frontier ``n`` such that every command ``(source, 1..n)`` has
executed locally, announces that clock to its partition peers
(:class:`repro.core.messages.MExecutedClock`, piggybacked on the periodic
tick traffic), and takes per source the **minimum** frontier announced by
all partition peers — itself included — as the *globally-executed
watermark*.  Everything at or below the watermark has executed at every
replica of the partition, so its protocol bookkeeping (``CommandInfo``
records, per-key conflict archives, Caesar's committed-timestamp archive)
can be dropped: no correct protocol step ever needs it again, and late
duplicates referring to collected identifiers are suppressed by the O(1)
:meth:`GcTracker.collected` predicate.

Why the frontier is contiguous: a command is submitted at a process of some
partition it accesses, so every dot minted by a same-partition source is
eventually executed *here*; dots of foreign sources (cross-partition
commands submitted elsewhere) are executed here too but are never collected
— a documented limitation that keeps the frontier per source a single
integer (the single-shard benchmark deployments have no foreign sources at
all).

Why crashed peers stay in the minimum: excluding a crashed peer would let
the survivors drop commit information that the peer — or a recovery acting
on its behalf after a restart — may still need, wedging it forever.  With
the peer in the minimum, GC merely *stalls* while it is down and resumes
once it catches up after a restart (process state survives restarts in this
deployment model), which is safe under every schedule.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.identifiers import Dot


class GcTracker:
    """Per-process executed-frontier bookkeeping and watermark state."""

    __slots__ = (
        "process_id",
        "_sources",
        "_frontier",
        "_pending",
        "_peer_clocks",
        "_watermark",
        "_stale",
        "_dirty",
        "collected_count",
    )

    def __init__(self, process_id: int, partition_members: Iterable[int]) -> None:
        members = tuple(sorted(partition_members))
        self.process_id = process_id
        #: Same-partition sources whose dots this tracker follows.
        self._sources = frozenset(members)
        #: Per-source contiguous executed frontier at *this* replica.
        self._frontier: Dict[int, int] = {}
        #: Out-of-order executed sequences above the frontier (execution is
        #: timestamp-ordered, not per-source-ordered, so gaps are transient).
        self._pending: Dict[int, Set[int]] = {}
        #: Last announced clock per partition peer.  This process's entry
        #: aliases ``_frontier`` so the local view always participates in
        #: the minimum without a copy per execution.
        self._peer_clocks: Dict[int, Dict[int, int]] = {
            member: {} for member in members
        }
        self._peer_clocks[process_id] = self._frontier
        #: Per-source globally-executed watermark (monotone).
        self._watermark: Dict[int, int] = {}
        #: Sources whose minimum may have risen since the last ``advance``.
        #: The minimum over the peer clocks can only change when an entry
        #: sitting *at* the current minimum rises, so ``ingest`` and
        #: ``record_executed`` mark exactly those sources and ``advance``
        #: recomputes nothing else — the common no-news call is O(1).
        self._stale: Set[int] = set()
        #: Whether the local frontier advanced since the last announcement.
        self._dirty = False
        #: Total identifiers handed to the owner's ``_collect`` so far (the
        #: memory-bound witnesses read this).
        self.collected_count = 0

    # -- local executions -----------------------------------------------------

    def record_executed(self, dot: Dot) -> None:
        """Note that ``dot`` executed locally; advances the local frontier."""
        source = dot.source
        if source not in self._sources:
            return
        frontier = self._frontier.get(source, 0)
        sequence = dot.sequence
        if sequence <= frontier:
            return
        if sequence == frontier + 1:
            if frontier == self._watermark.get(source, 0):
                self._stale.add(source)
            frontier = sequence
            pending = self._pending.get(source)
            if pending:
                while frontier + 1 in pending:
                    frontier += 1
                    pending.remove(frontier)
            self._frontier[source] = frontier
            self._dirty = True
            return
        self._pending.setdefault(source, set()).add(sequence)

    # -- watermark exchange ---------------------------------------------------

    def announcement(self) -> Optional[Dict[int, int]]:
        """The clock to announce this tick, or ``None`` when nothing moved."""
        if not self._dirty:
            return None
        self._dirty = False
        return dict(self._frontier)

    def ingest(self, peer: int, clock: Mapping[int, int]) -> None:
        """Merge a peer's announced clock (entries are monotone)."""
        known = self._peer_clocks.get(peer)
        if known is None:
            return
        watermark = self._watermark
        for source, frontier in clock.items():
            old = known.get(source, 0)
            if frontier > old:
                if old == watermark.get(source, 0):
                    self._stale.add(source)
                known[source] = frontier

    def advance(self) -> List[Tuple[int, int, int]]:
        """Recompute the watermark; return newly collectable ranges.

        Each returned triple ``(source, lo, hi)`` covers the dots
        ``(source, lo..hi)`` that just became globally executed; the owner
        is expected to drop their bookkeeping.
        """
        stale = self._stale
        if not stale:
            return []
        clocks = self._peer_clocks.values()
        watermark = self._watermark
        newly: List[Tuple[int, int, int]] = []
        for source in stale:
            level = min(clock.get(source, 0) for clock in clocks)
            old = watermark.get(source, 0)
            if level > old:
                watermark[source] = level
                newly.append((source, old + 1, level))
                self.collected_count += level - old
        stale.clear()
        return newly

    # -- queries ---------------------------------------------------------------

    def collected(self, dot: Dot) -> bool:
        """O(1) suppression predicate: ``dot`` is globally executed and its
        bookkeeping has been (or may have been) dropped."""
        return dot.sequence <= self._watermark.get(dot.source, 0)

    def watermark_of(self, source: int) -> int:
        return self._watermark.get(source, 0)

    def local_frontier(self, source: int) -> int:
        return self._frontier.get(source, 0)

    def footprint(self) -> Dict[str, int]:
        """Size accounting for the memory-bound witnesses."""
        return {
            "pending_out_of_order": sum(
                len(pending) for pending in self._pending.values()
            ),
            "collected": self.collected_count,
        }
