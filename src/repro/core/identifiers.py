"""Command identifiers ("dots").

Tempo identifies every submitted command with a globally unique identifier.
Following the fantoch implementation, an identifier is a *dot*: a pair of the
identifier of the process that created it and a local monotonically
increasing sequence number.  The dot also encodes the *initial coordinator*
of the command at the partition of the creating process, which is what the
recovery protocol's ``initial_p(id)`` function extracts (Algorithm 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List


@dataclass(frozen=True, order=True)
class Dot:
    """A globally unique command identifier.

    Attributes:
        source: identifier of the process that created (submitted) the
            command.  For the partition replicated by that process, this is
            also the command's initial coordinator.
        sequence: per-source monotonically increasing counter, starting at 1.
    """

    source: int
    sequence: int

    def __post_init__(self) -> None:
        if self.sequence < 1:
            raise ValueError(f"dot sequence must be >= 1, got {self.sequence}")
        if self.source < 0:
            raise ValueError(f"dot source must be >= 0, got {self.source}")
        # Collision-free for source < 64; hot enough (set/dict membership in
        # the simulator and the dependency graphs) that computing it once
        # here instead of on every __hash__ call is measurable.
        object.__setattr__(self, "_hash", self.sequence * 64 + self.source)

    def initial_coordinator(self) -> int:
        """Return the process that initially coordinated this command."""
        return self.source

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.source}.{self.sequence}"


def _dot_hash(self: Dot) -> int:
    return self._hash


def _dot_eq(self: Dot, other: object):
    if other is self:
        return True
    if other.__class__ is Dot:
        return self.source == other.source and self.sequence == other.sequence
    return NotImplemented


Dot.__hash__ = _dot_hash  # type: ignore[assignment]
Dot.__eq__ = _dot_eq  # type: ignore[assignment]


#: Global intern table, keyed by source.  Each per-source entry is the list
#: of interned dots for sequences ``1..len(entry)`` (dense by construction:
#: generators mint sequences in order, and out-of-order lookups fall back to
#: a fresh instance without widening the table).
_INTERN: Dict[int, List[Dot]] = {}


def intern_dot(source: int, sequence: int) -> Dot:
    """Return the canonical :class:`Dot` for ``(source, sequence)``.

    Repeatedly materialising the same identifier (``peek`` followed by
    ``next_id``, recovery re-deriving ``initial_p(id)``, tests) otherwise
    allocates distinct-but-equal objects; sharing one instance lets the
    hot set/dict probes short-circuit on identity before falling back to
    field comparison.  Validation lives in ``Dot.__post_init__`` and still
    applies to every interned identifier.
    """
    index = sequence - 1
    if index < 0 or source < 0:
        # Delegate to the constructor, which raises the validation error.
        return Dot(source, sequence)
    table = _INTERN.get(source)
    if table is None:
        table = _INTERN[source] = []
    if index < len(table):
        return table[index]
    if index == len(table):
        dot = Dot(source, sequence)
        table.append(dot)
        return dot
    # Sparse lookup (e.g. peeking far ahead): don't pad the table.
    return Dot(source, sequence)


@dataclass
class DotGenerator:
    """Generates fresh :class:`Dot` identifiers for a single process.

    The generator is deterministic, which keeps simulation runs reproducible.
    Identifiers are interned in a per-source table shared with
    :func:`intern_dot`, so every materialisation of the same ``(source,
    sequence)`` pair yields the same object.
    """

    source: int
    _next: int = field(default=1)

    def next_id(self) -> Dot:
        """Return a fresh identifier; never returns the same dot twice."""
        dot = intern_dot(self.source, self._next)
        self._next += 1
        return dot

    def peek(self) -> Dot:
        """Return the identifier :meth:`next_id` would produce, without
        consuming it."""
        return intern_dot(self.source, self._next)

    def generated(self) -> int:
        """Number of identifiers generated so far."""
        return self._next - 1

    def __iter__(self) -> Iterator[Dot]:
        while True:
            yield self.next_id()
