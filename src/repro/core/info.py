"""Per-command bookkeeping kept by a Tempo process.

One :class:`CommandInfo` record exists per command identifier seen by a
process.  It aggregates the variables the pseudocode indexes by identifier:
``cmd``, ``quorums``, ``phase``, ``ts``, ``bal``, ``abal`` plus the
coordinator-side and execution-side bookkeeping (proposal acks, consensus
acks, per-partition commits and MStable notifications).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.core.commands import Command
from repro.core.phases import InvalidPhaseTransition, Phase
from repro.core.promises import Promise, RangeCollector


@dataclass(slots=True)
class CommandInfo:
    """All per-identifier state at a single process.

    ``slots=True``: one record exists per command per process and every
    per-message handler reads several fields, so slot access (and the
    dict-free instantiation) is measurable on the simulator hot path.
    """

    command: Optional[Command] = None
    quorums: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    phase: Phase = Phase.START
    #: Local timestamp: the process's own proposal before commit, the
    #: partition's committed timestamp after consensus, and the command's
    #: final timestamp once the command reaches the commit phase.
    timestamp: int = 0
    ballot: int = 0
    accepted_ballot: int = 0

    # -- coordinator-side state -------------------------------------------------
    proposals: Dict[int, int] = field(default_factory=dict)
    collected_attached: Set[Promise] = field(default_factory=set)
    #: Detached promises piggybacked on the collected MProposeAcks, kept as
    #: per-process ranges (never materialised into ``Promise`` objects).
    collected_detached: RangeCollector = field(default_factory=RangeCollector)
    consensus_acks: Dict[int, Set[int]] = field(default_factory=dict)
    recovery_acks: Dict[int, Dict[int, Tuple[int, Phase, int]]] = field(
        default_factory=dict
    )
    submitted_at: Optional[float] = None

    # -- commit/execution-side state ---------------------------------------------
    partition_commits: Dict[int, int] = field(default_factory=dict)
    final_timestamp: Optional[int] = None
    committed_at: Optional[float] = None
    stable_sent: bool = False
    stable_from: Set[int] = field(default_factory=set)
    first_seen_at: Optional[float] = None

    def move_to(self, new_phase: Phase) -> None:
        """Transition to ``new_phase``, enforcing Figure 1.

        Inlines :func:`repro.core.phases.transition` (identity fast paths,
        tuple-scan validation): this runs on the per-message hot path.
        """
        phase = self.phase
        if phase is new_phase:
            return
        if new_phase in phase._allowed_next:
            self.phase = new_phase
        else:
            raise InvalidPhaseTransition(phase, new_phase)

    @property
    def is_pending(self) -> bool:
        # Reads the membership flag stamped onto each Phase member — one
        # call frame fewer than ``Phase.is_pending`` on the hot path, with
        # the pending set defined in exactly one place (phases.py).
        return self.phase._is_pending

    @property
    def is_committed(self) -> bool:
        phase = self.phase
        return phase is Phase.COMMIT or phase is Phase.EXECUTE

    def accessed_partitions(self) -> FrozenSet[int]:
        """Partitions accessed by the command, derived from the fast-quorum
        mapping carried in the payload messages."""
        return frozenset(self.quorums.keys())

    def has_all_commits(self) -> bool:
        """Whether a commit was received from every accessed partition."""
        quorums = self.quorums
        if not quorums:
            return False
        partition_commits = self.partition_commits
        for partition in quorums:
            if partition not in partition_commits:
                return False
        return True

    def has_all_stable(self) -> bool:
        """Whether an MStable was received from every accessed partition."""
        quorums = self.quorums
        if not quorums:
            return False
        stable_from = self.stable_from
        for partition in quorums:
            if partition not in stable_from:
                return False
        return True
