"""Tempo protocol messages.

Every message of Algorithms 1-6 is represented by a dataclass.  Messages
know their wire size (:meth:`Message.size_bytes`), which is what the
resource/throughput model charges against the NIC budget, and they have a
real binary codec in :mod:`repro.wire` (:meth:`Message.encoded_size`
actually encodes the frame).

Since the epoch-2 re-baseline, ``size_bytes()`` *is* the measured frame
size: each class computes the exact length of its encoded frame
arithmetically (:mod:`repro.core.wiresize` mirrors the varint layout of
``repro/wire/codecs.py``), so the default byte accounting matches the codec
byte for byte without paying the encoding cost per transmitted message.
The equality ``size_bytes() == encoded_size()`` is enforced for every kind
by the wire drift report (``results/wire_drift.txt``,
``docs/epoch2_rebaseline.md``).

Naming follows the paper: ``MSubmit``, ``MPropose``, ``MProposeAck``,
``MPayload``, ``MCommit``, ``MConsensus``, ``MConsensusAck``, ``MBump``,
``MPromises``, ``MStable``, ``MRec``, ``MRecAck``, ``MRecNAck`` and
``MCommitRequest``; ``MPromiseResync`` and ``MExecutedClock`` are
implementation liveness/GC additions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from repro.core.commands import Command
from repro.core.identifiers import Dot
from repro.core.phases import Phase
from repro.core.promises import Promise, PromiseRangeWire
from repro.core.wiresize import (
    attached_map_size,
    clock_map_size,
    command_size,
    dot_set_size,
    dot_size,
    frame_size,
    promise_set_size,
    quorums_size,
    range_wire_size,
    result_size,
    svarint_size,
    uvarint_size,
)


@dataclass(frozen=True)
class Message:
    """Base class for all protocol messages."""

    dot: Dot

    def size_bytes(self) -> int:
        """Exact serialized frame size, used by the resource model."""
        return frame_size(dot_size(self.dot))

    def wire_size(self) -> int:
        """:meth:`size_bytes` memoised per instance.

        Messages are immutable, so the frame size is computed once and
        reused; the network charges broadcasts through this, so a message
        fanned out to many destinations pays the size arithmetic once.
        """
        cached = self.__dict__.get("_wire_size")
        if cached is None:
            cached = self.size_bytes()
            self.__dict__["_wire_size"] = cached
        return cached

    def encoded_size(self) -> int:
        """Measured wire size: the length of this message's encoded frame.

        Delegates to the :mod:`repro.wire` codec registry (imported lazily;
        the wire package imports this module to register codecs).  Since the
        epoch-2 re-baseline this equals :meth:`size_bytes` for every kind —
        the codec bench asserts it — so callers on hot paths should prefer
        ``size_bytes()``, which never materialises the frame.
        """
        from repro.wire import encoded_size

        return encoded_size(self)

    @property
    def kind(self) -> str:
        """Short message-kind name (the class name)."""
        return type(self).__name__


@dataclass(frozen=True)
class MSubmit(Message):
    """Client-facing submission forwarded to the per-partition coordinators."""

    command: Command
    quorums: Mapping[int, Tuple[int, ...]] = field(default_factory=dict)

    def size_bytes(self) -> int:
        return frame_size(
            dot_size(self.dot)
            + command_size(self.command)
            + quorums_size(self.quorums)
        )


@dataclass(frozen=True)
class MPropose(Message):
    """Coordinator -> fast quorum: carry the payload and a timestamp proposal."""

    command: Command
    quorums: Mapping[int, Tuple[int, ...]]
    timestamp: int

    def size_bytes(self) -> int:
        return frame_size(
            dot_size(self.dot)
            + command_size(self.command)
            + quorums_size(self.quorums)
            + svarint_size(self.timestamp)
        )


@dataclass(frozen=True)
class MProposeAck(Message):
    """Fast-quorum process -> coordinator: timestamp proposal (plus the
    promises issued while computing it, piggybacked as in §3.2).

    ``detached`` is range-encoded (``PromiseRangeWire``): the proposal's
    clock jump issues one contiguous run of detached promises, so the ack
    carries ``{sender: ((lo, hi),)}`` instead of a ``Promise`` per skipped
    timestamp.
    """

    timestamp: int
    attached: FrozenSet[Promise] = frozenset()
    detached: PromiseRangeWire = field(default_factory=dict)

    def size_bytes(self) -> int:
        return frame_size(
            dot_size(self.dot)
            + svarint_size(self.timestamp)
            + promise_set_size(self.attached)
            + range_wire_size(self.detached)
        )


@dataclass(frozen=True)
class MPayload(Message):
    """Coordinator -> processes outside the fast quorum: payload only."""

    command: Command
    quorums: Mapping[int, Tuple[int, ...]]

    def size_bytes(self) -> int:
        return frame_size(
            dot_size(self.dot)
            + command_size(self.command)
            + quorums_size(self.quorums)
        )


@dataclass(frozen=True)
class MCommit(Message):
    """Commit notification with the (per-partition) committed timestamp.

    The piggybacked ``detached`` promises (everything the fast quorum
    skipped while proposing) are range-encoded per issuing process
    (``PromiseRangeWire``); ``attached`` stays materialised (at most one
    promise per quorum member).
    """

    timestamp: int
    partition: int = 0
    attached: FrozenSet[Promise] = frozenset()
    detached: PromiseRangeWire = field(default_factory=dict)

    def size_bytes(self) -> int:
        return frame_size(
            dot_size(self.dot)
            + svarint_size(self.timestamp)
            + uvarint_size(self.partition)
            + promise_set_size(self.attached)
            + range_wire_size(self.detached)
        )


@dataclass(frozen=True)
class MConsensus(Message):
    """Flexible-Paxos phase-2 message on the slow path / during recovery."""

    timestamp: int
    ballot: int

    def size_bytes(self) -> int:
        return frame_size(
            dot_size(self.dot)
            + svarint_size(self.timestamp)
            + svarint_size(self.ballot)
        )


@dataclass(frozen=True)
class MConsensusAck(Message):
    """Acceptance of an :class:`MConsensus` proposal."""

    ballot: int

    def size_bytes(self) -> int:
        return frame_size(dot_size(self.dot) + svarint_size(self.ballot))


@dataclass(frozen=True)
class MBump(Message):
    """Fast-quorum process -> co-located replicas of the other partitions:
    bump their clocks to this proposal (multi-partition optimisation, §4)."""

    timestamp: int

    def size_bytes(self) -> int:
        return frame_size(dot_size(self.dot) + svarint_size(self.timestamp))


@dataclass(frozen=True)
class MPromises(Message):
    """Periodic broadcast of issued promises (Algorithm 2, line 45).

    ``dot`` is unused for this message kind (promises are not tied to one
    command); a sentinel dot identifying the sender is used instead.

    ``committed`` piggybacks commit metadata: the subset of ``attached``
    identifiers the sender already knows to be committed.  A receiver that
    only knows such an identifier through its attached promises can rely on
    the coordinator's commit broadcast (which provably reached the sender
    and is therefore in flight) instead of issuing an ``MCommitRequest``
    round — see ``docs/batching.md`` for the full rule.

    ``detached`` is range-encoded (``PromiseRangeWire``): detached promises
    are issued by clock jumps and therefore arrive as contiguous runs, so
    the broadcast carries ``(lo, hi)`` intervals straight from the sender's
    tracker instead of one ``Promise`` per timestamp.
    """

    detached: PromiseRangeWire = field(default_factory=dict)
    attached: Mapping[Dot, FrozenSet[Promise]] = field(default_factory=dict)
    committed: FrozenSet[Dot] = frozenset()

    def size_bytes(self) -> int:
        return frame_size(
            dot_size(self.dot)
            + range_wire_size(self.detached)
            + attached_map_size(self.attached)
            + dot_set_size(self.committed)
        )


@dataclass(frozen=True)
class MStable(Message):
    """Per-partition stability notification for a multi-partition command."""

    partition: int = 0

    def size_bytes(self) -> int:
        return frame_size(dot_size(self.dot) + uvarint_size(self.partition))


@dataclass(frozen=True)
class MRec(Message):
    """Recovery phase-1 message (Algorithm 4)."""

    ballot: int

    def size_bytes(self) -> int:
        return frame_size(dot_size(self.dot) + svarint_size(self.ballot))


@dataclass(frozen=True)
class MRecAck(Message):
    """Reply to :class:`MRec` carrying the local timestamp, phase and the
    ballot at which a consensus value was last accepted."""

    timestamp: int
    phase: Phase
    accepted_ballot: int
    ballot: int

    def size_bytes(self) -> int:
        return frame_size(
            dot_size(self.dot)
            + svarint_size(self.timestamp)
            + 1  # phase byte
            + svarint_size(self.accepted_ballot)
            + svarint_size(self.ballot)
        )


@dataclass(frozen=True)
class MRecNAck(Message):
    """Negative acknowledgement telling the recovering leader to retry with a
    higher ballot (Algorithm 6, liveness mechanism)."""

    ballot: int

    def size_bytes(self) -> int:
        return frame_size(dot_size(self.dot) + svarint_size(self.ballot))


@dataclass(frozen=True)
class MCommitRequest(Message):
    """Ask a process that already committed ``dot`` to re-send its payload
    and commit information (Algorithm 6, liveness mechanism)."""

    def size_bytes(self) -> int:
        return frame_size(dot_size(self.dot))


@dataclass(frozen=True)
class MPromiseResync(Message):
    """Ask a peer to re-broadcast its full issued-promise set.

    Promises are normally sent exactly once (footnote 2 of the paper), so a
    lost ``MPromises`` leaves a permanent hole in the receiver's view of the
    sender's promise frontier, freezing its stable timestamp.  A process
    whose stability frontier stalls while committed commands wait to execute
    broadcasts this request; each peer answers point-to-point with an
    un-drained :class:`MPromises` snapshot (the tracker retains the full set
    for exactly this re-broadcast, see
    :class:`repro.core.promises.PromiseTracker`) plus the payload/commit
    information of its committed commands whose attached promises sit above
    ``frontier`` — the requester's current contiguous frontier *for the
    receiver* — so one round fills every promise hole, including the holes
    punched by attached promises of commits the requester never received.
    ``dot`` is a sentinel identifying the requester, as in
    :class:`MPromises`.
    """

    frontier: int = 0

    def size_bytes(self) -> int:
        return frame_size(dot_size(self.dot) + uvarint_size(self.frontier))


@dataclass(frozen=True)
class MExecutedClock(Message):
    """Periodic globally-executed watermark exchange (epoch-2 GC).

    ``clock`` maps each same-partition source to the sender's contiguous
    executed frontier for that source: every command ``(source, 1..n)`` has
    executed at the sender.  Each process takes, per source, the minimum
    frontier announced by *all* partition peers (itself included) as the
    globally-executed watermark and drops the protocol bookkeeping of every
    command at or below it — fantoch's ``GCTrack`` exchange.  Crashed peers
    are deliberately *not* excluded from the minimum: a lagging replica may
    still need commit information, so GC simply stalls while a peer is down
    (safe, and bounded again once it restarts — restarts preserve process
    state in this deployment model).  ``dot`` is a sender-identifying
    sentinel, as in :class:`MPromises`.
    """

    clock: Mapping[int, int] = field(default_factory=dict)

    def size_bytes(self) -> int:
        return frame_size(dot_size(self.dot) + clock_map_size(self.clock))


@dataclass(frozen=True)
class MDeliveryAck(Message):
    """Acknowledge delivery of one tracked critical message.

    The reliable-delivery layer (:mod:`repro.reliability`) retransmits
    commit broadcasts and cross-partition stability notifications until
    the receiver acknowledges them.  ``dot`` is the acknowledged message's
    dot and ``kind_id`` its wire kind byte, together naming the exact
    retransmit-buffer entry to retire; ``epoch`` is the acker's recovery
    epoch (acks from before a restart are stale); ``frontier`` piggybacks
    the acker's contiguous promise frontier *for the message's sender*,
    feeding the acknowledgement-driven floor in
    ``PromiseTracker.compact()`` (0 for protocols without promises).
    """

    kind_id: int = 0
    epoch: int = 0
    frontier: int = 0

    def size_bytes(self) -> int:
        return frame_size(
            dot_size(self.dot)
            + uvarint_size(self.kind_id)
            + uvarint_size(self.epoch)
            + uvarint_size(self.frontier)
        )


@dataclass(frozen=True)
class MStableRequest(Message):
    """Ask a remote partition to re-send ``MStable`` for a blocked command.

    Cross-partition stability notifications are send-once; if every copy
    toward a partition is lost, that partition's replicas hold the
    committed command forever (the documented ``mstable-loss/x-shard``
    gap).  The cross-shard stability watchdog detects a committed command
    blocked on a remote partition's stability for at least two recovery
    windows and sends this request to that partition's processes;
    a receiver that already stabilised (or even collected) ``dot``
    answers with a fresh :class:`MStable`.  ``partition`` identifies the
    requester's partition, mirroring :class:`MStable`.
    """

    partition: int = 0

    def size_bytes(self) -> int:
        return frame_size(dot_size(self.dot) + uvarint_size(self.partition))


@dataclass(frozen=True)
class ClientSubmit(Message):
    """Client -> closest process: submit a command."""

    command: Command

    def size_bytes(self) -> int:
        return frame_size(dot_size(self.dot) + command_size(self.command))


@dataclass(frozen=True)
class ClientReply(Message):
    """Process -> client: the command was executed; return values omitted."""

    result: Optional[Dict[str, Optional[str]]] = None

    def size_bytes(self) -> int:
        return frame_size(dot_size(self.dot) + result_size(self.result))


#: All Tempo protocol message classes, useful for dispatch tables and tests.
TEMPO_MESSAGE_TYPES = (
    MSubmit,
    MPropose,
    MProposeAck,
    MPayload,
    MCommit,
    MConsensus,
    MConsensusAck,
    MBump,
    MPromises,
    MStable,
    MRec,
    MRecAck,
    MRecNAck,
    MCommitRequest,
    MPromiseResync,
    MExecutedClock,
    MDeliveryAck,
    MStableRequest,
)
