"""Tempo protocol messages.

Every message of Algorithms 1-6 is represented by a dataclass.  Messages
know how to estimate their wire size (:meth:`Message.size_bytes`), which is
what the resource/throughput model charges against the NIC budget, and they
have a real binary codec in :mod:`repro.wire` (:meth:`Message.encoded_size`
is the *measured* frame size).  The estimate stays the default accounting —
the golden ``results/*.txt`` files were frozen against it — and the
estimate-vs-measured gap per kind is tracked by the wire drift report
(``results/wire_drift.txt``, ``docs/wire_format.md``).

Naming follows the paper: ``MSubmit``, ``MPropose``, ``MProposeAck``,
``MPayload``, ``MCommit``, ``MConsensus``, ``MConsensusAck``, ``MBump``,
``MPromises``, ``MStable``, ``MRec``, ``MRecAck``, ``MRecNAck`` and
``MCommitRequest``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from repro.core.commands import Command
from repro.core.identifiers import Dot
from repro.core.phases import Phase
from repro.core.promises import Promise, PromiseRangeWire, range_wire_count

#: Rough per-message framing overhead in bytes (headers, ids, enums).
_HEADER_BYTES = 24
#: Bytes charged per promise entry carried by a message.
_PROMISE_BYTES = 12
#: Bytes charged per quorum member entry.
_QUORUM_ENTRY_BYTES = 4


@dataclass(frozen=True)
class Message:
    """Base class for all protocol messages."""

    dot: Dot

    def size_bytes(self) -> int:
        """Approximate serialized size, used by the resource model."""
        return _HEADER_BYTES

    def encoded_size(self) -> int:
        """Measured wire size: the length of this message's encoded frame.

        Delegates to the :mod:`repro.wire` codec registry (imported lazily;
        the wire package imports this module to register codecs).
        """
        from repro.wire import encoded_size

        return encoded_size(self)

    @property
    def kind(self) -> str:
        """Short message-kind name (the class name)."""
        return type(self).__name__


def _quorums_size(quorums: Mapping[int, Tuple[int, ...]]) -> int:
    size = 0
    for members in quorums.values():
        size += _QUORUM_ENTRY_BYTES * (1 + len(members))
    return size


def _promises_size(promises: FrozenSet[Promise]) -> int:
    return _PROMISE_BYTES * len(promises)


@dataclass(frozen=True)
class MSubmit(Message):
    """Client-facing submission forwarded to the per-partition coordinators."""

    command: Command
    quorums: Mapping[int, Tuple[int, ...]] = field(default_factory=dict)

    def size_bytes(self) -> int:
        return _HEADER_BYTES + self.command.payload_size + _quorums_size(self.quorums)


@dataclass(frozen=True)
class MPropose(Message):
    """Coordinator -> fast quorum: carry the payload and a timestamp proposal."""

    command: Command
    quorums: Mapping[int, Tuple[int, ...]]
    timestamp: int

    def size_bytes(self) -> int:
        return _HEADER_BYTES + self.command.payload_size + _quorums_size(self.quorums) + 8


@dataclass(frozen=True)
class MProposeAck(Message):
    """Fast-quorum process -> coordinator: timestamp proposal (plus the
    promises issued while computing it, piggybacked as in §3.2).

    ``detached`` is range-encoded (``PromiseRangeWire``): the proposal's
    clock jump issues one contiguous run of detached promises, so the ack
    carries ``{sender: ((lo, hi),)}`` instead of a ``Promise`` per skipped
    timestamp.  ``size_bytes`` still charges per logical promise.
    """

    timestamp: int
    attached: FrozenSet[Promise] = frozenset()
    detached: PromiseRangeWire = field(default_factory=dict)

    def size_bytes(self) -> int:
        return (
            _HEADER_BYTES
            + 8
            + _promises_size(self.attached)
            + _PROMISE_BYTES * range_wire_count(self.detached)
        )


@dataclass(frozen=True)
class MPayload(Message):
    """Coordinator -> processes outside the fast quorum: payload only."""

    command: Command
    quorums: Mapping[int, Tuple[int, ...]]

    def size_bytes(self) -> int:
        return _HEADER_BYTES + self.command.payload_size + _quorums_size(self.quorums)


@dataclass(frozen=True)
class MCommit(Message):
    """Commit notification with the (per-partition) committed timestamp.

    The piggybacked ``detached`` promises (everything the fast quorum
    skipped while proposing) are range-encoded per issuing process
    (``PromiseRangeWire``); ``attached`` stays materialised (at most one
    promise per quorum member).
    """

    timestamp: int
    partition: int = 0
    attached: FrozenSet[Promise] = frozenset()
    detached: PromiseRangeWire = field(default_factory=dict)

    def size_bytes(self) -> int:
        return (
            _HEADER_BYTES
            + 12
            + _promises_size(self.attached)
            + _PROMISE_BYTES * range_wire_count(self.detached)
        )


@dataclass(frozen=True)
class MConsensus(Message):
    """Flexible-Paxos phase-2 message on the slow path / during recovery."""

    #: Wire size is instance-independent; batched stats multiply this.
    FIXED_SIZE_BYTES = _HEADER_BYTES + 16

    timestamp: int
    ballot: int

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 16


@dataclass(frozen=True)
class MConsensusAck(Message):
    """Acceptance of an :class:`MConsensus` proposal."""

    #: Wire size is instance-independent; batched stats multiply this.
    FIXED_SIZE_BYTES = _HEADER_BYTES + 8

    ballot: int

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 8


@dataclass(frozen=True)
class MBump(Message):
    """Fast-quorum process -> co-located replicas of the other partitions:
    bump their clocks to this proposal (multi-partition optimisation, §4)."""

    #: Wire size is instance-independent; batched stats multiply this.
    FIXED_SIZE_BYTES = _HEADER_BYTES + 8

    timestamp: int

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 8


@dataclass(frozen=True)
class MPromises(Message):
    """Periodic broadcast of issued promises (Algorithm 2, line 45).

    ``dot`` is unused for this message kind (promises are not tied to one
    command); a sentinel dot identifying the sender is used instead.

    ``committed`` piggybacks commit metadata: the subset of ``attached``
    identifiers the sender already knows to be committed.  A receiver that
    only knows such an identifier through its attached promises can rely on
    the coordinator's commit broadcast (which provably reached the sender
    and is therefore in flight) instead of issuing an ``MCommitRequest``
    round — see ``docs/batching.md`` for the full rule.

    ``detached`` is range-encoded (``PromiseRangeWire``): detached promises
    are issued by clock jumps and therefore arrive as contiguous runs, so
    the broadcast carries ``(lo, hi)`` intervals straight from the sender's
    tracker instead of one ``Promise`` per timestamp.  ``size_bytes`` still
    charges per logical promise, keeping the byte accounting identical to
    the historical set encoding.
    """

    detached: PromiseRangeWire = field(default_factory=dict)
    attached: Mapping[Dot, FrozenSet[Promise]] = field(default_factory=dict)
    committed: FrozenSet[Dot] = frozenset()

    def size_bytes(self) -> int:
        attached_count = sum(len(promises) for promises in self.attached.values())
        return (
            _HEADER_BYTES
            + _PROMISE_BYTES * (range_wire_count(self.detached) + attached_count)
            + _PROMISE_BYTES * len(self.committed)
        )


@dataclass(frozen=True)
class MStable(Message):
    """Per-partition stability notification for a multi-partition command."""

    #: Wire size is instance-independent; batched stats multiply this.
    FIXED_SIZE_BYTES = _HEADER_BYTES + 4

    partition: int = 0

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 4


@dataclass(frozen=True)
class MRec(Message):
    """Recovery phase-1 message (Algorithm 4)."""

    #: Wire size is instance-independent; batched stats multiply this.
    FIXED_SIZE_BYTES = _HEADER_BYTES + 8

    ballot: int

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 8


@dataclass(frozen=True)
class MRecAck(Message):
    """Reply to :class:`MRec` carrying the local timestamp, phase and the
    ballot at which a consensus value was last accepted."""

    #: Wire size is instance-independent; batched stats multiply this.
    FIXED_SIZE_BYTES = _HEADER_BYTES + 24

    timestamp: int
    phase: Phase
    accepted_ballot: int
    ballot: int

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 24


@dataclass(frozen=True)
class MRecNAck(Message):
    """Negative acknowledgement telling the recovering leader to retry with a
    higher ballot (Algorithm 6, liveness mechanism)."""

    #: Wire size is instance-independent; batched stats multiply this.
    FIXED_SIZE_BYTES = _HEADER_BYTES + 8

    ballot: int

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 8


@dataclass(frozen=True)
class MCommitRequest(Message):
    """Ask a process that already committed ``dot`` to re-send its payload
    and commit information (Algorithm 6, liveness mechanism)."""

    #: Wire size is instance-independent; batched stats multiply this.
    FIXED_SIZE_BYTES = _HEADER_BYTES

    def size_bytes(self) -> int:
        return _HEADER_BYTES


@dataclass(frozen=True)
class MPromiseResync(Message):
    """Ask a peer to re-broadcast its full issued-promise set.

    Promises are normally sent exactly once (footnote 2 of the paper), so a
    lost ``MPromises`` leaves a permanent hole in the receiver's view of the
    sender's promise frontier, freezing its stable timestamp.  A process
    whose stability frontier stalls while committed commands wait to execute
    broadcasts this request; each peer answers point-to-point with an
    un-drained :class:`MPromises` snapshot (the tracker retains the full set
    for exactly this re-broadcast, see
    :class:`repro.core.promises.PromiseTracker`) plus the payload/commit
    information of its committed commands whose attached promises sit above
    ``frontier`` — the requester's current contiguous frontier *for the
    receiver* — so one round fills every promise hole, including the holes
    punched by attached promises of commits the requester never received.
    ``dot`` is a sentinel identifying the requester, as in
    :class:`MPromises`.
    """

    frontier: int = 0

    #: Wire size is instance-independent; batched stats multiply this.
    FIXED_SIZE_BYTES = _HEADER_BYTES + 8

    def size_bytes(self) -> int:
        return self.FIXED_SIZE_BYTES


@dataclass(frozen=True)
class ClientSubmit(Message):
    """Client -> closest process: submit a command."""

    command: Command

    def size_bytes(self) -> int:
        return _HEADER_BYTES + self.command.payload_size


@dataclass(frozen=True)
class ClientReply(Message):
    """Process -> client: the command was executed; return values omitted."""

    #: Wire size is instance-independent; batched stats multiply this.
    FIXED_SIZE_BYTES = _HEADER_BYTES + 16

    result: Optional[Dict[str, Optional[str]]] = None

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 16


#: All Tempo protocol message classes, useful for dispatch tables and tests.
TEMPO_MESSAGE_TYPES = (
    MSubmit,
    MPropose,
    MProposeAck,
    MPayload,
    MCommit,
    MConsensus,
    MConsensusAck,
    MBump,
    MPromises,
    MStable,
    MRec,
    MRecAck,
    MRecNAck,
    MCommitRequest,
    MPromiseResync,
)
