"""Command phases (Figure 1 of the paper).

A command travels through the following phases at each process::

    start -> payload -> recover-r --.
    start -> propose -> recover-p --+--> commit -> execute

``pending`` is defined as the union of payload, propose, recover-r and
recover-p (the phases in which the command is known but not yet committed).
"""

from __future__ import annotations

import enum


class Phase(enum.Enum):
    """Phase of a command at a process."""

    START = "start"
    PAYLOAD = "payload"
    PROPOSE = "propose"
    RECOVER_R = "recover-r"
    RECOVER_P = "recover-p"
    COMMIT = "commit"
    EXECUTE = "execute"

    def is_pending(self) -> bool:
        """True for phases in the paper's ``pending`` set."""
        # ``_is_pending`` is stamped onto each member below — the single
        # source of truth the hot paths (``CommandInfo.is_pending``,
        # ``TempoProcess._maybe_commit``) read without a call frame.
        return self._is_pending

    def is_terminal(self) -> bool:
        """True once the command has been executed."""
        return self is Phase.EXECUTE

    def can_transition_to(self, new: "Phase") -> bool:
        """Whether the phase transition ``self -> new`` is allowed.

        The allowed transitions follow Figure 1 of the paper.  The probe
        scans a small per-member tuple: ``in`` on a tuple of enum members
        compares by identity, avoiding the enum hashing a set probe pays
        (this runs once per phase move on the per-message hot path).
        """
        return new in self._allowed_next


_TRANSITIONS = {
    Phase.START: (Phase.PAYLOAD, Phase.PROPOSE, Phase.COMMIT),
    Phase.PAYLOAD: (Phase.RECOVER_R, Phase.COMMIT),
    Phase.PROPOSE: (Phase.RECOVER_P, Phase.COMMIT),
    Phase.RECOVER_R: (Phase.RECOVER_P, Phase.COMMIT),
    Phase.RECOVER_P: (Phase.RECOVER_R, Phase.COMMIT),
    Phase.COMMIT: (Phase.EXECUTE,),
    Phase.EXECUTE: (),
}

_PENDING = (Phase.PAYLOAD, Phase.PROPOSE, Phase.RECOVER_R, Phase.RECOVER_P)

for _phase, _allowed in _TRANSITIONS.items():
    _phase._allowed_next = _allowed
    _phase._is_pending = _phase in _PENDING


class InvalidPhaseTransition(RuntimeError):
    """Raised when a command attempts an illegal phase transition."""

    def __init__(self, current: Phase, new: Phase) -> None:
        super().__init__(f"invalid phase transition {current.value} -> {new.value}")
        self.current = current
        self.new = new


def transition(current: Phase, new: Phase) -> Phase:
    """Validate and perform a phase transition.

    Raises :class:`InvalidPhaseTransition` if the transition is not allowed
    by Figure 1.  ``start -> commit`` is allowed because a process may learn
    about a command directly from an ``MCommit`` message.
    """
    if current is new:
        return current
    if new not in current._allowed_next:
        raise InvalidPhaseTransition(current, new)
    return new
