"""Command phases (Figure 1 of the paper).

A command travels through the following phases at each process::

    start -> payload -> recover-r --.
    start -> propose -> recover-p --+--> commit -> execute

``pending`` is defined as the union of payload, propose, recover-r and
recover-p (the phases in which the command is known but not yet committed).
"""

from __future__ import annotations

import enum


class Phase(enum.Enum):
    """Phase of a command at a process."""

    START = "start"
    PAYLOAD = "payload"
    PROPOSE = "propose"
    RECOVER_R = "recover-r"
    RECOVER_P = "recover-p"
    COMMIT = "commit"
    EXECUTE = "execute"

    def is_pending(self) -> bool:
        """True for phases in the paper's ``pending`` set."""
        # Identity chain rather than a frozenset probe: this sits on the
        # per-message hot path and enum hashing is comparatively slow.
        return (
            self is Phase.PAYLOAD
            or self is Phase.PROPOSE
            or self is Phase.RECOVER_R
            or self is Phase.RECOVER_P
        )

    def is_terminal(self) -> bool:
        """True once the command has been executed."""
        return self is Phase.EXECUTE

    def can_transition_to(self, new: "Phase") -> bool:
        """Whether the phase transition ``self -> new`` is allowed.

        The allowed transitions follow Figure 1 of the paper.
        """
        return new in _TRANSITIONS[self]


_TRANSITIONS = {
    Phase.START: frozenset({Phase.PAYLOAD, Phase.PROPOSE, Phase.COMMIT}),
    Phase.PAYLOAD: frozenset({Phase.RECOVER_R, Phase.COMMIT}),
    Phase.PROPOSE: frozenset({Phase.RECOVER_P, Phase.COMMIT}),
    Phase.RECOVER_R: frozenset({Phase.RECOVER_P, Phase.COMMIT}),
    Phase.RECOVER_P: frozenset({Phase.RECOVER_R, Phase.COMMIT}),
    Phase.COMMIT: frozenset({Phase.EXECUTE}),
    Phase.EXECUTE: frozenset(),
}


class InvalidPhaseTransition(RuntimeError):
    """Raised when a command attempts an illegal phase transition."""

    def __init__(self, current: Phase, new: Phase) -> None:
        super().__init__(f"invalid phase transition {current.value} -> {new.value}")
        self.current = current
        self.new = new


def transition(current: Phase, new: Phase) -> Phase:
    """Validate and perform a phase transition.

    Raises :class:`InvalidPhaseTransition` if the transition is not allowed
    by Figure 1.  ``start -> commit`` is allowed because a process may learn
    about a command directly from an ``MCommit`` message.
    """
    if current is new:
        return current
    if not current.can_transition_to(new):
        raise InvalidPhaseTransition(current, new)
    return new
