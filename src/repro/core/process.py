"""The Tempo process: commit, execution and multi-partition protocols.

This module implements Algorithms 1-3 and 5-6 of the paper as a single
message-driven state machine, :class:`TempoProcess`.  Recovery (Algorithm 4)
lives in :mod:`repro.core.recovery` and is mixed in.

A :class:`TempoProcess` replicates exactly one partition.  Multi-partition
commands are handled by running the commit protocol independently at every
accessed partition and combining the per-partition timestamps with ``max``
(Algorithm 3); execution additionally waits for an ``MStable`` notification
from every accessed partition, which enforces the real-time order of PSMR.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.base import Envelope, ProcessBase
from repro.core.clock import LogicalClock
from repro.core.commands import Command, Partitioner
from repro.core.config import ProtocolConfig
from repro.core.gc import GcTracker
from repro.core.identifiers import Dot, DotGenerator, intern_dot
from repro.core.info import CommandInfo
from repro.core.messages import (
    ClientReply,
    MBump,
    MCommit,
    MCommitRequest,
    MConsensus,
    MConsensusAck,
    MDeliveryAck,
    MExecutedClock,
    MPayload,
    MPromiseResync,
    MPromises,
    MPropose,
    MProposeAck,
    MRec,
    MRecAck,
    MRecNAck,
    MStable,
    MStableRequest,
    MSubmit,
)
from repro.core.phases import Phase
from repro.core.promises import Promise, PromiseSet, PromiseTracker, RangeCollector
from repro.core.quorums import QuorumSystem
from repro.core.recovery import RecoveryMixin
from repro.reliability import TRACKED_KIND_IDS

ApplyFn = Callable[[Command], Optional[Dict[str, Optional[str]]]]

#: Phases in which a command's commit outcome may only be learnable through
#: MCommitRequest (committed peers ignore MRec, §B.1).
_RECOVERY_PHASES = frozenset({Phase.RECOVER_R, Phase.RECOVER_P})

#: Wire kind bytes stamped into delivery acks for the tracked kinds.
_ACK_KIND_MCOMMIT = TRACKED_KIND_IDS["MCommit"]
_ACK_KIND_MSTABLE = TRACKED_KIND_IDS["MStable"]


class TempoProcess(RecoveryMixin, ProcessBase):
    """A Tempo replica of one partition.

    Args:
        process_id: global process identifier.
        config: deployment configuration (``r``, ``f``, partitions, ...).
        partitioner: key-to-partition mapping used to derive the partitions a
            command accesses.
        quorum_system: optional pre-built quorum system (e.g. latency-aware);
            a rank-distance one is built by default.
        apply_fn: optional callable invoked with each command when it is
            executed (e.g. to apply it to a key-value store).
    """

    def __init__(
        self,
        process_id: int,
        config: ProtocolConfig,
        partitioner: Optional[Partitioner] = None,
        quorum_system: Optional[QuorumSystem] = None,
        apply_fn: Optional[ApplyFn] = None,
        ack_broadcast: bool = True,
        commit_elision: bool = True,
        watermark_gc: bool = True,
    ) -> None:
        super().__init__(process_id, config)
        self.partitioner = partitioner or Partitioner(config.num_partitions)
        self.quorum_system = quorum_system or QuorumSystem(config)
        self.apply_fn = apply_fn
        #: Implementation-level optimisation (documented in DESIGN.md):
        #: fast-quorum members send their MProposeAck to the whole fast
        #: quorum, so every member can detect the fast-path commit locally
        #: instead of waiting for the coordinator's MCommit.  This removes a
        #: wide-area round trip from the stability-detection path and is what
        #: lets execution happen essentially at commit time, as in the
        #: paper's evaluation.  Safety is unaffected: every member computes
        #: the same timestamp from the same set of proposals and only
        #: self-commits when the fast-path condition holds.
        self.ack_broadcast = ack_broadcast
        #: Epoch-2 optimisation: on the fast path, skip the MCommit to the
        #: own-partition fast-quorum members — with ``ack_broadcast`` they
        #: hold every proposal of the quorum and self-commit the identical
        #: timestamp (:meth:`_local_fast_commit`), so the message carries no
        #: information they lack.  The slow path never elides: consensus
        #: outcomes are only known to the leader.  Lost-ack liveness is
        #: covered by the recovery sweep's forced MCommitRequest.
        self.commit_elision = commit_elision and ack_broadcast
        #: Epoch-2 GC: globally-executed watermark exchange with the
        #: partition peers (see :mod:`repro.core.gc`); ``None`` disables
        #: collection entirely (epoch-1 behaviour).
        self.gc: Optional[GcTracker] = (
            GcTracker(process_id, self.partition_peers()) if watermark_gc else None
        )
        self.clock = LogicalClock()
        self.tracker = PromiseTracker(process_id)
        self.promises = PromiseSet()
        self.dot_generator = DotGenerator(process_id)
        self._info: Dict[Dot, CommandInfo] = {}
        #: Attached promises received for identifiers not yet committed here,
        #: buffered as ``(process, timestamp)`` pairs (Algorithm 2, line 47);
        #: plain tuples keep the per-commit buffering allocation-light.
        self._buffered_attached: Dict[Dot, List[Tuple[int, int]]] = {}
        #: Committed-but-not-executed identifiers and their final timestamps.
        self._committed: Dict[Dot, int] = {}
        #: Identifiers for which an MCommitRequest was already sent, mapped
        #: to whether that request went to every useful peer (``True``) or
        #: only to the slimmed PAYLOAD-phase target set (``False``).  A
        #: slimmed request may be upgraded to a broadcast once — e.g. when
        #: recovery later needs an answer and the original target crashed.
        self._commit_requested: Dict[Dot, bool] = {}
        #: Last time the recovery sweep force-re-sent an MCommitRequest per
        #: dot, debouncing it to one broadcast per recovery-timeout window.
        self._commit_rerequested: Dict[Dot, float] = {}
        #: Last time this process broadcast an MRec per dot (see
        #: RecoveryMixin.recover): a recovery ballot of our own that stalls
        #: for a full recovery timeout is re-attempted with a higher ballot
        #: — the MRec broadcast may have been lost (fair-lossy links) —
        #: debounced to one attempt per window so a long partition cannot
        #: storm the link with recovery traffic.
        self._recovery_attempted: Dict[Dot, float] = {}
        #: Identifiers a promise broadcast reported as committed elsewhere
        #: (commit-metadata piggyback): the commit broadcast is known to be
        #: in flight, so no MCommitRequest is needed unless the hint goes
        #: stale (see _hint_tick).
        self._commit_hinted: Set[Dot] = set()
        #: Min-heap of ``(hinted_at, dot)`` backing the hint watchdog.
        self._hint_watch: List[Tuple[float, Dot]] = []
        #: Min-heap of ``(timestamp, dot)`` for committed identifiers whose
        #: MStable has not been sent yet (drained by stability_check).
        self._commit_heap: List[Tuple[int, Dot]] = []
        #: Min-heap of ``(timestamp, dot)`` for identifiers whose MStable was
        #: sent and that await execution in ``(timestamp, dot)`` order.
        self._stable_heap: List[Tuple[int, Dot]] = []
        #: Min-heap of ``(first_seen_at, dot)`` gating the recovery scan: the
        #: full ``_info`` sweep only runs once the oldest watched pending
        #: command exceeds the recovery timeout.
        self._pending_watch: List[Tuple[float, Dot]] = []
        self._last_promise_broadcast = float("-inf")
        self._last_gc_announce = float("-inf")
        self._last_stability_check = float("-inf")
        #: Stability-stall watchdog state (see _stability_resync_tick):
        #: the highest stable timestamp ever observed, when the frontier
        #: last moved while committed work was blocked on it, and the last
        #: time an MPromiseResync round was requested (debounce).
        self._stable_frontier_seen = -1
        self._stable_stalled_since: Optional[float] = None
        self._last_promise_resync = float("-inf")
        #: Cross-shard MStable watchdog state (see _stable_watchdog_tick):
        #: the execution-head dot currently blocked on a remote partition's
        #: stability notification, when it first blocked, and the last time
        #: an MStableRequest round was sent (debounce).
        self._xshard_blocked_dot: Optional[Dot] = None
        self._xshard_blocked_since = 0.0
        self._last_stable_request = float("-inf")
        #: Highest contiguous promise frontier each partition peer has
        #: acknowledged absorbing from this process (via MDeliveryAck
        #: piggyback).  ``None`` until reliable delivery is enabled; when
        #: set, :meth:`compact` floors promise GC at the minimum so a
        #: late-joining or lossy peer can never lose promises it still
        #: needs (the documented late-joiner gap).
        self._acked_frontiers: Optional[Dict[int, int]] = None
        #: Set when a commit or promise absorption during a delivery scope
        #: made new timestamps potentially stable; the scope's
        #: :meth:`_flush_step` then runs one stability check for the whole
        #: delivered batch instead of one per inner message.
        self._stability_dirty = False
        #: Like ``_stability_dirty`` but for MStable notifications, which
        #: only require an execution attempt, not a full stability pass.
        self._execute_dirty = False
        #: ``_commit_info_targets`` result per fast-quorum tuple (the quorum
        #: determines the answer; commands share a handful of quorums).
        self._commit_info_target_cache: Dict[
            Tuple[int, ...], Optional[List[int]]
        ] = {}
        #: Sorted ack-broadcast target list per fast-quorum tuple.
        self._ack_target_cache: Dict[Tuple[int, ...], List[int]] = {}
        #: Fast-path MCommit target list with the self-committing quorum
        #: members elided, cached per (partition set, fast quorum).
        self._elided_target_cache: Dict[
            Tuple[FrozenSet[int], Tuple[int, ...]], List[int]
        ] = {}
        #: Broadcast target lists (``I_c``) cached per accessed-partition
        #: set; the lists are only ever iterated.
        self._partition_targets: Dict[FrozenSet[int], List[int]] = {}
        #: MStable recipient lists (self + other-partition processes of
        #: ``I_c``) cached per accessed-partition set.
        self._stable_targets: Dict[FrozenSet[int], List[int]] = {}
        #: Message-type -> bound handler dispatch table (exact class match;
        #: protocol messages are never subclassed).  Replaces the isinstance
        #: chain on the per-message hot path.
        self._dispatch: Dict[type, Callable[[int, object, float], None]] = {
            MSubmit: self._on_submit,
            MPropose: self._on_propose,
            MProposeAck: self._on_propose_ack,
            MPayload: self._on_payload,
            MCommit: self._on_commit,
            MConsensus: self._on_consensus,
            MConsensusAck: self._on_consensus_ack,
            MBump: self._on_bump,
            MPromises: self._on_promises,
            MStable: self._on_stable,
            MRec: self._on_rec,
            MRecAck: self._on_rec_ack,
            MRecNAck: self._on_rec_nack,
            MCommitRequest: self._on_commit_request,
            MPromiseResync: self._on_promise_resync,
            MExecutedClock: self._on_executed_clock,
            MDeliveryAck: self._on_delivery_ack,
            MStableRequest: self._on_stable_request,
        }

    # ------------------------------------------------------------------ helpers

    def info(self, dot: Dot) -> CommandInfo:
        """Bookkeeping record for ``dot``, creating it on first use."""
        record = self._info.get(dot)
        if record is None:
            record = CommandInfo()
            self._info[dot] = record
        return record

    def phase_of(self, dot: Dot) -> Phase:
        """Current phase of ``dot`` at this process."""
        record = self._info.get(dot)
        if record is not None:
            return record.phase
        if self.gc is not None and self.gc.collected(dot):
            # Collected records were globally executed before being dropped.
            return Phase.EXECUTE
        return Phase.START

    def committed_timestamp(self, dot: Dot) -> Optional[int]:
        """Final timestamp of ``dot`` if committed or executed here."""
        record = self._info.get(dot)
        if record is None or not record.is_committed:
            return None
        return record.final_timestamp

    def new_command(
        self,
        keys: Sequence[str],
        payload_size: int = 100,
        client_id: Optional[int] = None,
    ) -> Command:
        """Create a fresh write command with an identifier minted here."""
        return Command.write(
            self.dot_generator.next_id(),
            keys,
            payload_size=payload_size,
            client_id=client_id,
        )

    def _command_partitions(self, command: Command) -> List[int]:
        return sorted(command.partitions(self.partitioner))

    def _processes_of(self, partitions: Sequence[int]) -> List[int]:
        """All processes replicating any of ``partitions`` (the set ``I_c``)."""
        members: List[int] = []
        for partition in partitions:
            members.extend(self.config.processes_of_partition(partition))
        return members

    def _colocated_coordinators(self, partitions: Sequence[int]) -> Dict[int, int]:
        """One nearby process per accessed partition (the set ``I^i_c``)."""
        return self.quorum_system.coordinators_for(self.process_id, partitions)

    def _targets_for(self, partitions: Iterable[int]) -> List[int]:
        """Sorted deduplicated members of ``I_c``, cached per partition set."""
        key = frozenset(partitions)
        targets = self._partition_targets.get(key)
        if targets is None:
            targets = sorted(set(self._processes_of(sorted(key))))
            self._partition_targets[key] = targets
        return targets

    def _stable_targets_for(self, partitions: Iterable[int]) -> List[int]:
        """Recipients of an MStable notification: this process plus the
        processes of the *other* accessed partitions.

        Timestamp stability is a deterministic local function of the promise
        set, and promises circulate within a partition, so every
        same-partition peer derives this partition's stability on its own; a
        command only executes once the peer's *local* check pops it, at
        which point its self-addressed MStable has already filled this
        partition's ``stable_from`` slot.  Explicit notifications to
        same-partition peers are therefore pure redundancy and are elided.
        Cross-partition processes cannot derive it (promise traffic never
        leaves a partition), so they keep receiving the notification
        required by the PSMR execution rule (Algorithm 3/6).
        """
        key = frozenset(partitions)
        targets = self._stable_targets.get(key)
        if targets is None:
            own = self.partition
            members = {self.process_id}
            for partition in key:
                if partition != own:
                    members.update(self.config.processes_of_partition(partition))
            targets = sorted(members)
            self._stable_targets[key] = targets
        return targets

    def _absorb_own_issue(
        self, dot: Dot, attached_timestamp: int, detached: Sequence[int]
    ) -> None:
        """Account locally for promises this process just issued.

        Detached promises become known immediately; the attached promise is
        buffered until the command commits (Algorithm 2, line 47 applies to
        local promises too).
        """
        self._absorb_detached(detached)
        buffered = self._buffered_attached.get(dot)
        if buffered is None:
            buffered = self._buffered_attached[dot] = []
        buffered.append((self.process_id, attached_timestamp))

    def _absorb_detached(self, detached: Sequence[int]) -> None:
        # Clock jumps issue contiguous timestamps: absorb them as one range.
        if detached:
            self.promises.add_range(self.process_id, detached[0], detached[-1])

    def _track_detached(self, detached: Sequence[int]) -> None:
        """Record a clock jump's detached promises in the tracker as a range."""
        if detached:
            self.tracker.add_detached_range(detached[0], detached[-1])

    def _watch_pending(self, dot: Dot, first_seen: float) -> None:
        """Register ``dot`` with the recovery watchdog (see _recovery_tick)."""
        heappush(self._pending_watch, (first_seen, dot))

    # ------------------------------------------------------------------ submit

    def submit(self, command: Command, now: float = 0.0) -> None:
        """Submit ``command`` on behalf of a client (Algorithm 1, line 1).

        The submitting process must replicate one of the accessed
        partitions.
        """
        partitions = self._command_partitions(command)
        if self.partition not in partitions:
            raise ValueError(
                f"process {self.process_id} (partition {self.partition}) cannot "
                f"submit a command accessing partitions {partitions}"
            )
        coordinators = self._colocated_coordinators(partitions)
        quorums = {
            partition: tuple(
                self.quorum_system.fast_quorum(coordinator, partition)
            )
            for partition, coordinator in coordinators.items()
        }
        record = self.info(command.dot)
        record.submitted_at = now
        message = MSubmit(command.dot, command, quorums)
        self.send(sorted(set(coordinators.values())), message, now)

    # ------------------------------------------------------------------ dispatch

    def on_message(self, sender: int, message: object, now: float) -> None:
        handler = self._dispatch.get(message.__class__)
        if handler is None:
            raise TypeError(f"unexpected message {message!r}")
        handler(sender, message, now)

    # ------------------------------------------------------------------ commit protocol

    def _on_submit(self, sender: int, message: MSubmit, now: float) -> None:
        """Start coordinating the command at this partition (line 5)."""
        dot = message.dot
        command = message.command
        quorums = dict(message.quorums)
        fast_quorum = quorums[self.partition]
        timestamp = self.clock.value + 1
        record = self.info(dot)
        if record.first_seen_at is None:
            record.first_seen_at = now
            self._watch_pending(dot, now)
        propose = MPropose(dot, command, quorums, timestamp)
        self.send(fast_quorum, propose, now)
        others = [
            process
            for process in self.partition_peers()
            if process not in fast_quorum
        ]
        if others:
            self.send(others, MPayload(dot, command, quorums), now)

    def _on_payload(self, sender: int, message: MPayload, now: float) -> None:
        """Store the payload of a command outside the fast quorum (line 9)."""
        if self.gc is not None and self.gc.collected(message.dot):
            return  # late duplicate of a globally-executed command
        record = self.info(message.dot)
        if record.phase is not Phase.START:
            return
        record.command = message.command
        record.quorums = dict(message.quorums)
        # Falsy (not ``is None``) on purpose: a first_seen_at of exactly 0.0
        # is treated as unset, preserving the original `or now` semantics on
        # which the recovery-timeout bookkeeping was calibrated.
        if not record.first_seen_at:
            record.first_seen_at = now
            self._watch_pending(message.dot, now)
        record.move_to(Phase.PAYLOAD)
        self._maybe_commit(message.dot, now)

    def _on_propose(self, sender: int, message: MPropose, now: float) -> None:
        """Compute a timestamp proposal as a fast-quorum member (line 12)."""
        dot = message.dot
        if self.gc is not None and self.gc.collected(dot):
            return  # late duplicate of a globally-executed command
        record = self.info(dot)
        if record.phase is not Phase.START:
            return
        record.command = message.command
        record.quorums = dict(message.quorums)
        if not record.first_seen_at:
            record.first_seen_at = now
            self._watch_pending(dot, now)
        record.move_to(Phase.PROPOSE)
        result = self.clock.proposal(message.timestamp)
        record.timestamp = result.timestamp
        self._track_detached(result.detached)
        self.tracker.add_attached(dot, result.timestamp)
        self._absorb_own_issue(dot, result.timestamp, result.detached)
        detached = result.detached
        ack = MProposeAck(
            dot,
            timestamp=result.timestamp,
            attached=frozenset({Promise(self.process_id, result.timestamp)}),
            detached=(
                {self.process_id: ((detached[0], detached[-1]),)} if detached else {}
            ),
        )
        if self.ack_broadcast:
            # Send the ack to the whole fast quorum so every member can
            # detect the fast-path commit without the coordinator round.
            quorum = record.quorums.get(self.partition, (sender,))
            targets = self._ack_target_cache.get(quorum)
            if targets is None:
                targets = sorted(set(quorum))
                self._ack_target_cache[quorum] = targets
            self.send(targets, ack, now)
        else:
            self.send([sender], ack, now)
        # Multi-partition optimisation (§4, "faster stability"): tell the
        # co-located replicas of the other accessed partitions about this
        # proposal so they can bump their clocks early.
        partitions = [
            partition
            for partition in record.quorums
            if partition != self.partition
        ]
        if partitions:
            coordinators = self._colocated_coordinators(partitions)
            targets = sorted(set(coordinators.values()) - {self.process_id})
            if targets:
                self.send(targets, MBump(dot, result.timestamp), now)

    def _on_bump(self, sender: int, message: MBump, now: float) -> None:
        """Bump the clock on behalf of another partition's proposal (§4)."""
        record = self._info.get(message.dot)
        if record is None or record.phase is not Phase.PROPOSE:
            return
        result = self.clock.bump(message.timestamp)
        self._track_detached(result.detached)
        self._absorb_detached(result.detached)

    def _on_propose_ack(self, sender: int, message: MProposeAck, now: float) -> None:
        """Collect fast-quorum proposals (line 17).

        The coordinator always handles this message.  With ``ack_broadcast``
        enabled every fast-quorum member also receives the acks and, when
        the fast-path condition holds, commits its partition's timestamp
        locally without waiting for the coordinator's MCommit.

        An ack may overtake the MPropose itself on a reordering link; it is
        then buffered in a fresh START-phase record instead of dropped —
        the member's own self-addressed ack (sent when MPropose finally
        arrives) completes the proposal set and re-runs the fast-path
        check.  With commit elision the coordinator's MCommit no longer
        backstops a dropped ack, so the buffering is what keeps the
        fast path loss-free under reordering.
        """
        dot = message.dot
        if self.gc is not None and self.gc.collected(dot):
            return  # late duplicate of a globally-executed command
        record = self._info.get(dot)
        if record is None:
            record = self.info(dot)
        if record.phase not in (Phase.START, Phase.PROPOSE):
            return
        record.proposals[sender] = message.timestamp
        record.collected_attached.update(message.attached)
        if message.detached:
            record.collected_detached.update(message.detached)
        if record.phase is not Phase.PROPOSE:
            return  # buffered: our own proposal has not been computed yet
        fast_quorum = record.quorums.get(self.partition, ())
        proposal_map = record.proposals
        for process in fast_quorum:
            if process not in proposal_map:
                return
        proposals = [proposal_map[process] for process in fast_quorum]
        timestamp = max(proposals)
        count = sum(1 for proposal in proposals if proposal == timestamp)
        is_coordinator = bool(fast_quorum) and fast_quorum[0] == self.process_id
        if count >= self.config.faults:
            if is_coordinator:
                self._broadcast_commit(dot, record, timestamp, now, elide=True)
            else:
                self._local_fast_commit(dot, record, timestamp, now)
        elif is_coordinator:
            ballot = self._own_ballot()
            record.ballot = ballot
            self.send(
                self.partition_peers(), MConsensus(dot, timestamp, ballot), now
            )

    def _local_fast_commit(
        self, dot: Dot, record: CommandInfo, timestamp: int, now: float
    ) -> None:
        """A non-coordinator fast-quorum member observed the fast-path commit
        for its own partition (``ack_broadcast`` optimisation)."""
        peers = self.partition_peer_set()
        if record.collected_detached:
            self.promises.absorb_ranges(record.collected_detached.to_wire(), only=peers)
        buffered = None
        for promise in record.collected_attached:
            if promise.process in peers:
                if buffered is None:
                    buffered = self._buffered_attached.get(dot)
                    if buffered is None:
                        buffered = self._buffered_attached[dot] = []
                buffered.append((promise.process, promise.timestamp))
        record.partition_commits[self.partition] = max(
            record.partition_commits.get(self.partition, 0), timestamp
        )
        self._maybe_commit(dot, now)

    def _broadcast_commit(
        self,
        dot: Dot,
        record: CommandInfo,
        timestamp: int,
        now: float,
        elide: bool = False,
    ) -> None:
        """Send MCommit for this partition to every process in ``I_c``.

        With ``elide`` (fast path only) and ``commit_elision`` enabled, the
        own-partition fast-quorum members are dropped from the target list:
        each of them holds the full proposal set through the ack broadcast
        and self-commits the same timestamp — including the piggybacked
        attached/detached promises, which it absorbed from the acks
        themselves.  The coordinator itself, non-quorum peers (who need the
        promises) and every cross-partition process still receive the
        message.
        """
        commit = MCommit(
            dot,
            timestamp=timestamp,
            partition=self.partition,
            attached=frozenset(record.collected_attached),
            detached=record.collected_detached.to_wire(),
        )
        targets = self._targets_for(record.quorums)
        if elide and self.commit_elision:
            quorum = record.quorums.get(self.partition, ())
            key = (frozenset(record.quorums), tuple(quorum))
            elided = self._elided_target_cache.get(key)
            if elided is None:
                skip = set(quorum) - {self.process_id}
                elided = [t for t in targets if t not in skip]
                self._elided_target_cache[key] = elided
            targets = elided
        self.send(targets, commit, now)
        if self.reliability is not None:
            # Lossy-run safety net: keep the commit buffered until every
            # non-self target acknowledges delivery (see repro.reliability).
            self.reliability.track(targets, commit, now)

    def _on_consensus(self, sender: int, message: MConsensus, now: float) -> None:
        """Accept a Flexible-Paxos phase-2 proposal (line 26)."""
        dot = message.dot
        if self.gc is not None and self.gc.collected(dot):
            return  # outcome decided and globally executed long ago
        record = self.info(dot)
        if record.ballot > message.ballot:
            self.send([sender], MRecNAck(dot, record.ballot), now)
            return
        record.timestamp = message.timestamp
        record.ballot = message.ballot
        record.accepted_ballot = message.ballot
        result = self.clock.bump(message.timestamp)
        self._track_detached(result.detached)
        self._absorb_detached(result.detached)
        self.send([sender], MConsensusAck(dot, message.ballot), now)

    def _on_consensus_ack(self, sender: int, message: MConsensusAck, now: float) -> None:
        """Commit once a slow quorum accepted the proposal (line 31)."""
        dot = message.dot
        record = self._info.get(dot)
        if record is None:
            return
        acks = record.consensus_acks.setdefault(message.ballot, set())
        acks.add(sender)
        if record.ballot != message.ballot:
            return
        if len(acks) < self.config.slow_quorum_size:
            return
        if record.is_committed:
            return
        self._broadcast_commit(dot, record, record.timestamp, now)

    def _on_commit(self, sender: int, message: MCommit, now: float) -> None:
        """Record a per-partition commit; commit once all partitions did."""
        dot = message.dot
        if self.reliability is not None and sender != self.process_id:
            # Ack before any dedup/GC early return: the sender retransmits
            # until acked, so a duplicate usually means our first ack was
            # lost.  Partition peers additionally learn our contiguous
            # promise frontier for them (feeds their compact() floor).
            frontier = (
                self.promises.highest_contiguous_promise(sender)
                if sender in self.partition_peer_set()
                else 0
            )
            self._ack_delivery(sender, _ACK_KIND_MCOMMIT, dot, now, frontier)
        if self.gc is not None and self.gc.collected(dot):
            # Late duplicate (commit-request or resync reply) for a command
            # already globally executed: the piggybacked promises are still
            # absorbed — absorption is idempotent, and the identifier being
            # executed makes its attached promises directly usable — but no
            # record is recreated.
            peers = self.partition_peer_set()
            if message.detached:
                self.promises.absorb_ranges(message.detached, only=peers)
            for promise in message.attached:
                if promise.process in peers:
                    self.promises.add_timestamp(promise.process, promise.timestamp)
            return
        record = self.info(dot)
        record.partition_commits[message.partition] = max(
            record.partition_commits.get(message.partition, 0), message.timestamp
        )
        # Piggybacked promises: only promises issued by processes of this
        # partition matter for the local stability detection.
        peers = self.partition_peer_set()
        if message.detached:
            self.promises.absorb_ranges(message.detached, only=peers)
        buffered = None
        for promise in message.attached:
            if promise.process in peers:
                if buffered is None:
                    buffered = self._buffered_attached.get(dot)
                    if buffered is None:
                        buffered = self._buffered_attached[dot] = []
                buffered.append((promise.process, promise.timestamp))
        self._maybe_commit(dot, now)

    def _maybe_commit(self, dot: Dot, now: float) -> None:
        """Move ``dot`` to the commit phase once every accessed partition has
        reported a committed timestamp (Algorithm 3, line 56)."""
        record = self._info.get(dot)
        if record is None:
            return
        # "committed or not pending" collapses to "not pending" (commit and
        # execute are not pending phases); the membership flag stamped onto
        # the Phase members skips two property frames per call.
        if not record.phase._is_pending:
            return
        quorums = record.quorums
        if not quorums:
            return
        partition_commits = record.partition_commits
        final = 0
        for partition in quorums:
            committed = partition_commits.get(partition)
            if committed is None:
                return
            if committed > final:
                final = committed
        record.final_timestamp = final
        record.timestamp = final
        record.committed_at = now
        record.move_to(Phase.COMMIT)
        self._committed[dot] = final
        self._commit_rerequested.pop(dot, None)
        self._recovery_attempted.pop(dot, None)
        heappush(self._commit_heap, (final, dot))
        result = self.clock.bump(final)
        self._track_detached(result.detached)
        self._absorb_detached(result.detached)
        # Attached promises for this identifier become usable now (line 47).
        buffered = self._buffered_attached.pop(dot, None)
        if buffered:
            add_timestamp = self.promises.add_timestamp
            for process, timestamp in buffered:
                add_timestamp(process, timestamp)
        # Committing may immediately make new timestamps stable (the
        # piggybacked promises typically suffice); react within this event-
        # handling step instead of waiting for the next periodic check.
        # Inside a delivery scope the check is enqueued and runs once per
        # delivered batch (``_flush_step``) rather than once per commit.
        self._schedule_stability_check(now)

    # ------------------------------------------------------------------ execution protocol

    def _schedule_stability_check(self, now: float) -> None:
        """Run a stability check once per delivery scope.

        Inside a delivery scope (``_step_depth > 0``) the check is deferred
        to the scope's :meth:`_flush_step`, coalescing the per-message
        reactive work of an ``MBatch`` into one check at the same simulated
        instant; outside a scope (tests driving ``on_message`` directly) it
        runs immediately, preserving the historical behaviour.
        """
        if self._step_depth:
            self._stability_dirty = True
        else:
            self.stability_check(now)

    def _flush_step(self, now: float) -> None:
        """Batch-delivery scope hook: one stability pass per delivered batch."""
        if self._stability_dirty:
            self._stability_dirty = False
            self._execute_dirty = False
            self.stability_check(now)
        elif self._execute_dirty:
            self._execute_dirty = False
            self._try_execute(now)

    def _on_promises(self, sender: int, message: MPromises, now: float) -> None:
        """Absorb promises broadcast by a peer (Algorithm 2, line 46)."""
        if message.detached:
            self.promises.absorb_ranges(message.detached)
        committed_hints = message.committed
        gc = self.gc
        for dot, attached in message.attached.items():
            record = self._info.get(dot)
            if record is not None and record.is_committed:
                self.promises.add_all(attached)
                continue
            if gc is not None and gc.collected(dot):
                # Globally executed and collected: its attached promises are
                # usable immediately, and no commit info needs requesting.
                self.promises.add_all(attached)
                continue
            buffered = self._buffered_attached.get(dot)
            if buffered is None:
                buffered = self._buffered_attached[dot] = []
            buffered.extend(
                (promise.process, promise.timestamp) for promise in attached
            )
            # The commit-metadata piggyback only replaces the request round
            # for identifiers this process knows nothing about: for those,
            # a peer reporting the commit proves the commit broadcast is in
            # flight.  Known identifiers go through _request_commit_info,
            # which applies the phase-aware debounce (and always requests
            # for recovery-phase records: committed peers ignore MRec,
            # §B.1, so MCommitRequest is how recovery learns the outcome).
            hintable = record is None or record.command is None
            if hintable and dot in committed_hints:
                self._note_commit_hint(dot, now)
            else:
                self._request_commit_info(dot, now)
        self._schedule_stability_check(now)

    def _note_commit_hint(self, dot: Dot, now: float) -> None:
        """Record that a peer reported ``dot`` as committed.

        On the common path the peer committed through the coordinator's
        commit broadcast (or by assembling the fast-quorum acks), so the
        commit information addressed to this process is already in flight
        and requesting it again would duplicate the traffic.  That premise
        can fail — the peer may have fast-path self-committed under a
        crashed coordinator, or recovered the commit via a point-to-point
        reply while our copy of the broadcast was lost — so the hint
        watchdog (:meth:`_hint_tick`) falls back to a forced
        MCommitRequest once the commit has not arrived within the recovery
        timeout, trading worst-case commit-info latency (one timeout
        instead of one RTT, only on those failure paths) for the removed
        steady-state traffic.
        """
        if dot in self._commit_hinted or dot in self._commit_requested:
            return
        self._commit_hinted.add(dot)
        heappush(self._hint_watch, (now, dot))

    def _request_commit_info(self, dot: Dot, now: float, force: bool = False) -> None:
        """Ask peers for the payload/commit of an identifier known only
        through attached promises (Algorithm 6, line 96).

        Debounced by phase for identifiers whose command is already known
        and still driven by the normal protocol (``ballot == 0``):

        * ``PROPOSE``: this process is a fast-quorum member and will detect
          the commit from the ack broadcast itself — never request.
        * ``PAYLOAD``: the coordinator's MCommit broadcast is on its way,
          but a fast-quorum member may self-commit (ack broadcast) well
          before that broadcast arrives here, and its reply is what lets
          this replica bump its clock early.  Request only from the peers
          whose reply can actually beat the broadcast — see
          :meth:`_commit_info_targets`.

        Recovery-phase identifiers always request from every peer:
        committed peers ignore MRec (§B.1), so MCommitRequest is the only
        way a stalled recovery learns the outcome.  A dot whose only
        previous request used the slimmed PAYLOAD target set is allowed
        one upgrade to such a broadcast, so a crashed slim target can
        never make the outcome unlearnable.  ``force`` (used by the hint
        watchdog once a commit hint goes stale) bypasses the debounce.
        """
        record = self._info.get(dot)
        if record is not None and record.is_committed:
            return
        targets: Optional[List[int]] = None
        if (
            record is not None
            and not force
            and record.command is not None
            and record.phase not in _RECOVERY_PHASES
        ):
            if record.phase is Phase.PROPOSE:
                # Fast-quorum member: the commit arrives via the ack
                # broadcast, or — when a consensus ballot was accepted —
                # via the consensus leader's imminent commit broadcast.
                return
            if record.phase is Phase.PAYLOAD:
                if record.ballot != 0:
                    # Slow path underway: this process accepted (or saw)
                    # a consensus proposal, so the leader's commit
                    # broadcast is imminent.
                    return
                targets = self._commit_info_targets(record)
        broadcast = targets is None
        already_broadcast = self._commit_requested.get(dot)
        if already_broadcast is not None and (already_broadcast or not broadcast):
            return
        if broadcast:
            targets = [
                process for process in self.partition_peers()
                if process != self.process_id
            ]
            in_recovery = record is not None and (
                record.ballot != 0 or record.phase in _RECOVERY_PHASES
            )
            if not force and not in_recovery:
                # Same argument as _commit_info_targets: by the time the
                # initial coordinator could answer, its own commit
                # broadcast (which includes this process) is already out.
                slimmed = [process for process in targets if process != dot.source]
                if slimmed:
                    targets = slimmed
        self._commit_requested[dot] = broadcast
        if targets:
            self.send(targets, MCommitRequest(dot), now)

    def _commit_info_targets(self, record: CommandInfo) -> Optional[List[int]]:
        """Peers whose commit-info reply can beat the in-flight broadcast.

        For a PAYLOAD-phase identifier the commit will arrive through the
        coordinator's MCommit broadcast; a request is only useful where the
        reply can arrive earlier.  The coordinator's own reply never can
        (it replies only after committing, at which point its broadcast is
        already out), and a farther process relaying the commit cannot beat
        a closer one holding it, so the useful targets reduce to the
        nearest non-coordinator fast-quorum member (the canonical early
        self-committer) plus any non-quorum peer strictly closer than it
        (whose own early-learned commit can be relayed faster).  Returns
        ``None`` when the quorum is unknown, falling back to all peers.
        """
        quorum = record.quorums.get(self.partition, ())
        if not quorum:
            return None
        cache = self._commit_info_target_cache
        if quorum in cache:
            return cache[quorum]
        coordinator = quorum[0]
        distance = self.quorum_system._distance
        members = [
            member for member in quorum
            if member != coordinator and member != self.process_id
        ]
        if not members:
            cache[quorum] = None
            return None
        nearest = min(
            members, key=lambda member: (distance(self.process_id, member), member)
        )
        nearest_distance = distance(self.process_id, nearest)
        quorum_set = set(quorum)
        targets = [nearest]
        for peer in self.partition_peers():
            if peer in quorum_set or peer == self.process_id:
                continue
            if distance(self.process_id, peer) < nearest_distance:
                targets.append(peer)
        targets = sorted(targets)
        cache[quorum] = targets
        return targets

    def _hint_tick(self, now: float) -> None:
        """Escalate stale commit hints to real MCommitRequests.

        Hints whose identifier has committed are discarded lazily; the
        oldest still-uncommitted hint only escalates after the recovery
        timeout, so failure-free runs never send a request for a hinted
        identifier.
        """
        watch = self._hint_watch
        while watch:
            hinted_at, dot = watch[0]
            record = self._info.get(dot)
            if (record is not None and record.is_committed) or (
                self.gc is not None and self.gc.collected(dot)
            ):
                heappop(watch)
                self._commit_hinted.discard(dot)
                continue
            if now - hinted_at < self.config.recovery_timeout:
                return
            heappop(watch)
            self._commit_hinted.discard(dot)
            self._request_commit_info(dot, now, force=True)

    def _on_commit_request(self, sender: int, message: MCommitRequest, now: float) -> None:
        """Re-send payload and commit information (Algorithm 6, line 86)."""
        dot = message.dot
        record = self._info.get(dot)
        if record is None or not record.is_committed or record.command is None:
            return
        self.send([sender], MPayload(dot, record.command, dict(record.quorums)), now)
        final = record.final_timestamp or record.timestamp
        for partition in sorted(record.quorums):
            self.send([sender], MCommit(dot, timestamp=final, partition=partition), now)

    def _on_promise_resync(
        self, sender: int, message: MPromiseResync, now: float
    ) -> None:
        """Re-send the full issued-promise set to a stalled peer (§B.2).

        Promises normally travel exactly once (footnote 2), so the reply
        uses the tracker's *un-drained* snapshot — everything this process
        ever issued and has not garbage-collected — letting the requester
        fill the holes a lossy period punched into its view of our
        frontier.  Holes left by *attached* promises need more than the
        promise itself: the requester only counts an attached promise once
        it has the command committed, so for every committed command whose
        attached timestamp lies above the requester's reported frontier the
        payload and commit information are re-sent too, collapsing what
        would otherwise be one hint-watchdog round trip per hole into this
        single reply.  Point-to-point: only the stalled requester pays the
        re-broadcast bytes.
        """
        detached_ranges, attached = self.tracker.snapshot_ranges(drain=False)
        if not detached_ranges and not attached:
            return
        committed = set()
        for dot, promises in attached.items():
            record = self._info.get(dot)
            if record is None or not record.is_committed:
                continue
            committed.add(dot)
            if record.command is None:
                continue  # compacted: every correct process executed it
            if all(p.timestamp <= message.frontier for p in promises):
                continue  # below the requester's frontier: already counted
            self.send(
                [sender], MPayload(dot, record.command, dict(record.quorums)), now
            )
            final = record.final_timestamp or record.timestamp
            for partition in sorted(record.quorums):
                self.send(
                    [sender], MCommit(dot, timestamp=final, partition=partition), now
                )
        reply = MPromises(
            Dot(self.process_id, self.dot_generator.peek().sequence),
            detached={self.process_id: detached_ranges} if detached_ranges else {},
            attached=attached,
            committed=frozenset(committed),
        )
        self.send([sender], reply, now)

    def _stability_resync_tick(self, now: float) -> None:
        """Detect a frozen stability frontier and request a promise resync.

        A healed (or flaky-link) replica can hold committed commands whose
        timestamps never become stable: the promises its peers issued
        during the outage were broadcast exactly once, into the void, and
        the send-once optimisation means nothing re-sends them.  When
        committed work has been blocked on a non-advancing frontier for two
        full recovery-timeout windows (long enough that crash recovery's
        ordinary stability hiccups never trigger it), broadcast an
        :class:`MPromiseResync`; peers answer with full snapshots and the
        frontier jumps forward.  Debounced to one round per window.
        """
        heap = self._commit_heap
        if not heap:
            self._stable_stalled_since = None
            return
        stable = self.promises.stable_timestamp(self.partition_peers())
        if heap[0][0] <= stable:
            # The head is already stable; stability_check will drain it.
            self._stable_stalled_since = None
            return
        if stable > self._stable_frontier_seen:
            self._stable_frontier_seen = stable
            self._stable_stalled_since = now
            return
        if self._stable_stalled_since is None:
            self._stable_stalled_since = now
            return
        if now - self._stable_stalled_since < 2 * self.config.recovery_timeout:
            return
        if now - self._last_promise_resync < self.config.recovery_timeout:
            return
        self._last_promise_resync = now
        sentinel = Dot(self.process_id, self.dot_generator.peek().sequence)
        for target in self.partition_peers():
            if target == self.process_id:
                continue
            # Per-target frontier: each peer re-sends exactly the commits
            # whose attached promises this process is missing from *it*.
            self.send(
                [target],
                MPromiseResync(
                    sentinel,
                    frontier=self.promises.highest_contiguous_promise(target),
                ),
                now,
            )

    def _stable_watchdog_tick(self, now: float) -> None:
        """Re-solicit a remote shard's stability notification when stuck.

        The PSMR execution rule (Algorithm 3/6) blocks a multi-partition
        command until *every* accessed partition's MStable arrives, and that
        notification is sent exactly once — a drop leaves the command
        committed-but-unexecuted forever, and it wedges everything ordered
        after it.  Watch the execution head: if the same identifier has been
        blocked on a remote partition for two full recovery-timeout windows
        (ordinary cross-shard skew resolves within one WAN delay, far below
        that), ask the processes of each missing partition to re-send with
        an :class:`MStableRequest`.  Debounced to one round per window;
        always on — a healthy run never crosses the threshold, so the
        watchdog costs one heap peek per tick and sends nothing.
        """
        heap = self._stable_heap
        if not heap:
            self._xshard_blocked_dot = None
            return
        dot = heap[0][1]
        record = self._info[dot]
        if record.has_all_stable():
            # Not blocked — merely waiting for the next execution attempt.
            self._xshard_blocked_dot = None
            return
        if dot != self._xshard_blocked_dot:
            self._xshard_blocked_dot = dot
            self._xshard_blocked_since = now
            return
        if now - self._xshard_blocked_since < 2 * self.config.recovery_timeout:
            return
        if now - self._last_stable_request < self.config.recovery_timeout:
            return
        self._last_stable_request = now
        request = MStableRequest(dot, partition=self.partition)
        for partition in sorted(set(record.quorums) - record.stable_from):
            if partition == self.partition:
                continue  # own-partition stability is derived locally
            self.send(
                sorted(self.config.processes_of_partition(partition)),
                request,
                now,
            )

    def _on_stable_request(
        self, sender: int, message: MStableRequest, now: float
    ) -> None:
        """Re-send this partition's MStable for a command a remote shard is
        blocked on (the original notification was lost)."""
        dot = message.dot
        record = self._info.get(dot)
        if record is not None:
            stable_here = record.stable_sent
        else:
            # A collected record was globally executed, which requires this
            # partition to have declared it stable first.
            stable_here = self.gc is not None and self.gc.collected(dot)
        if not stable_here:
            return  # not stable yet: the ordinary send will happen later
        reply = MStable(dot, partition=self.partition)
        self.send([sender], reply, now)
        if self.reliability is not None:
            self.reliability.track([sender], reply, now)

    def _on_stable(self, sender: int, message: MStable, now: float) -> None:
        """Record a per-partition stability notification (Algorithm 6).

        Inside a delivery scope the execution attempt is deferred to the
        scope's flush, so a batch of MStables costs one heap scan instead of
        one per notification; execution still happens within this very
        event-handling step, in ``(timestamp, id)`` order, at the same
        simulated instant.
        """
        if self.reliability is not None and sender != self.process_id:
            # Cross-partition sender retransmits until acked; ack duplicates
            # too (our earlier ack may itself have been dropped).
            self._ack_delivery(sender, _ACK_KIND_MSTABLE, message.dot, now)
        if self.gc is not None and self.gc.collected(message.dot):
            return  # late duplicate of a globally-executed command
        record = self.info(message.dot)
        record.stable_from.add(message.partition)
        if self._step_depth:
            self._execute_dirty = True
        else:
            self._try_execute(now)

    def broadcast_promises(self, now: float = 0.0) -> None:
        """Broadcast newly issued promises to the partition (line 44)."""
        if not self.tracker.has_pending():
            return
        detached_ranges, attached = self.tracker.snapshot_ranges(drain=True)
        committed = set()
        for dot in attached:
            record = self._info.get(dot)
            if record is not None and record.is_committed:
                committed.add(dot)
        message = MPromises(
            Dot(self.process_id, self.dot_generator.peek().sequence),
            detached={self.process_id: detached_ranges} if detached_ranges else {},
            attached=attached,
            committed=frozenset(committed),
        )
        targets = [
            process for process in self.partition_peers()
            if process != self.process_id
        ]
        if targets:
            self.send(targets, message, now)

    def stability_check(self, now: float = 0.0) -> None:
        """Detect stable timestamps and drive execution (lines 49 & 97).

        Committed-but-unstable identifiers wait in a min-heap ordered by
        ``(timestamp, id)``; each check pops the prefix at or below the
        current stable timestamp (the same order the pseudocode obtains by
        sorting), so a check that finds nothing newly stable is O(1).
        """
        stable_up_to = self.promises.stable_timestamp(self.partition_peers())
        heap = self._commit_heap
        while heap and heap[0][0] <= stable_up_to:
            timestamp, dot = heappop(heap)
            record = self._info[dot]
            if record.stable_sent:
                continue
            record.stable_sent = True
            heappush(self._stable_heap, (timestamp, dot))
            targets = self._stable_targets_for(record.quorums)
            notification = MStable(dot, partition=self.partition)
            self.send(targets, notification, now)
            if self.reliability is not None and len(targets) > 1:
                # Cross-partition copies (everything except self) carry the
                # PSMR execution rule across shards: buffer until acked.
                self.reliability.track(targets, notification, now)
        self._try_execute(now)

    def _try_execute(self, now: float) -> None:
        """Execute stable commands in timestamp order (Algorithm 6 loop).

        Commands are executed strictly in ``(timestamp, id)`` order; a
        command whose ``MStable`` set is incomplete blocks the ones after it,
        exactly like the blocking wait of Algorithm 6, line 102.  The heap
        replaces the pseudocode's re-sorting of the committed set: the head
        of ``_stable_heap`` is exactly the minimum of that sort.
        """
        heap = self._stable_heap
        while heap:
            _, dot = heap[0]
            record = self._info[dot]
            if not record.has_all_stable():
                return
            heappop(heap)
            self._execute(dot, record, now)

    def _execute(self, dot: Dot, record: CommandInfo, now: float) -> None:
        command = record.command
        if command is None:
            raise RuntimeError(f"executing {dot} without a payload")
        result = self.apply_fn(command) if self.apply_fn is not None else None
        record.move_to(Phase.EXECUTE)
        del self._committed[dot]
        self.record_execution(dot, command, now)
        if self.gc is not None:
            self.gc.record_executed(dot)
        if command.client_id is not None and record.submitted_at is not None:
            # This process submitted the command: reply to the client.
            # Clients are addressed with negative identifiers by the cluster
            # layer; the runtime routes this envelope.
            self.outbox.append(self._client_reply(dot, command, result))

    def _client_reply(self, dot: Dot, command: Command, result):
        return Envelope(
            sender=self.process_id,
            destination=-(command.client_id + 1),
            message=ClientReply(dot, result=result),
        )

    # ------------------------------------------------------------------ periodic work

    def tick(self, now: float) -> None:
        """Periodic duties: promise broadcast, stability, liveness, recovery."""
        if now - self._last_promise_broadcast >= self.config.promise_interval:
            self._last_promise_broadcast = now
            self.broadcast_promises(now)
        if now - self._last_gc_announce >= self.config.gc_interval:
            self._last_gc_announce = now
            # GC watermark exchange is piggybacked on the periodic tick
            # traffic but at its own (slower) cadence: collection latency
            # only bounds the live-record window, so there is no reason to
            # pay a clock exchange per promise broadcast (epoch-2).
            self._gc_announce(now)
        if now - self._last_stability_check >= self.config.stability_interval:
            self._last_stability_check = now
            self.stability_check(now)
        self._hint_tick(now)
        self._recovery_tick(now)
        self._stability_resync_tick(now)
        self._stable_watchdog_tick(now)
        self._reliability_tick(now)

    # ------------------------------------------------------------------ watermark GC

    def _gc_announce(self, now: float) -> None:
        """Announce the local executed clock to the partition peers.

        Only sent when the frontier advanced since the last announcement
        (the tracker's dirty flag), so an idle partition exchanges nothing.
        """
        gc = self.gc
        if gc is None:
            return
        clock = gc.announcement()
        if clock:
            sentinel = Dot(self.process_id, self.dot_generator.peek().sequence)
            targets = [
                process for process in self.partition_peers()
                if process != self.process_id
            ]
            if targets:
                self.send(targets, MExecutedClock(sentinel, clock=clock), now)
        self._gc_sweep()

    def _on_executed_clock(
        self, sender: int, message: MExecutedClock, now: float
    ) -> None:
        """Merge a peer's executed clock and collect below the new watermark."""
        gc = self.gc
        if gc is None:
            return
        gc.ingest(sender, message.clock)
        self._gc_sweep()

    def _gc_sweep(self) -> None:
        """Drop bookkeeping for every newly globally-executed identifier."""
        gc = self.gc
        if gc is None:
            return
        for source, lo, hi in gc.advance():
            for sequence in range(lo, hi + 1):
                self._collect(intern_dot(source, sequence))

    def _collect(self, dot: Dot) -> None:
        """Forget ``dot`` entirely: it executed at every partition peer.

        Unlike :meth:`compact` (which nulls the payload but keeps the record
        for duplicate suppression), collection removes the record itself —
        the watermark predicate (:meth:`GcTracker.collected`) takes over
        duplicate suppression at O(1) per message, so memory stays
        proportional to the live command window.
        """
        record = self._info.pop(dot, None)
        assert record is None or record.phase is Phase.EXECUTE, (
            f"collecting {dot} in phase {record.phase}: watermark ran ahead "
            "of local execution"
        )
        self._buffered_attached.pop(dot, None)
        self._commit_requested.pop(dot, None)
        self._commit_rerequested.pop(dot, None)
        self._recovery_attempted.pop(dot, None)
        self._commit_hinted.discard(dot)

    def _recovery_tick(self, now: float) -> None:
        """Attempt recovery of stuck pending commands (Algorithm 6, line 75).

        The scan over ``_info`` is gated by the ``_pending_watch`` heap: it
        only runs when the oldest still-pending watched command has exceeded
        the recovery timeout, so healthy runs never pay for it.  When the
        scan does run it iterates ``_info`` itself (not the watch heap), so
        re-broadcast/recovery order is identical to an ungated sweep.
        """
        watch = self._pending_watch
        while watch:
            first_seen, dot = watch[0]
            record = self._info.get(dot)
            if record is not None and record.is_pending:
                if now - first_seen < self.config.recovery_timeout:
                    return
                break
            heappop(watch)
        else:
            return
        for dot, record in list(self._info.items()):
            if not record.is_pending:
                continue
            first_seen = record.first_seen_at
            if first_seen is None or now - first_seen < self.config.recovery_timeout:
                continue
            if record.command is not None and record.quorums:
                # Re-broadcast the payload so every correct process learns it.
                targets = [
                    process
                    for process in self._processes_of(sorted(record.quorums))
                    if process != self.process_id
                ]
                if targets:
                    self.send(
                        targets,
                        MPayload(dot, record.command, dict(record.quorums)),
                        now,
                    )
            if self._should_attempt_recovery(dot, now):
                self.recover(dot, now)
            # A peer that already committed ignores MRec (§B.1), so a
            # recovery that races a crashed coordinator's partial commit
            # broadcast can stall with no acks: the outcome is then only
            # learnable through MCommitRequest.  Re-request once per
            # recovery-timeout window per dot — an every-tick broadcast
            # floods the degraded period with tens of thousands of
            # redundant requests.
            last = self._commit_rerequested.get(dot)
            if last is None or now - last >= self.config.recovery_timeout:
                self._commit_rerequested[dot] = now
                self._commit_requested.pop(dot, None)
                self._request_commit_info(dot, now, force=True)

    # ------------------------------------------------------------------ reliable delivery

    def enable_reliability(self, buffer) -> None:
        """Arm retransmission and start tracking per-peer acked frontiers."""
        super().enable_reliability(buffer)
        self._acked_frontiers = {
            peer: 0
            for peer in self.partition_peers()
            if peer != self.process_id
        }

    def _on_delivery_ack(self, sender: int, message: MDeliveryAck, now: float) -> None:
        super()._on_delivery_ack(sender, message, now)
        frontiers = self._acked_frontiers
        if frontiers is not None:
            known = frontiers.get(sender)
            if known is not None and message.frontier > known:
                frontiers[sender] = message.frontier

    # ------------------------------------------------------------------ introspection

    def compact(self) -> int:
        """Reclaim memory for fully executed commands.

        Drops the payload and coordinator-side bookkeeping of commands that
        have been executed locally and whose timestamp is below the current
        stable timestamp (every correct process already knows about them),
        and garbage-collects the corresponding issued promises (footnote 2
        of the paper).  Returns the number of command records compacted.
        The phase map itself is retained so duplicate messages keep being
        ignored.
        """
        stable = self.stable_timestamp()
        frontiers = self._acked_frontiers
        if frontiers:
            # Acknowledgement-driven GC floor: never drop a promise (or the
            # record carrying it) that an alive partition peer has not yet
            # confirmed absorbing.  Crashed peers stop acking, so — exactly
            # like GcTracker's watermark — they pin the floor until they
            # recover and catch up, closing the late-joiner gap documented
            # in docs/fault_injection.md.
            acked_floor = min(frontiers.values())
            if acked_floor < stable:
                stable = acked_floor
        compacted = 0
        executed_dots = []
        for dot, record in self._info.items():
            if record.phase is not Phase.EXECUTE:
                continue
            timestamp = record.final_timestamp or record.timestamp
            if timestamp > stable:
                continue
            executed_dots.append(dot)
            if record.command is not None or record.proposals:
                record.command = None
                record.proposals = {}
                record.collected_attached = set()
                record.collected_detached = RangeCollector()
                record.consensus_acks = {}
                record.recovery_acks = {}
                compacted += 1
        self.tracker.garbage_collect(stable, executed_dots)
        return compacted

    def pending_dots(self) -> List[Dot]:
        """Identifiers currently in a pending phase."""
        return [dot for dot, record in self._info.items() if record.is_pending]

    def committed_dots(self) -> List[Dot]:
        """Identifiers committed (or executed) at this process."""
        return [dot for dot, record in self._info.items() if record.is_committed]

    def stable_timestamp(self) -> int:
        """Currently known highest stable timestamp (Theorem 1)."""
        return self.promises.stable_timestamp(self.partition_peers())
