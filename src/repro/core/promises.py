"""Promises and the promise-tracking data structures (§3.2).

A *promise* ``<j, u>`` states that process ``j`` will never again propose
timestamp ``u`` for any new command:

* an **attached** promise is tied to a specific command (process ``j``
  proposed ``u`` for that command);
* a **detached** promise is not tied to any command (the process skipped
  timestamp ``u`` when bumping its clock).

The execution protocol collects promises from the other processes of the
partition into a ``Promises`` set and derives, per process, the *highest
contiguous promise* — the largest ``c`` such that all of ``<j, 1> .. <j, c>``
are known.  Stability of a timestamp follows from Theorem 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.core.identifiers import Dot


@dataclass(frozen=True, order=True)
class Promise:
    """A promise ``<process, timestamp>``."""

    process: int
    timestamp: int

    def __post_init__(self) -> None:
        if self.timestamp < 1:
            raise ValueError("promise timestamps start at 1")
        if self.process < 0:
            raise ValueError("process identifiers are non-negative")


class PromiseTracker:
    """Per-process accumulator of locally *issued* promises.

    Mirrors the ``Detached`` set and the ``Attached`` mapping of Algorithm 1
    at a single process.  Promises are drained when broadcast so each promise
    is, in the common case, sent only once (footnote 2 of the paper); the
    full set is retained for re-broadcast on demand (e.g. after suspected
    message loss).
    """

    def __init__(self, process: int) -> None:
        self.process = process
        self._detached: Set[Promise] = set()
        self._attached: Dict[Dot, Set[Promise]] = {}
        self._pending_detached: Set[Promise] = set()
        self._pending_attached: Dict[Dot, Set[Promise]] = {}

    # -- recording ------------------------------------------------------------

    def add_detached(self, timestamps: Iterable[int]) -> None:
        """Record detached promises for the given timestamps."""
        for timestamp in timestamps:
            promise = Promise(self.process, timestamp)
            if promise not in self._detached:
                self._detached.add(promise)
                self._pending_detached.add(promise)

    def add_attached(self, dot: Dot, timestamp: int) -> None:
        """Record the attached promise for a proposal on command ``dot``."""
        promise = Promise(self.process, timestamp)
        self._attached.setdefault(dot, set()).add(promise)
        self._pending_attached.setdefault(dot, set()).add(promise)

    # -- inspection -----------------------------------------------------------

    def detached(self) -> FrozenSet[Promise]:
        return frozenset(self._detached)

    def attached(self) -> Dict[Dot, FrozenSet[Promise]]:
        return {dot: frozenset(promises) for dot, promises in self._attached.items()}

    def attached_for(self, dot: Dot) -> FrozenSet[Promise]:
        return frozenset(self._attached.get(dot, set()))

    def all_issued(self) -> FrozenSet[Promise]:
        """All promises (attached or detached) issued so far."""
        issued = set(self._detached)
        for promises in self._attached.values():
            issued.update(promises)
        return frozenset(issued)

    # -- broadcasting ---------------------------------------------------------

    def snapshot(
        self, drain: bool = True
    ) -> Tuple[FrozenSet[Promise], Dict[Dot, FrozenSet[Promise]]]:
        """Return promises to broadcast in the next ``MPromises`` message.

        With ``drain=True`` (the default, matching the paper's
        send-each-promise-once optimisation) the returned promises are
        removed from the pending set; with ``drain=False`` the full issued
        set is returned.
        """
        if drain:
            detached = frozenset(self._pending_detached)
            attached = {
                dot: frozenset(promises)
                for dot, promises in self._pending_attached.items()
            }
            self._pending_detached = set()
            self._pending_attached = {}
            return detached, attached
        return self.detached(), self.attached()

    def has_pending(self) -> bool:
        """Whether there is anything new to broadcast."""
        return bool(self._pending_detached or self._pending_attached)

    def garbage_collect(self, up_to_timestamp: int, executed_dots: Iterable[Dot]) -> int:
        """Drop promises that every peer is known to have received.

        The paper (footnote 2) notes that promises can be garbage-collected
        as soon as they are received by all processes of the partition; the
        caller passes the timestamp below which this is known to hold (e.g.
        the minimum stable timestamp acknowledged by all peers) together
        with the identifiers whose commands have been executed everywhere.
        Pending (not yet broadcast) promises are never dropped.  Returns the
        number of promises discarded.
        """
        dropped = 0
        keep_detached = set()
        for promise in self._detached:
            if promise.timestamp <= up_to_timestamp and promise not in self._pending_detached:
                dropped += 1
            else:
                keep_detached.add(promise)
        self._detached = keep_detached
        for dot in list(executed_dots):
            if dot in self._attached and dot not in self._pending_attached:
                promises = self._attached[dot]
                if all(promise.timestamp <= up_to_timestamp for promise in promises):
                    dropped += len(promises)
                    del self._attached[dot]
        return dropped


@dataclass
class PromiseSet:
    """The ``Promises`` variable: promises *known* at a process.

    Supports the ``highest_contiguous_promise`` query of Algorithm 2 in
    amortised O(1) per insertion by keeping, per process, the current
    contiguous frontier plus a set of out-of-order timestamps.
    """

    _frontier: Dict[int, int] = field(default_factory=dict)
    _pending: Dict[int, Set[int]] = field(default_factory=dict)
    _size: int = 0

    def add(self, promise: Promise) -> None:
        """Insert a single promise."""
        process = promise.process
        frontier = self._frontier.get(process, 0)
        if promise.timestamp <= frontier:
            return
        pending = self._pending.setdefault(process, set())
        if promise.timestamp in pending:
            return
        pending.add(promise.timestamp)
        self._size += 1
        # Advance the contiguous frontier as far as possible.
        while frontier + 1 in pending:
            frontier += 1
            pending.remove(frontier)
        self._frontier[process] = frontier

    def add_all(self, promises: Iterable[Promise]) -> None:
        for promise in promises:
            self.add(promise)

    def __contains__(self, promise: Promise) -> bool:
        frontier = self._frontier.get(promise.process, 0)
        if promise.timestamp <= frontier:
            return True
        return promise.timestamp in self._pending.get(promise.process, set())

    def __len__(self) -> int:
        return self._size

    def highest_contiguous_promise(self, process: int) -> int:
        """Largest ``c`` such that all promises ``<process, 1..c>`` are known."""
        return self._frontier.get(process, 0)

    def frontier(self, processes: Iterable[int]) -> List[int]:
        """Highest contiguous promise for each of ``processes``."""
        return [self.highest_contiguous_promise(process) for process in processes]

    def stable_timestamp(self, processes: Iterable[int]) -> int:
        """Highest stable timestamp per Theorem 1.

        Sorts the per-process contiguous frontiers and returns the value at
        index ``floor(r/2)`` — i.e. the largest ``s`` such that a majority of
        processes have all their promises up to ``s`` known.
        """
        frontiers = sorted(self.frontier(processes))
        if not frontiers:
            return 0
        majority_index = len(frontiers) // 2
        return frontiers[majority_index]
