"""Promises and the promise-tracking data structures (§3.2).

A *promise* ``<j, u>`` states that process ``j`` will never again propose
timestamp ``u`` for any new command:

* an **attached** promise is tied to a specific command (process ``j``
  proposed ``u`` for that command);
* a **detached** promise is not tied to any command (the process skipped
  timestamp ``u`` when bumping its clock).

The execution protocol collects promises from the other processes of the
partition into a ``Promises`` set and derives, per process, the *highest
contiguous promise* — the largest ``c`` such that all of ``<j, 1> .. <j, c>``
are known.  Stability of a timestamp follows from Theorem 1.

Performance notes
-----------------

Detached promises are issued by clock jumps, so they arrive as contiguous
integer ranges.  :class:`PromiseTracker` therefore stores them as sorted
disjoint ``[lo, hi]`` ranges (``Promise`` objects are only materialised at
the broadcast/inspection boundary), which makes issuing a jump of any size
O(1) and makes the drain performed by :meth:`PromiseTracker.snapshot`
proportional to the number of *ranges*, not promises.  Similarly,
:class:`PromiseSet` absorbs a contiguous range in O(1) via
:meth:`PromiseSet.add_range` when it extends the frontier, and caches the
sorted-frontier answer of :meth:`PromiseSet.stable_timestamp` until a
frontier actually moves.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.core.identifiers import Dot

#: Wire encoding of detached promises: per process, the sorted disjoint
#: inclusive ``(lo, hi)`` timestamp ranges it promised.  This is what the
#: promise-carrying messages (``MPromises``, ``MProposeAck``, ``MCommit``)
#: put on the wire instead of materialised ``Promise`` objects — see
#: ``docs/promise_ranges.md``.
PromiseRangeWire = Mapping[int, Tuple[Tuple[int, int], ...]]


@dataclass(frozen=True, order=True)
class Promise:
    """A promise ``<process, timestamp>``."""

    process: int
    timestamp: int

    def __post_init__(self) -> None:
        if self.timestamp < 1:
            raise ValueError("promise timestamps start at 1")
        if self.process < 0:
            raise ValueError("process identifiers are non-negative")


class _IntRanges:
    """Sorted, disjoint, inclusive integer ranges.

    Appending past the current maximum — the clock-jump common case — is
    O(1); arbitrary insertion falls back to a bisect-based merge.
    """

    __slots__ = ("_ranges",)

    def __init__(self) -> None:
        self._ranges: List[List[int]] = []

    def __bool__(self) -> bool:
        return bool(self._ranges)

    def count(self) -> int:
        return sum(hi - lo + 1 for lo, hi in self._ranges)

    def ranges(self) -> List[Tuple[int, int]]:
        return [(lo, hi) for lo, hi in self._ranges]

    def contains(self, value: int) -> bool:
        ranges = self._ranges
        index = bisect_left(ranges, [value + 1]) - 1
        return index >= 0 and ranges[index][0] <= value <= ranges[index][1]

    def iter_values(self) -> Iterator[int]:
        for lo, hi in self._ranges:
            yield from range(lo, hi + 1)

    def clear(self) -> None:
        self._ranges = []

    def add_range(self, lo: int, hi: int) -> List[Tuple[int, int]]:
        """Insert ``[lo, hi]``; return the sub-ranges that were newly covered."""
        if hi < lo:
            return []
        ranges = self._ranges
        if not ranges or lo > ranges[-1][1] + 1:
            ranges.append([lo, hi])
            return [(lo, hi)]
        last = ranges[-1]
        if lo == last[1] + 1:
            last[1] = hi
            return [(lo, hi)]
        return self._add_range_slow(lo, hi)

    def _add_range_slow(self, lo: int, hi: int) -> List[Tuple[int, int]]:
        ranges = self._ranges
        # First range whose start could fall inside or after [lo, hi],
        # stepping back one if the previous range covers or touches ``lo``.
        index = bisect_left(ranges, [lo])
        if index > 0 and ranges[index - 1][1] + 1 >= lo:
            index -= 1
        start = index
        added: List[Tuple[int, int]] = []
        cursor = lo
        merge_lo = lo
        merge_hi = hi
        while index < len(ranges) and ranges[index][0] <= hi + 1:
            range_lo, range_hi = ranges[index]
            if cursor < range_lo:
                added.append((cursor, min(hi, range_lo - 1)))
            if range_hi + 1 > cursor:
                cursor = range_hi + 1
            if range_lo < merge_lo:
                merge_lo = range_lo
            if range_hi > merge_hi:
                merge_hi = range_hi
            index += 1
        if cursor <= hi:
            added.append((cursor, hi))
        ranges[start:index] = [[merge_lo, merge_hi]]
        return added

    def split_at(self, limit: int) -> Tuple[List[List[int]], List[List[int]]]:
        """Partition into (ranges with values <= limit, ranges above it)."""
        low: List[List[int]] = []
        high: List[List[int]] = []
        for lo, hi in self._ranges:
            if hi <= limit:
                low.append([lo, hi])
            elif lo > limit:
                high.append([lo, hi])
            else:
                low.append([lo, limit])
                high.append([limit + 1, hi])
        return low, high


def _materialise(process: int, ranges: Iterable[Tuple[int, int]]) -> FrozenSet[Promise]:
    return frozenset(
        Promise(process, timestamp)
        for lo, hi in ranges
        for timestamp in range(lo, hi + 1)
    )


def range_wire_count(wire: PromiseRangeWire) -> int:
    """Number of logical promises encoded by a range map.

    The wire-size accounting of the promise-carrying messages charges per
    logical promise, exactly as the historical ``FrozenSet[Promise]``
    encoding did, so the byte counters are unaffected by the encoding.
    """
    count = 0
    for spans in wire.values():
        for lo, hi in spans:
            count += hi - lo + 1
    return count


def range_wire_promises(wire: PromiseRangeWire) -> FrozenSet[Promise]:
    """Materialise a range map into ``Promise`` objects (tests/inspection)."""
    return frozenset(
        Promise(process, timestamp)
        for process, spans in wire.items()
        for lo, hi in spans
        for timestamp in range(lo, hi + 1)
    )


class RangeCollector:
    """Mutable per-process promise-range accumulator.

    The coordinator collects the detached promises piggybacked on
    ``MProposeAck`` messages into one of these (instead of a
    ``Set[Promise]``) and reads them back out as ranges when building the
    ``MCommit`` piggyback, so the contended fast path never materialises a
    ``Promise`` object per skipped timestamp.
    """

    __slots__ = ("_by_process",)

    def __init__(self) -> None:
        self._by_process: Dict[int, _IntRanges] = {}

    def __bool__(self) -> bool:
        return any(self._by_process.values())

    def add_range(self, process: int, lo: int, hi: int) -> None:
        """Record the promises ``<process, lo..hi>``."""
        if hi < lo:
            return
        ranges = self._by_process.get(process)
        if ranges is None:
            ranges = self._by_process[process] = _IntRanges()
        ranges.add_range(lo, hi)

    def update(self, wire: PromiseRangeWire) -> None:
        """Merge a wire-encoded range map into the collector."""
        for process, spans in wire.items():
            for lo, hi in spans:
                self.add_range(process, lo, hi)

    def to_wire(self) -> Dict[int, Tuple[Tuple[int, int], ...]]:
        """Wire encoding of the collected ranges."""
        return {
            process: tuple(ranges.ranges())
            for process, ranges in self._by_process.items()
            if ranges
        }

    def count(self) -> int:
        """Number of logical promises collected."""
        return sum(ranges.count() for ranges in self._by_process.values())

    def promises(self) -> FrozenSet[Promise]:
        """Materialised view (tests/inspection only)."""
        return range_wire_promises(self.to_wire())


class PromiseTracker:
    """Per-process accumulator of locally *issued* promises.

    Mirrors the ``Detached`` set and the ``Attached`` mapping of Algorithm 1
    at a single process.  Promises are drained when broadcast so each promise
    is, in the common case, sent only once (footnote 2 of the paper); the
    full set is retained for re-broadcast on demand (e.g. after suspected
    message loss).  Detached promises are stored as integer ranges (see the
    module docstring); ``Promise`` objects only exist on the wire.
    """

    def __init__(self, process: int) -> None:
        self.process = process
        self._detached = _IntRanges()
        self._pending_detached = _IntRanges()
        self._attached: Dict[Dot, Set[int]] = {}
        self._pending_attached: Dict[Dot, Set[int]] = {}

    # -- recording ------------------------------------------------------------

    def add_detached_range(self, lo: int, hi: int) -> None:
        """Record detached promises for every timestamp in ``[lo, hi]``."""
        if hi < lo:
            return
        if lo < 1:
            raise ValueError("promise timestamps start at 1")
        for new_lo, new_hi in self._detached.add_range(lo, hi):
            self._pending_detached.add_range(new_lo, new_hi)

    def add_detached(self, timestamps: Iterable[int]) -> None:
        """Record detached promises for the given timestamps.

        Consecutive runs in the input are coalesced into range insertions;
        already-recorded timestamps are not re-queued for broadcast.
        """
        run_lo = run_hi = None
        for timestamp in timestamps:
            if run_lo is None:
                run_lo = run_hi = timestamp
            elif timestamp == run_hi + 1:
                run_hi = timestamp
            else:
                self.add_detached_range(run_lo, run_hi)
                run_lo = run_hi = timestamp
        if run_lo is not None:
            self.add_detached_range(run_lo, run_hi)

    def add_attached(self, dot: Dot, timestamp: int) -> None:
        """Record the attached promise for a proposal on command ``dot``."""
        if timestamp < 1:
            raise ValueError("promise timestamps start at 1")
        self._attached.setdefault(dot, set()).add(timestamp)
        self._pending_attached.setdefault(dot, set()).add(timestamp)

    # -- inspection -----------------------------------------------------------

    def detached(self) -> FrozenSet[Promise]:
        return _materialise(self.process, self._detached.ranges())

    def detached_ranges(self) -> List[Tuple[int, int]]:
        """Detached promises as sorted disjoint inclusive ranges."""
        return self._detached.ranges()

    def attached(self) -> Dict[Dot, FrozenSet[Promise]]:
        process = self.process
        return {
            dot: frozenset(Promise(process, ts) for ts in timestamps)
            for dot, timestamps in self._attached.items()
        }

    def attached_for(self, dot: Dot) -> FrozenSet[Promise]:
        process = self.process
        return frozenset(
            Promise(process, ts) for ts in self._attached.get(dot, ())
        )

    def all_issued(self) -> FrozenSet[Promise]:
        """All promises (attached or detached) issued so far."""
        process = self.process
        issued = set(self.detached())
        for timestamps in self._attached.values():
            issued.update(Promise(process, ts) for ts in timestamps)
        return frozenset(issued)

    # -- broadcasting ---------------------------------------------------------

    def snapshot(
        self, drain: bool = True
    ) -> Tuple[FrozenSet[Promise], Dict[Dot, FrozenSet[Promise]]]:
        """Return promises to broadcast in the next ``MPromises`` message.

        With ``drain=True`` (the default, matching the paper's
        send-each-promise-once optimisation) the returned promises are
        removed from the pending set; with ``drain=False`` the full issued
        set is returned.
        """
        detached_ranges, attached = self.snapshot_ranges(drain)
        return _materialise(self.process, detached_ranges), attached

    def snapshot_ranges(
        self, drain: bool = True
    ) -> Tuple[Tuple[Tuple[int, int], ...], Dict[Dot, FrozenSet[Promise]]]:
        """Range-encoded variant of :meth:`snapshot`.

        Returns the detached promises as sorted disjoint inclusive
        ``(lo, hi)`` ranges (all of this tracker's own process), without
        materialising a ``Promise`` object per timestamp; the attached
        promises (one or two per command) stay materialised.
        """
        if drain:
            process = self.process
            detached_ranges = tuple(self._pending_detached.ranges())
            attached = {
                dot: frozenset(Promise(process, ts) for ts in timestamps)
                for dot, timestamps in self._pending_attached.items()
            }
            self._pending_detached = _IntRanges()
            self._pending_attached = {}
            return detached_ranges, attached
        return tuple(self._detached.ranges()), self.attached()

    def has_pending(self) -> bool:
        """Whether there is anything new to broadcast."""
        return bool(self._pending_detached or self._pending_attached)

    def garbage_collect(self, up_to_timestamp: int, executed_dots: Iterable[Dot]) -> int:
        """Drop promises that every peer is known to have received.

        The paper (footnote 2) notes that promises can be garbage-collected
        as soon as they are received by all processes of the partition; the
        caller passes the timestamp below which this is known to hold (e.g.
        the minimum stable timestamp acknowledged by all peers) together
        with the identifiers whose commands have been executed everywhere.
        Pending (not yet broadcast) promises are never dropped, empty
        attached entries are removed, and the operation is idempotent:
        calling it again with the same arguments drops nothing further.
        Returns the number of promises discarded.
        """
        detached_low, detached_high = self._detached.split_at(up_to_timestamp)
        pending_low, _ = self._pending_detached.split_at(up_to_timestamp)
        dropped = sum(hi - lo + 1 for lo, hi in detached_low) - sum(
            hi - lo + 1 for lo, hi in pending_low
        )
        kept = _IntRanges()
        kept._ranges = pending_low + detached_high
        self._detached = kept
        for dot in list(executed_dots):
            timestamps = self._attached.get(dot)
            if timestamps is None:
                continue
            if not timestamps:
                del self._attached[dot]
                continue
            if dot in self._pending_attached:
                continue
            if all(ts <= up_to_timestamp for ts in timestamps):
                dropped += len(timestamps)
                del self._attached[dot]
        return dropped


class PromiseSet:
    """The ``Promises`` variable: promises *known* at a process.

    Supports the ``highest_contiguous_promise`` query of Algorithm 2 in
    amortised O(1) per insertion by keeping, per process, the current
    contiguous frontier plus a set of out-of-order timestamps.  Contiguous
    blocks (e.g. from an ``MPromises`` broadcast covering a clock jump) are
    absorbed in O(1) via :meth:`add_range` when they extend the frontier,
    and :meth:`stable_timestamp` caches its sorted-frontier answer until a
    frontier moves.
    """

    __slots__ = ("_frontier", "_pending", "_size", "_stable_cache")

    def __init__(self) -> None:
        self._frontier: Dict[int, int] = {}
        self._pending: Dict[int, Set[int]] = {}
        self._size = 0
        self._stable_cache: Dict[Tuple[int, ...], int] = {}

    def add(self, promise: Promise) -> None:
        """Insert a single promise."""
        self.add_timestamp(promise.process, promise.timestamp)

    def add_timestamp(self, process: int, timestamp: int) -> None:
        """Insert the promise ``<process, timestamp>`` without materialising
        a :class:`Promise` object."""
        frontier = self._frontier.get(process, 0)
        if timestamp <= frontier:
            return
        if timestamp == frontier + 1:
            frontier = timestamp
            self._size += 1
            pending = self._pending.get(process)
            if pending:
                while frontier + 1 in pending:
                    frontier += 1
                    pending.remove(frontier)
            self._frontier[process] = frontier
            if self._stable_cache:
                self._stable_cache.clear()
            return
        pending = self._pending.get(process)
        if pending is None:
            self._pending[process] = pending = set()
        elif timestamp in pending:
            return
        pending.add(timestamp)
        self._size += 1

    def add_range(self, process: int, lo: int, hi: int) -> None:
        """Insert every promise ``<process, lo..hi>`` (bulk API).

        O(1) when the range extends the contiguous frontier and no
        out-of-order timestamps overlap it — the common case for the
        detached promises of a clock jump.
        """
        if hi < lo:
            return
        frontier = self._frontier.get(process, 0)
        if hi <= frontier:
            return
        if lo <= frontier:
            lo = frontier + 1
        pending = self._pending.get(process)
        if lo == frontier + 1:
            if pending:
                added = hi - lo + 1
                for timestamp in range(lo, hi + 1):
                    if timestamp in pending:
                        pending.remove(timestamp)
                        added -= 1
                self._size += added
                frontier = hi
                while frontier + 1 in pending:
                    frontier += 1
                    pending.remove(frontier)
            else:
                self._size += hi - lo + 1
                frontier = hi
            self._frontier[process] = frontier
            if self._stable_cache:
                self._stable_cache.clear()
            return
        if pending is None:
            pending = self._pending.setdefault(process, set())
        for timestamp in range(lo, hi + 1):
            if timestamp not in pending:
                pending.add(timestamp)
                self._size += 1

    def add_all(self, promises: Iterable[Promise]) -> None:
        add_timestamp = self.add_timestamp
        for promise in promises:
            add_timestamp(promise.process, promise.timestamp)

    def absorb_ranges(
        self, wire: PromiseRangeWire, only: Optional[FrozenSet[int]] = None
    ) -> None:
        """Bulk-ingest a wire-encoded range map (see ``PromiseRangeWire``).

        Cost is proportional to the number of *ranges*, not promises: each
        range goes through :meth:`add_range`, which is O(1) when it extends
        the process's contiguous frontier (the clock-jump common case).
        ``only`` restricts absorption to the given processes (the receivers
        of commit piggybacks only care about their own partition's peers).
        """
        add_range = self.add_range
        for process, spans in wire.items():
            if only is not None and process not in only:
                continue
            for lo, hi in spans:
                add_range(process, lo, hi)

    def __contains__(self, promise: Promise) -> bool:
        frontier = self._frontier.get(promise.process, 0)
        if promise.timestamp <= frontier:
            return True
        return promise.timestamp in self._pending.get(promise.process, set())

    def __len__(self) -> int:
        return self._size

    def highest_contiguous_promise(self, process: int) -> int:
        """Largest ``c`` such that all promises ``<process, 1..c>`` are known."""
        return self._frontier.get(process, 0)

    def frontier(self, processes: Iterable[int]) -> List[int]:
        """Highest contiguous promise for each of ``processes``."""
        frontiers = self._frontier
        return [frontiers.get(process, 0) for process in processes]

    def stable_timestamp(self, processes: Iterable[int]) -> int:
        """Highest stable timestamp per Theorem 1.

        A timestamp ``s`` is stable once all promises up to ``s`` from a
        strict majority (``floor(r/2) + 1``) of the ``r`` processes are
        known.  Sorting the per-process contiguous frontiers ascending, the
        highest such ``s`` is the ``floor(r/2) + 1``-th largest frontier,
        i.e. index ``ceil(r/2) - 1 == (r - 1) // 2``.  (For odd ``r`` this
        coincides with the median index ``r // 2``; for even ``r`` the two
        differ — ``r // 2`` would only be backed by ``r/2`` processes, one
        short of a majority.)

        The result is cached per ``processes`` tuple and invalidated when a
        frontier advances, so repeated stability checks between promise
        arrivals cost one dictionary lookup.
        """
        key = tuple(processes)
        cached = self._stable_cache.get(key)
        if cached is not None:
            return cached
        frontier_map = self._frontier
        frontiers = [frontier_map.get(process, 0) for process in key]
        if not frontiers:
            value = 0
        else:
            frontiers.sort()
            value = frontiers[(len(frontiers) - 1) // 2]
        self._stable_cache[key] = value
        return value
