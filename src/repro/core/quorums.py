"""Quorum system used by Tempo and the baselines.

Tempo uses three quorum kinds per partition (§3):

* *fast quorums* of size ``floor(r/2) + f`` including the coordinator, used
  to compute timestamp proposals;
* *slow quorums* of size ``f + 1`` including the coordinator, used by the
  Flexible-Paxos consensus on the slow path;
* *recovery quorums* of size ``r - f`` used by Paxos phase-1 during
  recovery.

Fast quorums are chosen as the processes closest to the coordinator (by
site latency when available, by rank distance otherwise), which is what the
paper's implementation does to minimise the fast-path round-trip.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.config import ProtocolConfig


class QuorumSystem:
    """Computes fast/slow/recovery quorums for one deployment.

    Args:
        config: the deployment configuration.
        latencies: optional mapping ``latencies[i][j]`` giving the one-way
            latency between global processes ``i`` and ``j``; when provided,
            fast quorums prefer the closest processes.
    """

    def __init__(
        self,
        config: ProtocolConfig,
        latencies: Optional[Mapping[int, Mapping[int, float]]] = None,
    ) -> None:
        self.config = config
        self._latencies = latencies

    # -- sizes ---------------------------------------------------------------

    @property
    def fast_quorum_size(self) -> int:
        return self.config.fast_quorum_size

    @property
    def slow_quorum_size(self) -> int:
        return self.config.slow_quorum_size

    @property
    def recovery_quorum_size(self) -> int:
        return self.config.recovery_quorum_size

    # -- quorum selection ----------------------------------------------------

    def _distance(self, origin: int, target: int) -> float:
        if self._latencies is not None:
            return float(self._latencies[origin][target])
        # Fall back to rank distance within the partition (deterministic).
        config = self.config
        rank_a = config.rank_in_partition(origin)
        rank_b = config.rank_in_partition(target)
        span = abs(rank_a - rank_b)
        return float(min(span, config.num_processes - span))

    def _closest(self, coordinator: int, members: Sequence[int], count: int) -> List[int]:
        if coordinator not in members:
            raise ValueError("coordinator must replicate the partition")
        if count > len(members):
            raise ValueError(
                f"cannot build a quorum of {count} out of {len(members)} processes"
            )
        others = sorted(
            (member for member in members if member != coordinator),
            key=lambda member: (self._distance(coordinator, member), member),
        )
        return [coordinator] + others[: count - 1]

    def fast_quorum(self, coordinator: int, partition: int) -> List[int]:
        """Fast quorum for ``partition`` led by ``coordinator``."""
        members = self.config.processes_of_partition(partition)
        return self._closest(coordinator, members, self.fast_quorum_size)

    def slow_quorum(self, coordinator: int, partition: int) -> List[int]:
        """Slow (Flexible-Paxos phase-2) quorum led by ``coordinator``."""
        members = self.config.processes_of_partition(partition)
        return self._closest(coordinator, members, self.slow_quorum_size)

    def fast_quorums(
        self, submitter: int, partitions: Sequence[int]
    ) -> Dict[int, List[int]]:
        """Fast quorum per accessed partition (the ``Q`` mapping of Alg. 1).

        The coordinator of each partition is the replica of that partition
        co-located with (closest to) the submitting process.
        """
        quorums: Dict[int, List[int]] = {}
        for partition in partitions:
            coordinator = self.coordinator_for(submitter, partition)
            quorums[partition] = self.fast_quorum(coordinator, partition)
        return quorums

    def coordinator_for(self, submitter: int, partition: int) -> int:
        """The replica of ``partition`` that acts as coordinator for a
        command submitted by ``submitter`` (the closest one — typically the
        co-located replica)."""
        members = self.config.processes_of_partition(partition)
        if submitter in members:
            return submitter
        rank = self.config.rank_in_partition(submitter)
        colocated = partition * self.config.num_processes + rank
        if colocated in members:
            return colocated
        return min(members, key=lambda member: (self._distance(submitter, member), member))

    def coordinators_for(
        self, submitter: int, partitions: Sequence[int]
    ) -> Dict[int, int]:
        """Coordinator per partition for a multi-partition command (the set
        ``I^i_c`` of Algorithm 3)."""
        return {
            partition: self.coordinator_for(submitter, partition)
            for partition in partitions
        }

    # -- validation helpers ----------------------------------------------------

    def is_valid_fast_quorum(self, quorum: Sequence[int], partition: int) -> bool:
        """Check that ``quorum`` is a plausible fast quorum for the partition."""
        members = set(self.config.processes_of_partition(partition))
        return (
            len(set(quorum)) == len(quorum)
            and len(quorum) == self.fast_quorum_size
            and set(quorum) <= members
        )
