"""Tempo recovery protocol (Algorithm 4) and liveness mechanisms (§B).

Implemented as a mixin used by :class:`repro.core.process.TempoProcess`.
The mixin assumes the host class provides the attributes created by
``TempoProcess.__init__`` (``_info``, ``clock``, ``tracker``, quorum system,
``send`` ...).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.identifiers import Dot
from repro.core.messages import (
    MConsensus,
    MRec,
    MRecAck,
    MRecNAck,
)
from repro.core.phases import Phase


class RecoveryMixin:
    """Recovery (new-coordinator) handlers for Tempo."""

    # -- ballot arithmetic -----------------------------------------------------

    def _own_ballot(self) -> int:
        """Ballot reserved for this process as an *initial* coordinator."""
        return self.config.rank_in_partition(self.process_id) + 1

    def ballot_owner_rank(self, ballot: int) -> int:
        """Rank (within the partition) of the process owning ``ballot``."""
        if ballot < 1:
            raise ValueError("ballots start at 1")
        return (ballot - 1) % self.config.num_processes

    def _next_recovery_ballot(self, current: int) -> int:
        """Smallest ballot owned by this process that is greater than both
        ``current`` and ``r`` (recovery ballots are always above ``r``)."""
        rank = self.config.rank_in_partition(self.process_id)
        r = self.config.num_processes
        ballot = rank + 1 + r
        while ballot <= current:
            ballot += r
        return ballot

    # -- recovery entry point -----------------------------------------------------

    def recover(self, dot: Dot, now: float = 0.0) -> None:
        """Take over as coordinator of ``dot`` (Algorithm 4, line 72)."""
        info = self._info.get(dot)
        if info is None or not info.is_pending:
            return
        self._recovery_attempted[dot] = now
        ballot = self._next_recovery_ballot(info.ballot)
        info.recovery_acks.setdefault(ballot, {})
        self.send(self.partition_peers(), MRec(dot, ballot), now)

    def _should_attempt_recovery(self, dot: Dot, now: Optional[float] = None) -> bool:
        """Whether this process should call :meth:`recover` for ``dot``.

        Only the partition leader recovers (§B.1).  A ballot started by
        *another* process is always taken over.  A stalled ballot of the
        leader's own is re-attempted — the MRec broadcast may have been
        lost (fair-lossy links; e.g. a partition that has since healed) —
        but only once per recovery-timeout window, so a long outage cannot
        storm the partition with recovery traffic.
        """
        info = self._info.get(dot)
        if info is None or not info.is_pending:
            return False
        if self.leader_of_partition() != self.process_id:
            return False
        if info.ballot == 0:
            return True
        owner = self.ballot_owner_rank(info.ballot)
        if owner != self.config.rank_in_partition(self.process_id):
            return True
        if now is None:
            return False
        last = self._recovery_attempted.get(dot)
        return last is None or now - last >= self.config.recovery_timeout

    # -- handlers -------------------------------------------------------------------

    def _on_rec(self, sender: int, message: MRec, now: float) -> None:
        """Handle ``MRec`` (Algorithm 4, line 76)."""
        dot = message.dot
        info = self._info.get(dot)
        if info is None or not info.is_pending:
            # A committed/executed process ignores MRec; the requester will
            # learn the outcome through MCommitRequest / MPromises (§B.1).
            return
        if info.ballot >= message.ballot:
            self.send([sender], MRecNAck(dot, info.ballot), now)
            return
        if info.ballot == 0:
            if info.phase is Phase.PAYLOAD:
                result = self.clock.proposal(0)
                self._track_detached(result.detached)
                self.tracker.add_attached(dot, result.timestamp)
                self._absorb_own_issue(dot, result.timestamp, result.detached)
                info.timestamp = result.timestamp
                info.move_to(Phase.RECOVER_R)
            elif info.phase is Phase.PROPOSE:
                info.move_to(Phase.RECOVER_P)
        info.ballot = message.ballot
        reply = MRecAck(
            dot,
            timestamp=info.timestamp,
            phase=info.phase,
            accepted_ballot=info.accepted_ballot,
            ballot=message.ballot,
        )
        self.send([sender], reply, now)

    def _on_rec_ack(self, sender: int, message: MRecAck, now: float) -> None:
        """Handle ``MRecAck`` (Algorithm 4, line 86)."""
        dot = message.dot
        info = self._info.get(dot)
        if info is None:
            return
        acks = info.recovery_acks.setdefault(message.ballot, {})
        acks[sender] = (message.timestamp, message.phase, message.accepted_ballot)
        if len(acks) < self.config.recovery_quorum_size:
            return
        if info.ballot != message.ballot or not info.is_pending:
            return
        proposal = self._recovery_consensus_value(dot, info, acks)
        self.send(
            self.partition_peers(), MConsensus(dot, proposal, message.ballot), now
        )

    def _recovery_consensus_value(
        self,
        dot: Dot,
        info,
        acks: Dict[int, Tuple[int, Phase, int]],
    ) -> int:
        """Compute the timestamp the new coordinator proposes in consensus."""
        accepted = {
            process: (timestamp, accepted_ballot)
            for process, (timestamp, _, accepted_ballot) in acks.items()
            if accepted_ballot != 0
        }
        if accepted:
            # Standard Paxos rule: adopt the value accepted at the highest
            # ballot (Algorithm 4, lines 88-90).
            _, (timestamp, _) = max(
                accepted.items(), key=lambda item: (item[1][1], item[0])
            )
            return timestamp
        fast_quorum = set(info.quorums.get(self.partition, ()))
        intersection = set(acks) & fast_quorum
        initial = dot.initial_coordinator()
        initial_replied = initial in intersection
        any_recover_r = any(
            acks[process][1] is Phase.RECOVER_R for process in intersection
        )
        if initial_replied or any_recover_r:
            # The initial coordinator cannot have taken the fast path: any
            # majority-respecting max works (Algorithm 4, case 1).
            candidates = set(acks)
        else:
            # The fast path may have been taken: recompute its timestamp from
            # the surviving fast-quorum members (Algorithm 4, case 2,
            # Property 4).
            candidates = intersection
        if not candidates:
            candidates = set(acks)
        return max(acks[process][0] for process in candidates)

    def _on_rec_nack(self, sender: int, message: MRecNAck, now: float) -> None:
        """Handle ``MRecNAck`` (Algorithm 6, line 82)."""
        dot = message.dot
        info = self._info.get(dot)
        if info is None:
            return
        if self.leader_of_partition() != self.process_id:
            return
        if info.ballot >= message.ballot:
            return
        info.ballot = message.ballot
        self.recover(dot, now)
