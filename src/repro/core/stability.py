"""Stability detection helpers (Theorem 1 and Figure 2).

These helpers are pure functions over :class:`repro.core.promises.PromiseSet`
instances; the protocol process uses them, and so do the Figure 2 / Figure 3
reproduction experiments and the property-based tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.promises import Promise, PromiseSet


def highest_contiguous_promises(
    promises: PromiseSet, processes: Sequence[int]
) -> Dict[int, int]:
    """Per-process highest contiguous promise (Algorithm 2, line 54)."""
    return {
        process: promises.highest_contiguous_promise(process)
        for process in processes
    }


def stable_timestamp(promises: PromiseSet, processes: Sequence[int]) -> int:
    """Highest stable timestamp per Theorem 1.

    A timestamp ``s`` is stable once ``Promises`` contains all promises up
    to ``s`` from a strict majority (``floor(r/2) + 1``) of the partition's
    ``r`` processes; the highest such ``s`` is the value at index
    ``(r - 1) // 2`` of the ascending-sorted per-process frontiers (the
    ``floor(r/2) + 1``-th largest).  For odd ``r`` this is the median; for
    even ``r`` the median index ``r // 2`` would be one process short of a
    majority.
    """
    return promises.stable_timestamp(processes)


def is_stable(promises: PromiseSet, processes: Sequence[int], timestamp: int) -> bool:
    """Whether ``timestamp`` is stable given the known promises."""
    return stable_timestamp(promises, processes) >= timestamp


def promise_table(
    promise_sets: Iterable[Iterable[Promise]], processes: Sequence[int]
) -> List[Tuple[str, int]]:
    """Reproduce the right-hand side of Figure 2.

    Given an iterable of promise sets (e.g. the X, Y, Z sets of Figure 2),
    return, for every non-empty combination of them, the highest stable
    timestamp when exactly that combination is known.  Combinations are
    labelled by the indices of the included sets (e.g. ``"0+2"``).
    """
    sets = [frozenset(promise_set) for promise_set in promise_sets]
    results: List[Tuple[str, int]] = []
    for mask in range(1, 2 ** len(sets)):
        included = [index for index in range(len(sets)) if mask & (1 << index)]
        known = PromiseSet()
        for index in included:
            known.add_all(sets[index])
        label = "+".join(str(index) for index in included)
        results.append((label, stable_timestamp(known, processes)))
    return results


def execution_order(
    committed: Dict, stable_up_to: int
) -> List:
    """Order committed commands for execution.

    ``committed`` maps a command identifier to its committed timestamp.
    Returns the identifiers whose timestamp is no higher than
    ``stable_up_to``, ordered by ``(timestamp, identifier)`` — the execution
    order of Algorithm 2, line 52.
    """
    ready = [
        (timestamp, dot)
        for dot, timestamp in committed.items()
        if timestamp <= stable_up_to
    ]
    ready.sort()
    return [dot for _, dot in ready]
