"""Exact wire-frame size arithmetic for the message ``size_bytes()`` methods.

Epoch 2 switched the default byte accounting from modeled estimates to the
*measured* codec frame sizes (ROADMAP, ``docs/epoch2_rebaseline.md``).
Actually encoding every transmitted message would cost microseconds per
message (see ``codec_ns`` in ``BENCH_fig6.json``) on a hot path that the
fig6 wall-clock gate protects, so the message classes instead compute the
frame size arithmetically with the helpers below, which mirror the varint
layout of :mod:`repro.wire.codecs` byte for byte.  The equality
``message.size_bytes() == message.encoded_size()`` is enforced for every
registered kind by the wire drift report
(``benchmarks/test_bench_codec.py`` / ``results/wire_drift.txt``).

This module must not import :mod:`repro.wire`: the wire package imports the
message modules to register codecs, and the message modules import this one.
The primitive size functions are therefore small local mirrors of
``repro/wire/primitives.py`` (LEB128 varints, zigzag signed varints,
length-prefixed UTF-8 strings).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Tuple


def uvarint_size(value: int) -> int:
    """Bytes occupied by an unsigned LEB128 varint (7 payload bits/byte)."""
    # One byte covers the overwhelmingly common case (process ids, counts,
    # small sequences); larger values need ceil(bit_length / 7) bytes.
    if value < 0x80:
        return 1
    return (value.bit_length() + 6) // 7


def svarint_size(value: int) -> int:
    """Bytes occupied by a zigzag-encoded signed varint."""
    return uvarint_size((value << 1) ^ (value >> 63))


def string_size(text: str) -> int:
    """Length-prefixed UTF-8 string: ``uvarint(len) + bytes``."""
    encoded = len(text.encode("utf-8"))
    return uvarint_size(encoded) + encoded


def optional_string_size(text: Optional[str]) -> int:
    """One presence flag byte plus the string when present."""
    if text is None:
        return 1
    return 1 + string_size(text)


def frame_size(body: int) -> int:
    """Full frame bytes for a message body: the payload is one kind byte
    plus the body, length-prefixed by a uvarint."""
    payload = 1 + body
    return uvarint_size(payload) + payload


def dot_size(dot) -> int:
    """``uvarint(source) + uvarint(sequence)``."""
    source = dot.source
    sequence = dot.sequence
    return (1 if source < 0x80 else (source.bit_length() + 6) // 7) + (
        1 if sequence < 0x80 else (sequence.bit_length() + 6) // 7
    )


def dot_set_size(dots: Iterable) -> int:
    """Count-prefixed set of dots."""
    size = 0
    count = 0
    for dot in dots:
        size += uvarint_size(dot.source) + uvarint_size(dot.sequence)
        count += 1
    return uvarint_size(count) + size


def command_size(command) -> int:
    """Exact encoded size of a :class:`repro.core.commands.Command`."""
    size = dot_size(command.dot) + uvarint_size(len(command.ops))
    for op in command.ops:
        # key string + 1 kind byte + optional value string.
        size += string_size(op.key) + 1 + optional_string_size(op.value)
    size += uvarint_size(command.payload_size) + command.payload_size
    # Client presence flag + optional client id.
    size += 1
    if command.client_id is not None:
        size += svarint_size(command.client_id)
    return size


def quorums_size(quorums: Mapping[int, Tuple[int, ...]]) -> int:
    """Count-prefixed per-partition member lists."""
    size = uvarint_size(len(quorums))
    for partition, members in quorums.items():
        size += uvarint_size(partition) + uvarint_size(len(members))
        for member in members:
            size += uvarint_size(member)
    return size


def promise_set_size(promises) -> int:
    """Count-prefixed ``(process, timestamp)`` promise pairs."""
    size = uvarint_size(len(promises))
    for promise in promises:
        process = promise.process
        timestamp = promise.timestamp
        size += (1 if process < 0x80 else (process.bit_length() + 6) // 7) + (
            1 if timestamp < 0x80 else (timestamp.bit_length() + 6) // 7
        )
    return size


def range_wire_size(wire: Mapping[int, Tuple[Tuple[int, int], ...]]) -> int:
    """Count-prefixed per-process ``(lo, hi - lo)`` span lists."""
    size = uvarint_size(len(wire))
    for process, spans in wire.items():
        size += uvarint_size(process) + uvarint_size(len(spans))
        for lo, hi in spans:
            size += uvarint_size(lo) + uvarint_size(hi - lo)
    return size


def attached_map_size(attached: Mapping) -> int:
    """Count-prefixed map of dot -> promise set."""
    size = uvarint_size(len(attached))
    for dot, promises in attached.items():
        size += dot_size(dot) + promise_set_size(promises)
    return size


def result_size(result: Optional[Mapping[str, Optional[str]]]) -> int:
    """Presence flag plus the count-prefixed key/value pairs when present."""
    if result is None:
        return 1
    size = 1 + uvarint_size(len(result))
    for key, value in result.items():
        size += string_size(key) + optional_string_size(value)
    return size


def clock_map_size(clock: Mapping[int, int]) -> int:
    """Count-prefixed ``(source, frontier)`` executed-clock entries."""
    size = uvarint_size(len(clock))
    for source, frontier in clock.items():
        size += uvarint_size(source) + uvarint_size(frontier)
    return size
