"""Experiment drivers: one module per table/figure of the evaluation (§6).

Each driver returns plain data structures (rows/series) that the benchmark
harness prints, so running ``pytest benchmarks/ --benchmark-only`` regenerates
the content of every table and figure.  See DESIGN.md §4 for the experiment
index and EXPERIMENTS.md for measured-vs-paper numbers.

Figure/table drivers are imported lazily (``repro.experiments.fig5_fairness``
etc.) to keep importing the throughput model light.
"""

from repro.experiments.throughput_model import (
    CostModel,
    ProtocolCosts,
    max_throughput,
    protocol_costs,
    utilization_heatmap,
)

__all__ = [
    "CostModel",
    "ProtocolCosts",
    "max_throughput",
    "protocol_costs",
    "utilization_heatmap",
]
