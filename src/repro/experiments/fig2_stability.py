"""Figures 2 and 3 — stability-detection examples.

Figure 2 shows, for three promise sets X, Y and Z over r = 3 processes,
the highest stable timestamp for every combination of the sets.  Figure 3
contrasts Tempo's timestamp stability with the behaviour of explicit-
dependency protocols (EPaxos-style dependency graphs and Caesar-style
blocking) on a four-command example.

Both figures are reproduced as executable scenarios returning the same
values as the paper, and are also asserted by unit tests.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.identifiers import Dot
from repro.core.promises import Promise, PromiseSet
from repro.core.stability import promise_table, stable_timestamp
from repro.protocols.depgraph import DependencyGraph

#: Processes A, B, C of Figure 2 mapped to identifiers 0, 1, 2.
FIGURE2_PROCESSES: Tuple[int, ...] = (0, 1, 2)

#: The three promise sets of Figure 2.
FIGURE2_SETS: Dict[str, Tuple[Promise, ...]] = {
    "X": (Promise(0, 1), Promise(2, 3)),
    "Y": (Promise(1, 1), Promise(1, 2), Promise(1, 3)),
    "Z": (Promise(0, 2), Promise(2, 1), Promise(2, 2)),
}

#: Expected highest stable timestamp per combination (right side of Fig. 2).
FIGURE2_EXPECTED: Dict[str, int] = {
    "X": 0,
    "Y": 0,
    "Z": 0,
    "X+Y": 1,
    "X+Z": 2,
    "Y+Z": 2,
    "X+Y+Z": 3,
}


def figure2_rows() -> List[Dict[str, object]]:
    """Stable timestamp for every combination of the X/Y/Z promise sets."""
    labels = list(FIGURE2_SETS)
    combos = promise_table(
        [FIGURE2_SETS[label] for label in labels], FIGURE2_PROCESSES
    )
    rows: List[Dict[str, object]] = []
    for mask_label, stable in combos:
        included = [labels[int(index)] for index in mask_label.split("+")]
        name = "+".join(included)
        rows.append(
            {
                "sets": name,
                "stable_timestamp": stable,
                "expected": FIGURE2_EXPECTED.get(name, None),
            }
        )
    return rows


# -- Figure 3 -----------------------------------------------------------------

#: Commands of the Figure 3 example: w and x are submitted by A (process 0),
#: y by B (process 1), z by C (process 2).
W, X, Y, Z = Dot(0, 1), Dot(0, 2), Dot(1, 1), Dot(2, 1)


def figure3_tempo() -> Dict[str, object]:
    """Tempo's view of the Figure 3 example.

    The command arrival order generates the attached promises listed in the
    paper; commands w, y, z commit with timestamps 2, 2, 3 while x is still
    uncommitted.  Timestamp 2 is stable, so w and y can be executed even
    though x (timestamp > 2) is not yet committed.
    """
    promises = PromiseSet()
    # Attached promises of the committed commands w, y, z (Figure 3, left).
    promises.add_all(
        [
            Promise(0, 1), Promise(1, 2),              # w -> ts 2
            Promise(1, 1), Promise(2, 2),              # y -> ts 2
            Promise(2, 1), Promise(0, 3),              # z -> ts 3
        ]
    )
    stable = stable_timestamp(promises, FIGURE2_PROCESSES)
    committed = {W: 2, Y: 2, Z: 3}
    executable = sorted(
        (dot for dot, timestamp in committed.items() if timestamp <= stable),
        key=lambda dot: (committed[dot], dot),
    )
    return {
        "stable_timestamp": stable,
        "executable": executable,
        "blocked_on_x": False,
    }


def figure3_epaxos() -> Dict[str, object]:
    """EPaxos' view of the Figure 3 example.

    The committed dependencies form the cycle w -> y -> z -> {w, x}; since x
    is not committed, the strongly connected component cannot be executed:
    no command makes progress.
    """
    graph = DependencyGraph()
    graph.commit(W, {Y})
    graph.commit(Y, {Z})
    graph.commit(Z, {W, X})
    executable = graph.execute_ready()
    return {
        "executable": executable,
        "blocked_on_x": not executable,
        "largest_component": graph.largest_pending_component(),
    }


def figure3_caesar() -> Dict[str, object]:
    """Caesar's view of the Figure 3 example.

    With the proposal order of §3.3 (A proposes w:1 and x:4, B proposes y:2,
    C proposes z:3 and the commands arrive as in Figure 3), every reply is
    blocked by the wait condition on a not-yet-committed conflicting command
    with a higher timestamp, so nothing commits.
    """
    # Chain of blocking: w waits for y at B, y waits for z at C, z waits for
    # x at A; x has the highest timestamp but has only been seen by A.
    blocked_chain = [("w", "y"), ("y", "z"), ("z", "x")]
    return {
        "blocked_chain": blocked_chain,
        "committed": [],
        "blocked_on_x": True,
    }


def run() -> Dict[str, object]:
    """Regenerate Figures 2 and 3 as one report."""
    return {
        "figure2": figure2_rows(),
        "figure3_tempo": figure3_tempo(),
        "figure3_epaxos": figure3_epaxos(),
        "figure3_caesar": figure3_caesar(),
    }
