"""Figure 5 — per-site latency (fairness) under low conflicts.

Paper setup: 5 EC2 sites, 512 closed-loop clients per site, 2 % conflict
rate; protocols Tempo (f=1,2), Atlas (f=1,2), FPaxos (f=1,2) and Caesar
(f=2 by construction).  The headline results: FPaxos is up to 3.3x slower at
non-leader sites than at the leader site, while the leaderless protocols
serve all sites roughly uniformly.

This reproduction runs the same deployment on the discrete-event simulator.
Client counts are scaled down (default 16/site) because the simulator is
pure Python; closed-loop latency is load-insensitive until saturation, so
the per-site means are representative.  Scaling notes and deviations are
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.cluster.config import ExperimentConfig
from repro.cluster.runner import run_experiment

#: Protocol/fault combinations shown in Figure 5.
FIGURE5_PROTOCOLS: Tuple[Tuple[str, int], ...] = (
    ("tempo", 1),
    ("tempo", 2),
    ("atlas", 1),
    ("atlas", 2),
    ("fpaxos", 1),
    ("fpaxos", 2),
    ("caesar", 2),
)


@dataclass
class Figure5Options:
    """Knobs for the Figure 5 reproduction."""

    clients_per_site: int = 16
    conflict_rate: float = 0.02
    duration_ms: float = 3_000.0
    warmup_ms: float = 500.0
    num_sites: int = 5
    seed: int = 1
    protocols: Sequence[Tuple[str, int]] = field(default=FIGURE5_PROTOCOLS)


def run_one(protocol: str, faults: int, options: Figure5Options) -> Dict[str, object]:
    """Run one protocol/fault configuration and return its Figure 5 row."""
    config = ExperimentConfig(
        protocol=protocol,
        num_sites=options.num_sites,
        faults=faults,
        clients_per_site=options.clients_per_site,
        conflict_rate=options.conflict_rate,
        duration_ms=options.duration_ms,
        warmup_ms=options.warmup_ms,
        seed=options.seed,
    )
    result = run_experiment(config)
    site_means = result.site_mean_latency()
    row: Dict[str, object] = {
        "protocol": f"{protocol} f={faults}",
    }
    for site, mean in site_means.items():
        row[site] = round(mean, 1)
    row["average"] = round(result.mean_latency(), 1)
    row["completed"] = result.completed
    return row


def run(options: Figure5Options = Figure5Options()) -> List[Dict[str, object]]:
    """Regenerate Figure 5: one row per protocol, one column per site."""
    rows = []
    for protocol, faults in options.protocols:
        rows.append(run_one(protocol, faults, options))
    return rows


def fairness_ratio(row: Dict[str, object], sites: Sequence[str]) -> float:
    """Max/min per-site latency ratio — the paper's unfairness measure
    (FPaxos reaches up to 3.3x, leaderless protocols stay near 1x)."""
    values = [float(row[site]) for site in sites if site in row]
    if not values or min(values) == 0:
        return 0.0
    return max(values) / min(values)
