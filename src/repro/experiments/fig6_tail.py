"""Figure 6 — latency percentiles (tail latency), 95th to 99.99th.

Paper setup: 5 sites, 256 and 512 clients per site, 2 % conflicts.  The key
result: dependency-based protocols (Atlas, EPaxos, Caesar) have tails that
reach seconds and degrade sharply with load, while Tempo's tail stays within
a few hundred milliseconds (1.4-14x better).

Reproduction notes: the simulator is pure Python, so client counts are
scaled down.  Since the dependency-chain pathology of Atlas/EPaxos/Caesar is
driven by the number of *concurrently conflicting* commands (≈ clients x
conflict rate), the scaled runs preserve that product by scaling the
conflict rate up as the client count is scaled down (documented in
EXPERIMENTS.md).  The qualitative claim — Tempo's tail is flat, the others'
tails explode with contention — is what the benchmark asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.cluster.config import ExperimentConfig
from repro.cluster.runner import run_experiment

#: Percentiles reported on the x-axis of Figure 6.
FIGURE6_PERCENTILES: Tuple[float, ...] = (95.0, 97.0, 99.0, 99.9, 99.99)

#: Protocols shown in Figure 6.
FIGURE6_PROTOCOLS: Tuple[Tuple[str, int], ...] = (
    ("tempo", 1),
    ("tempo", 2),
    ("atlas", 1),
    ("atlas", 2),
    ("epaxos", 1),
    ("caesar", 2),
)


@dataclass
class Figure6Options:
    """Knobs for the Figure 6 reproduction.

    ``client_loads`` holds the two load levels of the figure (top: 256
    clients/site, bottom: 512 clients/site), scaled down for simulation; the
    conflict rate is scaled up to preserve clients x conflict_rate.
    """

    client_loads: Sequence[int] = (8, 16)
    conflict_rates: Sequence[float] = (0.10, 0.10)
    duration_ms: float = 4_000.0
    warmup_ms: float = 500.0
    num_sites: int = 5
    seed: int = 1
    protocols: Sequence[Tuple[str, int]] = field(default=FIGURE6_PROTOCOLS)


def run_one(
    protocol: str,
    faults: int,
    clients_per_site: int,
    conflict_rate: float,
    options: Figure6Options,
) -> Dict[str, object]:
    """One curve of Figure 6: tail percentiles for one protocol at one load."""
    config = ExperimentConfig(
        protocol=protocol,
        num_sites=options.num_sites,
        faults=faults,
        clients_per_site=clients_per_site,
        conflict_rate=conflict_rate,
        duration_ms=options.duration_ms,
        warmup_ms=options.warmup_ms,
        seed=options.seed,
    )
    result = run_experiment(config)
    row: Dict[str, object] = {
        "protocol": f"{protocol} f={faults}",
        "clients_per_site": clients_per_site,
    }
    for percentile in FIGURE6_PERCENTILES:
        row[f"p{percentile}"] = round(result.percentile(percentile), 1)
    row["mean"] = round(result.mean_latency(), 1)
    row["completed"] = result.completed
    return row


def run(options: Figure6Options = Figure6Options()) -> List[Dict[str, object]]:
    """Regenerate Figure 6: tail percentiles per protocol at two loads."""
    rows: List[Dict[str, object]] = []
    for clients, conflict_rate in zip(options.client_loads, options.conflict_rates):
        for protocol, faults in options.protocols:
            rows.append(run_one(protocol, faults, clients, conflict_rate, options))
    return rows


@dataclass
class MultiShardOptions:
    """Knobs for the multi-shard (partial replication) fig5/fig6 variant.

    Commands access two keys so a fraction of them genuinely spans both
    shards; Janus* is the dependency-based baseline because the other
    baselines assume full replication, while Tempo is genuine (ordering a
    command involves only the shards it accesses).
    """

    num_shards: int = 2
    client_loads: Sequence[int] = (8,)
    conflict_rates: Sequence[float] = (0.15,)
    keys_per_command: int = 2
    duration_ms: float = 2_500.0
    warmup_ms: float = 500.0
    num_sites: int = 3
    seed: int = 1
    protocols: Sequence[Tuple[str, int]] = (("tempo", 1), ("janus", 1))


def run_multishard(options: MultiShardOptions = MultiShardOptions()) -> List[Dict[str, object]]:
    """Tail percentiles on a sharded deployment (fig5/fig6 variant)."""
    rows: List[Dict[str, object]] = []
    for clients, conflict_rate in zip(options.client_loads, options.conflict_rates):
        for protocol, faults in options.protocols:
            config = ExperimentConfig(
                protocol=protocol,
                num_sites=options.num_sites,
                faults=faults,
                num_shards=options.num_shards,
                clients_per_site=clients,
                conflict_rate=conflict_rate,
                keys_per_command=options.keys_per_command,
                duration_ms=options.duration_ms,
                warmup_ms=options.warmup_ms,
                seed=options.seed,
            )
            result = run_experiment(config)
            row: Dict[str, object] = {
                "protocol": f"{protocol} f={faults}",
                "shards": options.num_shards,
                "clients_per_site": clients,
            }
            for percentile in (95.0, 99.0, 99.9):
                row[f"p{percentile}"] = round(result.percentile(percentile), 1)
            row["mean"] = round(result.mean_latency(), 1)
            row["completed"] = result.completed
            rows.append(row)
    return rows


def tail_amplification(rows: List[Dict[str, object]]) -> Dict[str, float]:
    """p99.9 of each protocol divided by Tempo f=1's p99.9 at the same load —
    the paper's 1.4-14x improvement claim, per protocol."""
    amplification: Dict[str, float] = {}
    by_load: Dict[int, Dict[str, float]] = {}
    for row in rows:
        by_load.setdefault(int(row["clients_per_site"]), {})[str(row["protocol"])] = float(
            row["p99.9"]
        )
    for load, per_protocol in by_load.items():
        baseline = per_protocol.get("tempo f=1")
        if not baseline:
            continue
        for protocol, value in per_protocol.items():
            if protocol == "tempo f=1":
                continue
            amplification[f"{protocol}@{load}"] = value / baseline
    return amplification
