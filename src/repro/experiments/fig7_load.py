"""Figure 7 — throughput and latency as load and contention increase.

Paper setup: 5 sites (cluster testbed), clients per site growing from 32 to
20 480, 4 KB payloads, conflict rates 2 % (top) and 10 % (bottom), plus a
hardware-utilization heatmap at 2 %.  Headline numbers: FPaxos saturates at
53K/45K ops/s (f=1/2), Atlas at 129K/127K (2 %) dropping to 83K/67K (10 %),
Caesar* at 104K/32K, and Tempo reaches 230K ops/s regardless of the conflict
rate or ``f`` (1.8-3.4x Atlas, 4.3-5.1x FPaxos).

Reproduction: the saturation ceilings come from the calibrated resource
model (:mod:`repro.experiments.throughput_model`); the latency-vs-throughput
curves combine those ceilings with the analytic wide-area latency model and
closed-loop queueing (:mod:`repro.experiments.latency_model`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.config import ProtocolConfig
from repro.experiments.latency_model import average_latency, load_curve, per_site_latency
from repro.experiments.throughput_model import max_throughput, utilization_heatmap

#: Client counts per site swept in Figure 7.
FIGURE7_CLIENT_SWEEP: Tuple[int, ...] = (
    32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 20480,
)

#: Protocol/fault combinations of Figure 7.
FIGURE7_PROTOCOLS: Tuple[Tuple[str, int], ...] = (
    ("tempo", 1),
    ("tempo", 2),
    ("atlas", 1),
    ("atlas", 2),
    ("fpaxos", 1),
    ("fpaxos", 2),
    ("caesar", 2),
)


@dataclass
class Figure7Options:
    """Knobs for the Figure 7 reproduction."""

    num_sites: int = 5
    payload: float = 4096.0
    conflict_rates: Sequence[float] = (0.02, 0.10)
    clients: Sequence[int] = field(default=FIGURE7_CLIENT_SWEEP)
    protocols: Sequence[Tuple[str, int]] = field(default=FIGURE7_PROTOCOLS)


def saturation_table(options: Figure7Options = Figure7Options()) -> List[Dict[str, object]]:
    """Maximum throughput per protocol and conflict rate (the curve knees)."""
    rows: List[Dict[str, object]] = []
    for conflict_rate in options.conflict_rates:
        for protocol, faults in options.protocols:
            config = ProtocolConfig(num_processes=options.num_sites, faults=faults)
            result = max_throughput(
                protocol,
                config=config,
                payload=options.payload,
                conflict_rate=conflict_rate,
            )
            rows.append(
                {
                    "protocol": f"{protocol} f={faults}",
                    "conflict_rate": conflict_rate,
                    "max_kops": round(result["max_ops_per_second"] / 1000.0, 1),
                    "bottleneck": result["bottleneck"],
                }
            )
    return rows


def latency_throughput_curves(
    options: Figure7Options = Figure7Options(),
) -> List[Dict[str, object]]:
    """The latency-vs-throughput points of Figure 7."""
    rows: List[Dict[str, object]] = []
    for conflict_rate in options.conflict_rates:
        for protocol, faults in options.protocols:
            config = ProtocolConfig(num_processes=options.num_sites, faults=faults)
            ceiling = max_throughput(
                protocol,
                config=config,
                payload=options.payload,
                conflict_rate=conflict_rate,
            )["max_ops_per_second"]
            base_latency = average_latency(
                per_site_latency(protocol, options.num_sites, faults)
            )
            for point in load_curve(
                list(options.clients), options.num_sites, base_latency, ceiling
            ):
                rows.append(
                    {
                        "protocol": f"{protocol} f={faults}",
                        "conflict_rate": conflict_rate,
                        "clients_per_site": int(point["clients_per_site"]),
                        "throughput_kops": round(point["throughput_ops"] / 1000.0, 1),
                        "latency_ms": round(point["latency_ms"], 1),
                    }
                )
    return rows


def heatmap(options: Figure7Options = Figure7Options()) -> List[Dict[str, object]]:
    """Hardware utilization at saturation for the 2 % conflict scenario
    (bottom heatmap of Figure 7)."""
    protocols = [name for name, _ in options.protocols]
    deduped: List[str] = []
    for name in protocols:
        if name not in deduped:
            deduped.append(name)
    config = ProtocolConfig(num_processes=options.num_sites, faults=1)
    return utilization_heatmap(
        deduped,
        config=config,
        payload=options.payload,
        conflict_rate=options.conflict_rates[0],
    )


def speedups(rows: List[Dict[str, object]]) -> Dict[str, float]:
    """Tempo's speedup over each other protocol at the same conflict rate."""
    result: Dict[str, float] = {}
    by_rate: Dict[float, Dict[str, float]] = {}
    for row in rows:
        by_rate.setdefault(float(row["conflict_rate"]), {})[str(row["protocol"])] = float(
            row["max_kops"]
        )
    for rate, per_protocol in by_rate.items():
        tempo = max(
            value for name, value in per_protocol.items() if name.startswith("tempo")
        )
        for name, value in per_protocol.items():
            if name.startswith("tempo") or value == 0:
                continue
            result[f"tempo/{name}@{rate}"] = tempo / value
    return result
