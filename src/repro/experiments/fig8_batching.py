"""Figure 8 — maximum throughput with batching disabled/enabled.

Paper setup: Tempo f=1 and FPaxos f=1, payloads of 256 B, 1 KB and 4 KB,
batches flushed after 5 ms or 105 commands.  Headline results: batching
boosts FPaxos by ~4x at 256 B (its leader thread is the bottleneck there)
and does not help at larger payloads (network-bound); Tempo sees only a
moderate gain (1.6x at 256 B, 1.3x at 1 KB, none at 4 KB) because its
per-command work cannot be amortised, yet leaderless Tempo still matches or
outperforms FPaxos.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import ProtocolConfig
from repro.experiments.throughput_model import (
    CostModel,
    max_throughput,
    measured_coalescing,
)
from repro.workloads.batching import BatchingModel

#: Payload sizes of Figure 8 (bytes).
FIGURE8_PAYLOADS: Tuple[int, ...] = (256, 1024, 4096)

#: Protocols of Figure 8.
FIGURE8_PROTOCOLS: Tuple[Tuple[str, int], ...] = (("tempo", 1), ("fpaxos", 1))


@dataclass
class Figure8Options:
    """Knobs for the Figure 8 reproduction."""

    num_sites: int = 5
    conflict_rate: float = 0.02
    payloads: Sequence[int] = field(default=FIGURE8_PAYLOADS)
    protocols: Sequence[Tuple[str, int]] = field(default=FIGURE8_PROTOCOLS)
    batch_size: float = 105.0


def run(options: Figure8Options = Figure8Options()) -> List[Dict[str, object]]:
    """Regenerate Figure 8: max throughput per payload, batching OFF/ON."""
    rows: List[Dict[str, object]] = []
    for payload in options.payloads:
        for protocol, faults in options.protocols:
            config = ProtocolConfig(num_processes=options.num_sites, faults=faults)
            off = max_throughput(
                protocol,
                config=config,
                payload=float(payload),
                conflict_rate=options.conflict_rate,
            )["max_ops_per_second"]
            on = max_throughput(
                protocol,
                config=config,
                payload=float(payload),
                conflict_rate=options.conflict_rate,
                batching=BatchingModel(True, expected_batch_size=options.batch_size),
            )["max_ops_per_second"]
            rows.append(
                {
                    "protocol": f"{protocol} f={faults}",
                    "payload_bytes": payload,
                    "batching_off_kops": round(off / 1000.0, 1),
                    "batching_on_kops": round(on / 1000.0, 1),
                    "gain": round(on / off, 2) if off else 0.0,
                }
            )
    return rows


def batching_gains(rows: List[Dict[str, object]]) -> Dict[str, float]:
    """Batching gain per protocol/payload, for assertions and the report."""
    return {
        f"{row['protocol']}@{row['payload_bytes']}B": float(row["gain"]) for row in rows
    }


def run_mbatch(
    options: Figure8Options = Figure8Options(),
    coalescing: float = 4.0,
) -> List[Dict[str, object]]:
    """Figure 8 companion: the transport-level ``MBatch`` framing saving.

    The simulator coalesces every same-destination message a process emits
    in one event-handling step into a single delivery (``docs/batching.md``);
    ``coalescing`` is the resulting average number of messages per delivery
    (``messages_sent / deliveries`` in the simulator stats).  The analytic
    model amortises the per-message NIC framing accordingly; the historical
    figures (coalescing = 1) are kept as the baseline columns.
    """
    rows: List[Dict[str, object]] = []
    batched = CostModel(mbatch_coalescing=coalescing)
    for payload in options.payloads:
        for protocol, faults in options.protocols:
            config = ProtocolConfig(num_processes=options.num_sites, faults=faults)
            unbatched_kops = max_throughput(
                protocol,
                config=config,
                payload=float(payload),
                conflict_rate=options.conflict_rate,
            )["max_ops_per_second"]
            mbatch_kops = max_throughput(
                protocol,
                config=config,
                payload=float(payload),
                conflict_rate=options.conflict_rate,
                model=batched,
            )["max_ops_per_second"]
            rows.append(
                {
                    "protocol": f"{protocol} f={faults}",
                    "payload_bytes": payload,
                    "per_message_framing_kops": round(unbatched_kops / 1000.0, 1),
                    "mbatch_framing_kops": round(mbatch_kops / 1000.0, 1),
                    "gain": round(mbatch_kops / unbatched_kops, 2)
                    if unbatched_kops
                    else 0.0,
                }
            )
    return rows


def run_mbatch_measured(
    options: Figure8Options = Figure8Options(),
    experiment_config: Optional[object] = None,
) -> List[Dict[str, object]]:
    """Figure 8 companion driven by a *measured* coalescing factor.

    Instead of assuming an MBatch coalescing factor, run one simulator
    experiment, read the measured ``messages_delivered / deliveries`` off
    its stats (ROADMAP: close the loop between the fig5/fig6 runs and the
    fig7/fig8 model) and feed it into :func:`run_mbatch`.  The default
    scenario is a short fig5-style Tempo run.
    """
    from repro.cluster.config import ExperimentConfig
    from repro.cluster.runner import run_experiment

    if experiment_config is None:
        experiment_config = ExperimentConfig(
            protocol="tempo",
            num_sites=options.num_sites,
            faults=1,
            clients_per_site=8,
            conflict_rate=options.conflict_rate,
            duration_ms=1_500.0,
            warmup_ms=250.0,
            seed=1,
        )
    stats = run_experiment(experiment_config).stats
    coalescing = measured_coalescing(stats)
    rows = run_mbatch(options, coalescing=coalescing)
    for row in rows:
        row["measured_coalescing"] = round(coalescing, 2)
    return rows
