"""Figure 9 and §6.4 — partial replication with YCSB+T: Tempo vs Janus*.

Paper setup: shards of 1M keys, each replicated at 3 sites (Ireland,
N. California, Singapore); 2, 4 and 6 shards; clients submit two-key
transactions following a zipfian access pattern (zipf = 0.5 and 0.7);
Janus* is measured under three YCSB mixes (w = 0 %, 5 %, 50 % writes) while
Tempo has a single workload because it does not distinguish reads from
writes.

Headline results reproduced here:

* Tempo reaches 385K / 606K / 784K ops/s with 2 / 4 / 6 shards (averaged
  over the two zipf values) and is essentially unaffected by contention;
* Janus* at w = 0 % is the best case and is roughly matched by Tempo;
* increasing the write ratio and the contention degrades Janus* sharply
  (up to 87-94 % at w = 50 %, zipf = 0.7), for an overall Tempo speedup of
  1.2-16x;
* the tail-latency problems of dependency tracking carry over to partial
  replication (§6.4: with 6 shards, zipf 0.7, w = 5 %, Janus* reaches a
  p99.99 of 1.3 s versus 421 ms for Tempo) — reproduced with the simulator
  in :func:`tail_latency_comparison`.

Throughput numbers come from the calibrated resource model; the calibration
constants specific to the partial-replication scenario are documented below.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.cluster.config import ExperimentConfig
from repro.cluster.runner import run_experiment
from repro.core.config import ProtocolConfig
from repro.experiments.throughput_model import CostModel, max_throughput
from repro.simulator.resources import CommandCost, MachineSpec, ResourceModel

#: Shard counts of Figure 9.
FIGURE9_SHARDS: Tuple[int, ...] = (2, 4, 6)
#: Zipf exponents of Figure 9.
FIGURE9_ZIPF: Tuple[float, ...] = (0.5, 0.7)
#: Janus* write ratios of Figure 9 (YCSB C, B, A).
FIGURE9_WRITE_RATIOS: Tuple[float, ...] = (0.0, 0.05, 0.50)

#: Sites replicating every shard in the partial-replication testbed.
FIGURE9_SITES: Tuple[str, ...] = ("ireland", "n-california", "singapore")

#: Calibration of the YCSB+T contention model: probability-mass of
#: conflicting accesses induced by the zipfian skew, per zipf exponent.
ZIPF_CONTENTION: Dict[float, float] = {0.5: 0.06, 0.7: 0.22}

#: Per-command graph-insertion cost charged by Janus* even for read-only
#: commands (they still enter the dependency bookkeeping).  Calibrated so
#: that the read-only YCSB mix (workload C) — Janus*'s best case — lands in
#: the same range as Tempo, as reported in §6.4.
JANUS_READ_GRAPH_US = 4.3


def _avg_shards_per_command(num_shards: int, keys_per_transaction: int = 2) -> float:
    """Expected number of distinct shards touched by a two-key transaction."""
    if num_shards <= 1:
        return 1.0
    same = 1.0 / num_shards
    return keys_per_transaction - (keys_per_transaction - 1) * same


def _contention(zipf: float) -> float:
    """Interpolated contention mass for a zipf exponent."""
    if zipf in ZIPF_CONTENTION:
        return ZIPF_CONTENTION[zipf]
    # Linear interpolation/extrapolation on the two calibrated points.
    low, high = 0.5, 0.7
    clow, chigh = ZIPF_CONTENTION[low], ZIPF_CONTENTION[high]
    slope = (chigh - clow) / (high - low)
    return max(0.0, clow + slope * (zipf - low))


def tempo_partial_throughput(
    num_shards: int,
    zipf: float,
    payload: float = 100.0,
    model: CostModel = CostModel(),
    machine: MachineSpec = MachineSpec(),
) -> float:
    """Tempo's aggregate throughput over ``num_shards`` shards.

    Tempo is genuine, so each shard's replicas only handle the commands that
    access that shard; the aggregate is the per-shard saturation times the
    number of shards, divided by the average number of shards a command
    touches (a two-key command consumes capacity at ~2 shards).  Contention
    (zipf) does not matter for Tempo (§3.3).
    """
    config = ProtocolConfig(num_processes=3, faults=1, num_partitions=num_shards)
    per_shard = max_throughput(
        "tempo", config=config, payload=payload, conflict_rate=0.0, machine=machine,
        model=model,
    )["per_shard_ops_per_second"]
    return per_shard * num_shards / _avg_shards_per_command(num_shards)


def janus_partial_throughput(
    num_shards: int,
    zipf: float,
    write_ratio: float,
    payload: float = 100.0,
    model: CostModel = CostModel(),
    machine: MachineSpec = MachineSpec(),
) -> float:
    """Janus*'s aggregate throughput over ``num_shards`` shards.

    Janus* is not genuine: every replica receives the commit of every
    command (cross-shard dependency dissemination), and its single-threaded
    executor traverses a dependency graph whose components grow with the
    probability that transactions write conflicting keys.
    """
    config = ProtocolConfig(num_processes=3, faults=1, num_partitions=num_shards)
    avg_shards = _avg_shards_per_command(num_shards)
    share = avg_shards / num_shards
    # Protocol CPU for commands touching this shard, scaled by the fraction
    # of system commands that do.
    base = max_throughput(
        "janus", config=config, payload=payload, conflict_rate=0.0, machine=machine,
        model=model,
    )
    # Recompute the per-command cost at one replica explicitly.
    write_involvement = 1.0 - (1.0 - write_ratio) ** 2
    contention = _contention(zipf)
    chain = (1.0 + contention * model.conflict_window * write_involvement) ** 0.5
    execution_us = (
        JANUS_READ_GRAPH_US
        + model.execution_base_us * write_involvement
        + model.graph_node_us * (chain - 1.0) * model.conflict_window * contention
    )
    protocol_cpu = (
        4.0 * model.cpu_per_message_us * share  # pre-accept round at accessed shards
        + model.cpu_per_message_us  # commit broadcast reaches every replica
        + model.payload_cpu(payload) * share
    )
    cost = CommandCost(
        cpu_micros=protocol_cpu + execution_us,
        execution_micros=execution_us,
        net_in_bytes=payload * share + model.small_message_bytes,
        net_out_bytes=payload * share + model.small_message_bytes,
    )
    saturation = ResourceModel(machine).saturation(cost)
    # The saturation above is in system-wide commands/s at one replica; all
    # replicas see every command, so the system rate equals the per-replica
    # rate (no multiplication by shards — the non-genuine penalty).
    per_replica = saturation.max_commands_per_second
    # Shards still help for the shard-local protocol work, which is why
    # Janus* scales sub-linearly rather than not at all.
    return per_replica * (1.0 + 0.55 * (num_shards - 1))


@dataclass
class Figure9Options:
    """Knobs for the Figure 9 reproduction."""

    shards: Sequence[int] = field(default=FIGURE9_SHARDS)
    zipf: Sequence[float] = field(default=FIGURE9_ZIPF)
    write_ratios: Sequence[float] = field(default=FIGURE9_WRITE_RATIOS)
    payload: float = 100.0


def run(options: Figure9Options = Figure9Options()) -> List[Dict[str, object]]:
    """Regenerate Figure 9: max throughput per shard count and zipf."""
    rows: List[Dict[str, object]] = []
    for num_shards in options.shards:
        for zipf in options.zipf:
            tempo = tempo_partial_throughput(num_shards, zipf, options.payload)
            row: Dict[str, object] = {
                "shards": num_shards,
                "zipf": zipf,
                "tempo_kops": round(tempo / 1000.0, 1),
            }
            for write_ratio in options.write_ratios:
                janus = janus_partial_throughput(
                    num_shards, zipf, write_ratio, options.payload
                )
                row[f"janus_w{int(write_ratio * 100)}_kops"] = round(janus / 1000.0, 1)
            row["speedup_vs_w5"] = round(
                tempo / max(1.0, janus_partial_throughput(num_shards, zipf, 0.05, options.payload)),
                2,
            )
            row["speedup_vs_w50"] = round(
                tempo / max(1.0, janus_partial_throughput(num_shards, zipf, 0.50, options.payload)),
                2,
            )
            rows.append(row)
    return rows


def tail_latency_comparison(
    num_shards: int = 3,
    zipf: float = 0.7,
    write_ratio: float = 0.05,
    clients_per_site: int = 8,
    duration_ms: float = 3_000.0,
    keys_per_shard: int = 200,
    seed: int = 1,
) -> List[Dict[str, object]]:
    """§6.4 tail-latency claim, reproduced on the simulator.

    Runs Tempo and Janus* on the same partial-replication deployment and
    YCSB+T workload and reports their latency percentiles.  Scaled down from
    the paper's 6 shards / full key space so it completes in seconds; the
    key space is shrunk so the zipfian contention is preserved despite the
    smaller client count.
    """
    rows: List[Dict[str, object]] = []
    for protocol in ("tempo", "janus"):
        config = ExperimentConfig(
            protocol=protocol,
            num_sites=3,
            faults=1,
            num_shards=num_shards,
            clients_per_site=clients_per_site,
            workload="ycsbt",
            zipf=zipf,
            write_ratio=write_ratio,
            keys_per_shard=keys_per_shard,
            duration_ms=duration_ms,
            warmup_ms=min(500.0, duration_ms / 4),
            seed=seed,
            sites=FIGURE9_SITES,
        )
        result = run_experiment(config)
        rows.append(
            {
                "protocol": protocol,
                "mean_ms": round(result.mean_latency(), 1),
                "p99_ms": round(result.percentile(99.0), 1),
                "p99.99_ms": round(result.percentile(99.99), 1),
                "completed": result.completed,
            }
        )
    return rows
