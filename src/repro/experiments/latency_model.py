"""Analytic per-site latency model.

For the uncontended case, the client-observed latency of each protocol is
determined by wide-area round trips:

* **leaderless protocols** (Tempo, Atlas, EPaxos, Caesar): the co-located
  coordinator reaches its fast quorum and back — one round trip to the
  farthest fast-quorum member;
* **FPaxos**: the command is forwarded to the leader, the leader reaches its
  phase-2 quorum (``f + 1``), and the decision travels back to the client's
  site.

The model is used by the load/throughput experiment (Figure 7) to anchor the
latency axis and by tests as an independent cross-check of the simulator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.simulator.latency import EC2_REGIONS, LatencyMatrix, ec2_latency_matrix


def fast_quorum_latency(
    matrix: LatencyMatrix, site: str, quorum_size: int
) -> float:
    """Round trip from ``site`` to its farthest fast-quorum member."""
    return matrix.quorum_latency(site, quorum_size)


def leaderless_site_latency(
    site: str,
    quorum_size: int,
    matrix: Optional[LatencyMatrix] = None,
    extra_ms: float = 0.0,
) -> float:
    """Per-site latency of a leaderless protocol in the uncontended case."""
    matrix = matrix or ec2_latency_matrix()
    return fast_quorum_latency(matrix, site, quorum_size) + extra_ms


def fpaxos_site_latency(
    site: str,
    leader: str,
    slow_quorum_size: int,
    matrix: Optional[LatencyMatrix] = None,
) -> float:
    """Per-site latency of FPaxos: forward to the leader, leader quorum
    round trip, decision back to the site."""
    matrix = matrix or ec2_latency_matrix()
    forward = matrix.latency(site, leader)
    quorum = matrix.quorum_latency(leader, slow_quorum_size)
    back = matrix.latency(leader, site)
    return forward + quorum + back


def per_site_latency(
    protocol: str,
    num_sites: int = 5,
    faults: int = 1,
    sites: Sequence[str] = EC2_REGIONS,
    leader: str = "ireland",
    matrix: Optional[LatencyMatrix] = None,
) -> Dict[str, float]:
    """Per-site uncontended latency for one protocol (Figure 5 skeleton)."""
    sites = list(sites[:num_sites])
    matrix = matrix or ec2_latency_matrix(sites)
    majority = num_sites // 2 + 1
    if protocol == "fpaxos":
        return {
            site: fpaxos_site_latency(site, leader, faults + 1, matrix)
            for site in sites
        }
    if protocol in ("tempo", "atlas"):
        quorum = num_sites // 2 + faults
    elif protocol == "epaxos":
        quorum = max((3 * num_sites) // 4, majority)
    elif protocol == "caesar":
        quorum = -((-3 * num_sites) // 4)
    else:
        raise KeyError(f"unknown protocol {protocol!r}")
    return {
        site: leaderless_site_latency(site, quorum, matrix) for site in sites
    }


def average_latency(per_site: Dict[str, float]) -> float:
    """Average of the per-site latencies."""
    if not per_site:
        return 0.0
    return sum(per_site.values()) / len(per_site)


def queueing_latency(base_ms: float, offered_load: float, capacity: float) -> float:
    """Latency under load: the base wide-area latency inflated by an M/M/1-style
    queueing term as the offered load approaches the saturation capacity.

    Used by Figure 7 to produce the characteristic hockey-stick curves.
    """
    if capacity <= 0:
        return base_ms
    utilization = min(offered_load / capacity, 0.995)
    return base_ms / max(1e-3, (1.0 - utilization)) ** 0.5


def closed_loop_throughput(
    clients: int, latency_ms: float, capacity: float
) -> float:
    """Throughput of ``clients`` closed-loop clients with the given latency,
    capped by the saturation capacity."""
    if latency_ms <= 0:
        return capacity
    offered = clients / (latency_ms / 1000.0)
    return min(offered, capacity)


def load_curve(
    clients_per_site: Sequence[int],
    num_sites: int,
    base_latency_ms: float,
    capacity_ops: float,
) -> List[Dict[str, float]]:
    """Latency/throughput points as the client count grows (Figure 7).

    For each client count the fixed point of the closed-loop equations is
    found by iteration: latency depends on utilisation, which depends on
    throughput, which depends on latency.
    """
    points: List[Dict[str, float]] = []
    for per_site in clients_per_site:
        clients = per_site * num_sites
        # Solve the closed-loop fixed point exactly: with utilisation
        # u = T / capacity and L = base / sqrt(1 - u), closed-loop clients
        # give T = clients / L, i.e.  u * capacity * base = clients * sqrt(1-u).
        # The left side grows and the right side shrinks in u, so the root is
        # unique; find it by bisection.
        low, high = 0.0, 0.995
        for _ in range(60):
            mid = (low + high) / 2.0
            lhs = mid * capacity_ops * (base_latency_ms / 1000.0)
            rhs = clients * (1.0 - mid) ** 0.5
            if lhs < rhs:
                low = mid
            else:
                high = mid
        utilization = (low + high) / 2.0
        latency = queueing_latency(base_latency_ms, utilization * capacity_ops, capacity_ops)
        throughput = min(utilization * capacity_ops, capacity_ops)
        points.append(
            {
                "clients_per_site": float(per_site),
                "throughput_ops": throughput,
                "latency_ms": latency,
            }
        )
    return points
