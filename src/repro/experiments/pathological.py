"""§D — pathological scenarios for Caesar and EPaxos.

The appendix constructs an infinite schedule over 3 processes where all
commands conflict and process P proposes commands P, P+3, P+6, ...:

* under **Caesar**, every reply is blocked by the wait condition on a
  not-yet-committed conflicting command with a higher timestamp, so no
  command is ever committed;
* under **EPaxos**, the committed dependencies form a strongly connected
  component of unbounded size, so commands are committed but never executed.

Under **Tempo**, the same schedule commits and executes every command.

This module replays a finite prefix of the schedule against the real
protocol implementations and reports, for each protocol, how many commands
were committed and executed and how large the blocked structures grew.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.commands import Partitioner
from repro.core.config import ProtocolConfig
from repro.core.process import TempoProcess
from repro.kvstore.store import KeyValueStore
from repro.protocols.caesar import CaesarProcess
from repro.protocols.epaxos import EPaxosProcess
from repro.simulator.inline import InlineNetwork


@dataclass
class PathologyReport:
    """Outcome of replaying the §D schedule against one protocol.

    ``*_during`` fields are measured while the adversarial schedule is still
    running (new conflicting commands keep arriving); ``*_final`` fields are
    measured after the schedule stops and the network quiesces.  The §D
    claims show up as: EPaxos builds ever-growing components and executes
    nothing *during* the schedule; Caesar commits nothing during the
    schedule because every reply is blocked; Tempo keeps committing and
    executing throughout.
    """

    protocol: str
    submitted: int
    committed_during: int
    executed_during: int
    committed_final: int
    executed_final: int
    blocked_replies: int = 0
    largest_component: int = 0

    def as_row(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "submitted": self.submitted,
            "committed_during": self.committed_during,
            "executed_during": self.executed_during,
            "committed_final": self.committed_final,
            "executed_final": self.executed_final,
            "blocked_replies": self.blocked_replies,
            "largest_component": self.largest_component,
        }


def _build(protocol: str):
    config = ProtocolConfig(num_processes=3, faults=1)
    partitioner = Partitioner(1)
    processes = []
    for process_id in range(3):
        store = KeyValueStore()
        if protocol == "tempo":
            process = TempoProcess(
                process_id, config, partitioner=partitioner, apply_fn=store.apply
            )
        elif protocol == "epaxos":
            process = EPaxosProcess(
                process_id, config, partitioner=partitioner, apply_fn=store.apply
            )
        elif protocol == "caesar":
            process = CaesarProcess(
                process_id, config, partitioner=partitioner, apply_fn=store.apply
            )
        else:
            raise KeyError(protocol)
        processes.append(process)
    return processes


def _count_committed(protocol: str, process, commands) -> int:
    if protocol == "tempo":
        # A record collected by the watermark GC was globally executed,
        # hence committed; count it even though its ``_info`` entry (and
        # with it ``committed_timestamp``) is gone.
        gc = process.gc
        return sum(
            1 for command in commands
            if process.committed_timestamp(command.dot) is not None
            or (gc is not None and gc.collected(command.dot))
        )
    return sum(
        1 for command in commands
        if process.status_of(command.dot) in ("commit", "execute")
    )


def replay_schedule(protocol: str, rounds: int = 6) -> PathologyReport:
    """Replay the round-robin conflicting schedule of §D.

    In each round, every process submits one command on the same key.  The
    adversary delays message delivery by one full round: while a round's
    commands are in flight, the next round's commands have already been
    submitted, which is what makes each new command conflict with (and be
    ordered relative to) the previous ones before they can complete.
    """
    processes = _build(protocol)
    network = InlineNetwork(processes)
    commands = []
    in_flight = []
    for _ in range(rounds):
        for process in processes:
            command = process.new_command(["hot"])
            process.submit(command, 0.0)
            commands.append((process.process_id, command))
        # Hold this round's messages; deliver the previous round's instead.
        to_deliver, in_flight = in_flight, network.collect()
        for envelope in to_deliver:
            target = network.processes.get(envelope.destination)
            if target is not None:
                target.deliver(envelope.sender, envelope.message, 0.0)
        # Newly produced replies join the in-flight set (delayed as well).
        in_flight.extend(network.collect())

    submitter = processes[0]
    all_commands = [command for _, command in commands]
    executed_during = len(set(submitter.executed_dots()) & {c.dot for c in all_commands})
    committed_during = _count_committed(protocol, submitter, all_commands)
    blocked = getattr(submitter, "blocked_replies_ever", 0)
    largest_during = 0
    if protocol == "epaxos":
        largest_during = max(
            submitter.executor.graph.largest_pending_component(),
            submitter.max_component_size(),
        )

    # The schedule stops: deliver what is still in flight and quiesce, which
    # shows which protocols recover once the adversary relents.
    for envelope in in_flight:
        target = network.processes.get(envelope.destination)
        if target is not None:
            target.deliver(envelope.sender, envelope.message, 0.0)
    network.settle(rounds=15)
    committed_final = _count_committed(protocol, submitter, all_commands)
    executed_final = len(set(submitter.executed_dots()) & {c.dot for c in all_commands})
    if protocol == "epaxos":
        largest_during = max(largest_during, submitter.max_component_size())

    return PathologyReport(
        protocol=protocol,
        submitted=len(all_commands),
        committed_during=committed_during,
        executed_during=executed_during,
        committed_final=committed_final,
        executed_final=executed_final,
        blocked_replies=blocked,
        largest_component=largest_during,
    )


def run(rounds: int = 6) -> List[Dict[str, object]]:
    """Replay the §D schedule against Tempo, EPaxos and Caesar."""
    return [
        replay_schedule(protocol, rounds).as_row()
        for protocol in ("tempo", "epaxos", "caesar")
    ]
