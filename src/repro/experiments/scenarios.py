"""Adversarial scenario matrix: trace-certified fault-injection campaign.

The paper's evaluation runs the protocols on their happy path (plus one
planned-fault figure); this module sweeps the *unhappy* paths the text only
argues about — coordinator crashes at different sites and times, a crashed
replica restarting with its durable state (the watermark GC must stall for
the outage and resume after the catch-up), a site partitioned away and
healed, flaky wide-area links, message-class-targeted
loss (the cross-partition ``MStable`` notifications multi-shard stability
depends on) and Zipfian conflict skew — and certifies every cell with the
:mod:`repro.analysis` trace checker (the run *raises* on any consistency
violation, so a matrix row exists only if the invariants held).

Each cell reports tail latency, how many commands were left stuck on alive
replicas, and whether the survivors converged (no stuck commands and — for
Tempo, whose execution is a per-shard total order — identical execution
orders).  Convergence is a *requirement* for every cell whose fault plan
can lose or delay traffic: Tempo's liveness machinery (commit-hint
watchdog, §B.1 recovery, periodic promise re-broadcast) plus the reliable-
delivery layer (:mod:`repro.reliability`: ack-driven commit/MStable
retransmission, the cross-shard stability watchdog, and coordinator
re-solicitation for the dependency baselines) drains everything such a
window strands.  The only cells still reported honestly as
``converged=no`` are the baselines' unrecoverable coordinator crashes
(``crash@s0``): the dead coordinator held quorum state no other replica
can reconstruct, and crash-only plans deliberately keep the reliability
layer off so their goldens match the seed's behaviour byte for byte.

The matrix is deterministic end to end (every cell is seeded and all fault
randomness draws from the network's dedicated fault RNG stream), so
``results/scenario_matrix.txt`` is byte-identical across reruns and CI
checks it for drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.config import ExperimentConfig
from repro.cluster.runner import run_experiment
from repro.faults import Crash, FaultPlan, FlakyLink, Partition, Restart, TargetedLoss

#: Tail bound (ms) gating the promoted worst cells: recovery timeout
#: (500 ms) + watchdog lag + wide-area round trips, matching the
#: crash-tail benchmark's budget.
WORST_CELL_TAIL_BOUND_MS = 2_000.0

#: Fault shapes every protocol is swept through (the acceptance floor is
#: >= 3 protocols x >= 4 shapes; ``zipf`` rides along as a healthy-but-
#: skewed control).
SHAPES: Tuple[str, ...] = (
    "crash",
    "restart",
    "partition",
    "flaky",
    "targeted",
    "zipf",
)


@dataclass(frozen=True)
class ScenarioCell:
    """One cell of the matrix: a protocol under one fault shape."""

    name: str
    protocol: str
    shape: str
    config: ExperimentConfig
    #: Whether the cell *asserts* survivor convergence (no stuck commands;
    #: for Tempo also one agreed per-shard execution order).  True only
    #: where the protocol's liveness machinery guarantees it.
    requires_convergence: bool = False
    #: Promoted worst cells additionally gate their p99.9 under
    #: :data:`WORST_CELL_TAIL_BOUND_MS` (the CI regression gate).
    tail_gated: bool = False


@dataclass
class ScenarioOptions:
    """Knobs for the campaign (scaled for the pure-Python simulator)."""

    num_sites: int = 5
    faults: int = 1
    clients_per_site: int = 4
    conflict_rate: float = 0.10
    duration_ms: float = 2_000.0
    warmup_ms: float = 400.0
    seed: int = 1
    protocols: Sequence[str] = ("tempo", "atlas", "epaxos")
    #: Restrict to cells whose name contains any of these substrings
    #: (``None`` = full matrix); the CI smoke job runs a slice.
    select: Optional[Sequence[str]] = None


def _base_config(options: ScenarioOptions, protocol: str, **overrides) -> ExperimentConfig:
    base = dict(
        protocol=protocol,
        num_sites=options.num_sites,
        faults=options.faults,
        clients_per_site=options.clients_per_site,
        conflict_rate=options.conflict_rate,
        duration_ms=options.duration_ms,
        warmup_ms=options.warmup_ms,
        seed=options.seed,
        record_execution_trace=True,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def build_matrix(options: ScenarioOptions = ScenarioOptions()) -> List[ScenarioCell]:
    """The campaign's cells: crash-site/time sweep x partition/heal x
    flaky links x targeted loss x Zipf skew, per protocol."""
    cells: List[ScenarioCell] = []
    crash_window = options.duration_ms * 0.4
    heal_at = options.duration_ms * 0.7
    # Crash sweep: Tempo sweeps crash site and crash time (its recovery
    # machinery must deliver convergence wherever the coordinator dies);
    # the baselines take the representative site-0 crash.
    for protocol in options.protocols:
        if protocol == "tempo":
            sweep = [(0, crash_window), (1, crash_window), (0, heal_at)]
        else:
            sweep = [(0, crash_window)]
        for site_rank, at_ms in sweep:
            cells.append(
                ScenarioCell(
                    name=f"crash@s{site_rank}/t{int(at_ms)}",
                    protocol=protocol,
                    shape="crash",
                    config=_base_config(
                        options,
                        protocol,
                        fault_plan=FaultPlan(
                            [Crash(at_ms=at_ms, site_rank=site_rank)]
                        ),
                    ),
                    requires_convergence=protocol == "tempo",
                    tail_gated=protocol == "tempo",
                )
            )
    # Crash/restart (crash-recovery variant): site 1 dies mid-run and
    # returns later holding its durable state.  While it is down the
    # watermark GC stalls at every survivor (the crashed peer stays in the
    # minimum); after the restart the replica must catch up — Tempo via
    # its periodic liveness machinery, the baselines via the reliable-
    # delivery layer's commit retransmission and coordinator
    # re-solicitation — and the campaign asserts post-restart convergence
    # for every protocol.
    restart_at = options.duration_ms * 0.6
    for protocol in options.protocols:
        cells.append(
            ScenarioCell(
                name=f"restart@s1/t{int(crash_window)}-{int(restart_at)}",
                protocol=protocol,
                shape="restart",
                config=_base_config(
                    options,
                    protocol,
                    fault_plan=FaultPlan(
                        [
                            Crash(at_ms=crash_window, site_rank=1),
                            Restart(at_ms=restart_at, site_rank=1),
                        ]
                    ),
                ),
                requires_convergence=True,
                tail_gated=protocol == "tempo",
            )
        )
    # Partition/heal: site 0 isolated from the quorum for a window, then
    # healed; recovery must drain what the window stranded.
    isolated = ((0,), tuple(range(1, options.num_sites)))
    for protocol in options.protocols:
        cells.append(
            ScenarioCell(
                name=f"partition@s0/t{int(crash_window)}-{int(heal_at)}",
                protocol=protocol,
                shape="partition",
                config=_base_config(
                    options,
                    protocol,
                    fault_plan=FaultPlan(
                        [Partition(crash_window, heal_at, isolated)]
                    ),
                ),
                requires_convergence=True,
                tail_gated=protocol == "tempo",
            )
        )
    # Flaky links: every wide-area link gains delay + jitter + 5 % drop
    # for a window (fair-lossy links; retransmission copes).
    for protocol in options.protocols:
        cells.append(
            ScenarioCell(
                name="flaky-links/d30j10p0.05",
                protocol=protocol,
                shape="flaky",
                config=_base_config(
                    options,
                    protocol,
                    fault_plan=FaultPlan(
                        [
                            FlakyLink(
                                at_ms=crash_window,
                                until_ms=heal_at + 200.0,
                                extra_delay_ms=30.0,
                                jitter_ms=10.0,
                                drop_probability=0.05,
                            )
                        ]
                    ),
                ),
                requires_convergence=True,
            )
        )
    # Targeted loss: for Tempo, the cross-partition MStable notifications
    # of a 2-shard deployment (the only deployment where MStable crosses
    # the wire); for the dependency protocols, their commit broadcast.
    for protocol in options.protocols:
        if protocol == "tempo":
            cells.append(
                ScenarioCell(
                    name="mstable-loss/x-shard",
                    protocol=protocol,
                    shape="targeted",
                    config=_base_config(
                        options,
                        protocol,
                        num_sites=3,
                        num_shards=2,
                        keys_per_command=2,
                        fault_plan=FaultPlan(
                            [
                                TargetedLoss(
                                    at_ms=crash_window,
                                    until_ms=heal_at,
                                    kind="MStable",
                                    probability=1.0,
                                    cross_shard_only=True,
                                )
                            ]
                        ),
                    ),
                    requires_convergence=True,
                )
            )
        else:
            cells.append(
                ScenarioCell(
                    name="commit-loss/p0.3",
                    protocol=protocol,
                    shape="targeted",
                    config=_base_config(
                        options,
                        protocol,
                        fault_plan=FaultPlan(
                            [
                                TargetedLoss(
                                    at_ms=crash_window,
                                    until_ms=heal_at,
                                    kind="MDepCommit",
                                    probability=0.3,
                                )
                            ]
                        ),
                    ),
                    requires_convergence=True,
                )
            )
    # Zipfian conflict skew: healthy network, hot-key YCSB+T contention.
    for protocol in options.protocols:
        cells.append(
            ScenarioCell(
                name="zipf0.95/ycsbt",
                protocol=protocol,
                shape="zipf",
                config=_base_config(
                    options,
                    protocol,
                    workload="ycsbt",
                    zipf=0.95,
                    write_ratio=0.5,
                ),
                requires_convergence=True,
            )
        )
    if options.select:
        cells = [
            cell
            for cell in cells
            if any(token in cell.name or token == cell.shape for token in options.select)
        ]
    return cells


def _convergence(result, protocol: str) -> Tuple[int, bool]:
    """``(stuck, converged)`` for one finished cell.

    ``stuck`` counts commands an *alive* replica failed to finish: still
    pending, or committed but never executed (a committed command whose
    stability/ordering prerequisites were lost stalls the execution queue
    without ever being "pending").  Converged means no stuck commands;
    Tempo executes a per-shard total order, so its survivors must
    additionally agree on one execution order per shard.
    """
    deployment = result.deployment
    alive = [process for process in deployment.processes if process.alive]
    stuck = sum(
        len(process.pending_dots())
        + len(set(process.committed_dots()) - set(process.executed_dots()))
        for process in alive
    )
    converged = stuck == 0
    if converged and protocol == "tempo":
        by_shard: Dict[int, set] = {}
        protocol_config = deployment.protocol_config
        for process in alive:
            shard = protocol_config.partition_of_process(process.process_id)
            by_shard.setdefault(shard, set()).add(tuple(process.executed_dots()))
        converged = all(len(orders) == 1 for orders in by_shard.values())
    return stuck, converged


def run_cell(cell: ScenarioCell) -> Dict[str, object]:
    """Run one cell under the trace checker and build its matrix row.

    ``run_experiment`` raises on any trace violation, so a returned row is
    certified; convergence is asserted where the cell requires it.
    """
    result = run_experiment(cell.config)
    stuck, converged = _convergence(result, cell.protocol)
    if cell.requires_convergence:
        assert converged, (
            f"cell {cell.name} ({cell.protocol}): expected convergence, "
            f"{stuck} commands stuck"
        )
    row: Dict[str, object] = {
        "scenario": cell.name,
        "protocol": cell.protocol,
        "shape": cell.shape,
        "completed": result.completed,
        "p50": round(result.percentile(50.0), 1),
        "p99": round(result.percentile(99.0), 1),
        "p99.9": round(result.percentile(99.9), 1),
        "stuck": stuck,
        "converged": "yes" if converged else "no",
        # Identifiers dropped by the watermark GC across the run: the
        # witness that collection keeps running (or honestly stalls)
        # under the cell's fault shape.
        "gc": int(result.stats.get("gc_collected", 0)),
    }
    if cell.tail_gated:
        assert float(row["p99.9"]) <= WORST_CELL_TAIL_BOUND_MS, (
            f"promoted worst cell {cell.name} ({cell.protocol}) breached the "
            f"tail bound: {row}"
        )
    return row


def run_matrix(options: ScenarioOptions = ScenarioOptions()) -> List[Dict[str, object]]:
    """Run the whole campaign and return the matrix rows, cell order."""
    return [run_cell(cell) for cell in build_matrix(options)]
