"""Table 1 — fast-path examples with r = 5 and f ∈ {1, 2}.

The table walks through four proposal scenarios and shows when Tempo's
fast-path condition ``count(max proposal) >= f`` holds, illustrating that
Tempo can take the fast path even when the proposals do not match (example
a) and that f = 1 always takes the fast path (examples c, d).

This module reproduces the table both *analytically* (directly evaluating
the condition on the clock values of the table) and *operationally* (driving
real :class:`~repro.core.process.TempoProcess` instances through the same
clock configuration and observing which path they take).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.commands import Partitioner
from repro.core.config import ProtocolConfig
from repro.core.messages import MCommit, MConsensus
from repro.core.process import TempoProcess
from repro.simulator.inline import RecordingNetwork


@dataclass(frozen=True)
class FastPathExample:
    """One row of Table 1.

    ``initial_clocks`` maps the non-coordinator fast-quorum processes (B, C,
    and D when f = 2) to their clock value before receiving the MPropose;
    the coordinator A proposes ``coordinator_proposal``.
    """

    label: str
    faults: int
    coordinator_proposal: int
    initial_clocks: Tuple[int, ...]
    expect_match: bool
    expect_fast_path: bool


#: The four examples of Table 1 (r = 5; A coordinates and proposes 6).
TABLE1_EXAMPLES: Tuple[FastPathExample, ...] = (
    FastPathExample("a", 2, 6, (6, 10, 10), expect_match=False, expect_fast_path=True),
    FastPathExample("b", 2, 6, (6, 10, 5), expect_match=False, expect_fast_path=False),
    FastPathExample("c", 1, 6, (6, 10), expect_match=False, expect_fast_path=True),
    FastPathExample("d", 1, 6, (5, 1), expect_match=True, expect_fast_path=True),
)


def analytic_row(example: FastPathExample) -> Dict[str, object]:
    """Evaluate the fast-path condition directly on the clock values."""
    proposals = [example.coordinator_proposal]
    for clock in example.initial_clocks:
        proposals.append(max(example.coordinator_proposal, clock + 1))
    final = max(proposals)
    count = sum(1 for proposal in proposals if proposal == final)
    match = len(set(proposals)) == 1
    fast = count >= example.faults
    return {
        "example": example.label,
        "f": example.faults,
        "proposals": tuple(proposals),
        "timestamp": final,
        "match": match,
        "fast_path": fast,
    }


def _preset_clock(process: TempoProcess, value: int) -> None:
    """Pre-set a process clock to ``value`` as if it had legitimately issued
    promises up to that value in the past (keeps the promise invariant that
    a clock of ``v`` implies promises 1..v exist)."""
    if value <= 0:
        return
    process.clock.value = value
    timestamps = range(1, value + 1)
    process.tracker.add_detached(timestamps)
    process._absorb_detached(timestamps)


def simulate_row(example: FastPathExample) -> Dict[str, object]:
    """Drive real Tempo processes through the example and observe the path.

    The coordinator's clock is pre-set so that its proposal equals the
    table's value; the other fast-quorum members' clocks are pre-set to the
    table's initial values.  The row reports whether an ``MConsensus``
    message (slow path) was needed and the committed timestamp.
    """
    config = ProtocolConfig(num_processes=5, faults=example.faults)
    partitioner = Partitioner(1)
    processes = [
        TempoProcess(process_id, config, partitioner=partitioner)
        for process_id in range(5)
    ]
    coordinator = processes[0]
    _preset_clock(coordinator, example.coordinator_proposal - 1)
    quorum = coordinator.quorum_system.fast_quorum(0, 0)
    members = [process_id for process_id in quorum if process_id != 0]
    for member, clock in zip(members, example.initial_clocks):
        _preset_clock(processes[member], clock)
    network = RecordingNetwork(processes)
    command = coordinator.new_command(["table1-key"])
    coordinator.submit(command, 0.0)
    network.settle(rounds=10)
    slow_path = any(kind == "MConsensus" for _, _, kind in network.log)
    committed = coordinator.committed_timestamp(command.dot)
    executed = all(
        command.dot in process.executed_dots() for process in processes
    )
    return {
        "example": example.label,
        "f": example.faults,
        "timestamp": committed,
        "fast_path": not slow_path,
        "executed_everywhere": executed,
    }


def run(examples: Sequence[FastPathExample] = TABLE1_EXAMPLES) -> List[Dict[str, object]]:
    """Regenerate Table 1: analytic and simulated outcome per example."""
    rows: List[Dict[str, object]] = []
    for example in examples:
        analytic = analytic_row(example)
        simulated = simulate_row(example)
        rows.append(
            {
                "example": example.label,
                "f": example.faults,
                "proposals": analytic["proposals"],
                "timestamp": analytic["timestamp"],
                "match": analytic["match"],
                "fast_path(analytic)": analytic["fast_path"],
                "fast_path(simulated)": simulated["fast_path"],
                "expected_fast_path": example.expect_fast_path,
            }
        )
    return rows
