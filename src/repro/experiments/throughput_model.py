"""Analytical saturation-throughput model (Figures 7, 8 and 9).

The paper's maximum-throughput numbers are determined by which resource
saturates first at the *busiest* process of each protocol:

* **FPaxos** — the leader handles every command: it receives it (possibly
  forwarded), sends it to a phase-2 quorum of ``f + 1`` and then broadcasts
  the decision to all replicas.  With large payloads the leader's outbound
  NIC saturates; with small payloads its CPU does (§6.3).
* **EPaxos / Atlas / Janus*** — load is balanced across replicas, but
  execution traverses the committed dependency graph in a single thread.
  The per-command execution cost grows with the size of the strongly
  connected components, i.e. with the conflict rate and the number of
  concurrent clients, so the execution thread saturates well before CPU or
  NIC do (the paper reports at most 59 % CPU / 41 % network for Atlas).
* **Caesar** — besides execution, the blocking wait condition delays
  commits of conflicting commands, capping throughput at roughly the rate at
  which blocked commands drain (§6.3: 104K ops/s at 2 % conflicts, 32K at
  10 %).
* **Tempo** — execution is a timestamp sort plus a state-machine
  application, cheap and parallelisable, so Tempo saturates on overall CPU
  with balanced network usage (95 % CPU / 80 % NIC at 4 KB payloads).

The model counts, per command, the messages and bytes handled by the
bottleneck process of each protocol (derived from the protocols' message
patterns) and converts them into CPU-microseconds and NIC-bytes using a
small set of calibration constants.  The constants are calibrated once (see
:class:`CostModel` defaults) so that the 4 KB / 2 %-conflict full-replication
scenario lands near the paper's absolute numbers; every other scenario —
other payloads, conflict rates, batching, shard counts — is then *predicted*
by the model, which is what makes the reproduced trends meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional

from repro.core.config import ProtocolConfig
from repro.simulator.resources import CommandCost, MachineSpec, ResourceModel
from repro.workloads.batching import BatchingModel


@dataclass(frozen=True)
class CostModel:
    """Calibration constants converting message counts into resource usage.

    Attributes:
        cpu_per_message_us: CPU cost of handling (serialising, dispatching)
            one protocol message, excluding payload copying.
        cpu_per_kib_us: CPU cost per KiB of payload copied in or out.
        execution_base_us: cost of applying one command to the state machine.
        graph_node_us: cost of inserting/traversing one node of the
            dependency graph (EPaxos/Atlas/Janus* execution).
        caesar_block_us: average cost a blocked Caesar command adds on the
            critical path per conflicting in-flight command.
        tempo_stability_us: cost of the per-command timestamp/stability
            bookkeeping in Tempo.
        small_message_bytes: wire size of acks and other payload-free
            messages.
        framing_bytes: the per-message NIC framing share of
            ``small_message_bytes`` (headers, ids, enums) that transport
            batching can amortise.
        mbatch_coalescing: average number of same-destination protocol
            messages coalesced into one transport-level ``MBatch`` delivery.
            The default of 1 charges the historical unbatched per-message
            framing; the simulator's measured coalescing (``batches_sent``
            vs ``messages_sent``) can be plugged in to model the framing
            saving for Figures 7 and 8.
        concurrency: number of in-flight commands per site assumed when
            estimating dependency-chain lengths (the paper's saturation
            points sit at a few thousand clients per site).
    """

    cpu_per_message_us: float = 3.0
    cpu_per_kib_us: float = 1.5
    execution_base_us: float = 4.0
    graph_node_us: float = 4.0
    caesar_block_us: float = 6.0
    tempo_stability_us: float = 8.0
    small_message_bytes: float = 100.0
    framing_bytes: float = 24.0
    mbatch_coalescing: float = 1.0
    conflict_window: float = 25.0
    caesar_conflict_window: float = 50.0

    def __post_init__(self) -> None:
        if self.mbatch_coalescing < 1.0:
            raise ValueError("mbatch_coalescing must be >= 1")
        if not 0.0 <= self.framing_bytes <= self.small_message_bytes:
            raise ValueError(
                "framing_bytes must lie within [0, small_message_bytes]"
            )

    def payload_cpu(self, payload_bytes: float) -> float:
        """CPU microseconds spent copying ``payload_bytes``."""
        return self.cpu_per_kib_us * payload_bytes / 1024.0

    def small_wire_bytes(self) -> float:
        """Effective wire size of a payload-free message.

        With ``MBatch`` coalescing ``b`` messages per delivery, each message
        carries only ``1/b`` of the per-delivery framing; the non-framing
        part of the message still crosses the wire in full.
        """
        if self.mbatch_coalescing == 1.0:
            return self.small_message_bytes
        return (
            self.small_message_bytes
            - self.framing_bytes
            + self.framing_bytes / self.mbatch_coalescing
        )


def measured_coalescing(stats: Mapping[str, float]) -> float:
    """MBatch coalescing factor measured by a simulator run.

    ``stats`` is an :class:`repro.cluster.runner.ExperimentResult` ``stats``
    mapping (or anything exposing ``messages_delivered`` and
    ``deliveries``).  The result — average protocol messages per transport
    delivery — is exactly the ``mbatch_coalescing`` input of
    :class:`CostModel`, closing the loop between the fig5/fig6 simulator
    runs and the fig7/fig8 analytic model.  Falls back to the historical
    per-message framing (1.0) when the counters are missing or degenerate.
    """
    messages = float(stats.get("messages_delivered", 0.0))
    deliveries = float(stats.get("deliveries", 0.0))
    if messages <= 0.0 or deliveries <= 0.0:
        return 1.0
    return max(1.0, messages / deliveries)


def model_with_measured_coalescing(
    stats: Mapping[str, float], base: Optional[CostModel] = None
) -> CostModel:
    """A :class:`CostModel` whose MBatch coalescing comes from a measured run."""
    return replace(base or CostModel(), mbatch_coalescing=measured_coalescing(stats))


@dataclass(frozen=True)
class ProtocolCosts:
    """Per-command resource usage at the bottleneck process, plus metadata."""

    protocol: str
    cost: CommandCost
    bottleneck_hint: str = ""


def _chain_factor(
    conflict_rate: float, conflict_window: float, quorum_factor: float = 1.0
) -> float:
    """Expected dependency-chain/SCC blow-up factor for dependency-based
    protocols.

    With a window of ``conflict_window`` commands that can end up in the
    same execution batch and conflict rate ``rho``, a conflicting command
    drags roughly ``rho * window`` other commands into its strongly
    connected component, and larger fast quorums (``quorum_factor > 1``,
    i.e. ``f = 2``) report proportionally more dependencies.  The execution
    thread touches every member of a component once per command of the
    component; the square root keeps the per-command growth sub-linear,
    matching the measured 36-48 % throughput drop of Atlas between 2 % and
    10 % conflicts rather than a collapse.
    """
    expected_component = 1.0 + conflict_rate * conflict_window * quorum_factor
    return expected_component ** 0.5


def fpaxos_costs(
    config: ProtocolConfig,
    payload: float,
    model: CostModel,
    batch: float = 1.0,
) -> ProtocolCosts:
    """Per-command cost at the FPaxos *leader* (the bottleneck process)."""
    r = config.num_processes
    f = config.faults
    # Messages at the leader per command: forwarded submission in, f phase-2
    # accepts out, f accepted in, r-1 decided out (plus the client reply).
    messages = (1 + f + f + (r - 1) + 1) / batch
    # Payload copies at the leader: command in, f accepts out, r-1 decided out.
    payload_in = payload
    payload_out = payload * (f + (r - 1))
    # The leader's ordering thread is single-threaded in the reference
    # implementation: it handles the forwarded command, the quorum replies
    # and the decision broadcast serially (§6.3 "the bottleneck shifts to
    # the leader thread").
    leader_thread = (3 + f) * model.cpu_per_message_us / batch + model.execution_base_us
    cpu = (
        messages * model.cpu_per_message_us
        + model.payload_cpu(payload_in + payload_out)
        + model.execution_base_us
    )
    small_wire = model.small_wire_bytes()
    net_in = payload_in + (f + 1) * small_wire / batch
    net_out = payload_out + (r - 1) * small_wire / batch
    return ProtocolCosts(
        protocol="fpaxos",
        cost=CommandCost(
            cpu_micros=cpu,
            execution_micros=leader_thread,
            net_in_bytes=net_in,
            net_out_bytes=net_out,
        ),
        bottleneck_hint="leader thread or leader outbound NIC",
    )


def _leaderless_shared_costs(
    config: ProtocolConfig,
    payload: float,
    model: CostModel,
    fast_quorum: int,
    batch: float = 1.0,
) -> CommandCost:
    """Average per-command cost at one replica of a leaderless protocol.

    Each replica coordinates ``1/r`` of the commands (sending the payload to
    the fast quorum and the commit to everyone) and participates in the
    remaining ones (one payload in, one ack out, one commit in).
    """
    r = config.num_processes
    coordinator_share = 1.0 / r
    # Coordinator: submit in, q-1 proposes out (payload), r-q payloads out,
    # q-1 acks in, r-1 commits out (no payload in Tempo; with payload for
    # dependency protocols - charged below by the caller through net bytes).
    coordinator_msgs = 1 + (fast_quorum - 1) + (r - fast_quorum) + (fast_quorum - 1) + (r - 1) + 1
    # Non-coordinator: payload or propose in, ack out, commit in.
    member_msgs = 3
    messages = (
        coordinator_share * coordinator_msgs + (1 - coordinator_share) * member_msgs
    ) / batch
    payload_out = coordinator_share * payload * (r - 1)
    payload_in = payload  # every replica receives each command's payload once
    cpu = (
        messages * model.cpu_per_message_us
        + model.payload_cpu(payload_in + payload_out)
    )
    small_wire = model.small_wire_bytes()
    net_in = payload_in + member_msgs * small_wire / batch
    net_out = payload_out + (
        coordinator_share * (r - 1) + 1
    ) * small_wire / batch
    return CommandCost(
        cpu_micros=cpu,
        execution_micros=0.0,
        net_in_bytes=net_in,
        net_out_bytes=net_out,
    )


def tempo_costs(
    config: ProtocolConfig,
    payload: float,
    model: CostModel,
    conflict_rate: float = 0.02,
    batch: float = 1.0,
) -> ProtocolCosts:
    """Per-command cost at a Tempo replica.

    Tempo's execution is a timestamp sort plus bookkeeping of promises;
    it does not depend on the conflict rate (§3.3), and it is parallel
    across partitions, so it is charged to the general CPU budget rather
    than to a single execution thread.
    """
    shared = _leaderless_shared_costs(
        config, payload, model, config.fast_quorum_size, batch
    )
    # Per-command work that batching cannot amortise: applying the command
    # plus the promise/stability bookkeeping of the timestamp executor.
    per_command = model.execution_base_us + model.tempo_stability_us
    cpu = shared.cpu_micros + per_command
    return ProtocolCosts(
        protocol="tempo",
        cost=replace(shared, cpu_micros=cpu, execution_micros=0.0),
        bottleneck_hint="balanced CPU",
    )


def dependency_costs(
    protocol: str,
    config: ProtocolConfig,
    payload: float,
    model: CostModel,
    conflict_rate: float = 0.02,
    write_ratio: float = 1.0,
    batch: float = 1.0,
) -> ProtocolCosts:
    """Per-command cost at an EPaxos/Atlas/Janus* replica.

    The single-threaded dependency-graph execution is the bottleneck; its
    per-command cost grows with the expected component size, which itself
    grows with the conflict rate (and with the write ratio, since reads only
    depend on writes).
    """
    fast_quorum = (
        config.epaxos_fast_quorum_size if protocol == "epaxos" else config.fast_quorum_size
    )
    shared = _leaderless_shared_costs(config, payload, model, fast_quorum, batch)
    # Reads only depend on writes (§3.3), so the effective conflict rate for
    # the dependency graph scales with the write ratio of the workload.
    effective_conflicts = conflict_rate * max(write_ratio, 0.0)
    quorum_factor = fast_quorum / config.majority
    chain = _chain_factor(effective_conflicts, model.conflict_window, quorum_factor)
    execution = model.execution_base_us + model.graph_node_us * chain
    cpu = shared.cpu_micros + execution
    return ProtocolCosts(
        protocol=protocol,
        cost=replace(shared, cpu_micros=cpu, execution_micros=execution),
        bottleneck_hint="single-threaded dependency-graph execution",
    )


def caesar_costs(
    config: ProtocolConfig,
    payload: float,
    model: CostModel,
    conflict_rate: float = 0.02,
    batch: float = 1.0,
) -> ProtocolCosts:
    """Per-command cost at a Caesar replica.

    Besides graph-style bookkeeping, the wait condition serialises the
    handling of conflicting commands: each conflicting in-flight command
    adds critical-path work before the reply can be sent.
    """
    shared = _leaderless_shared_costs(
        config, payload, model, config.caesar_fast_quorum_size, batch
    )
    blocked = conflict_rate * model.caesar_conflict_window
    execution = model.execution_base_us + model.caesar_block_us * max(1.0, blocked)
    cpu = shared.cpu_micros + execution
    return ProtocolCosts(
        protocol="caesar",
        cost=replace(shared, cpu_micros=cpu, execution_micros=execution),
        bottleneck_hint="wait-condition blocking + execution",
    )


def protocol_costs(
    protocol: str,
    config: ProtocolConfig,
    payload: float,
    model: Optional[CostModel] = None,
    conflict_rate: float = 0.02,
    write_ratio: float = 1.0,
    batch: float = 1.0,
) -> ProtocolCosts:
    """Dispatch to the per-protocol cost function."""
    model = model or CostModel()
    if protocol == "fpaxos":
        return fpaxos_costs(config, payload, model, batch)
    if protocol == "tempo":
        return tempo_costs(config, payload, model, conflict_rate, batch)
    if protocol == "caesar":
        return caesar_costs(config, payload, model, conflict_rate, batch)
    if protocol in ("epaxos", "atlas", "janus"):
        return dependency_costs(
            protocol, config, payload, model, conflict_rate, write_ratio, batch
        )
    raise KeyError(f"unknown protocol {protocol!r}")


def max_throughput(
    protocol: str,
    config: Optional[ProtocolConfig] = None,
    payload: float = 4096.0,
    conflict_rate: float = 0.02,
    write_ratio: float = 1.0,
    machine: Optional[MachineSpec] = None,
    model: Optional[CostModel] = None,
    batching: Optional[BatchingModel] = None,
    num_shards: int = 1,
) -> Dict[str, float]:
    """Maximum system throughput (commands/s) for a protocol and scenario.

    For partial replication (``num_shards > 1``) the per-shard saturation is
    multiplied by the number of shards for genuine protocols (Tempo), since
    shards proceed independently; for Janus* the cross-shard dependency graph
    couples the shards, so the aggregate scales with the *square root* of the
    shard count under contention (empirically matching the paper's sub-linear
    Janus* scaling) and the per-command execution is charged the full
    cross-shard graph cost.
    """
    config = config or ProtocolConfig(num_processes=3, faults=1)
    machine = machine or MachineSpec()
    model = model or CostModel()
    batch = batching.amortization_factor() if batching is not None else 1.0
    costs = protocol_costs(
        protocol, config, payload, model, conflict_rate, write_ratio, batch
    )
    machine_for_protocol = machine
    if protocol == "tempo":
        # Tempo's executor parallelises across partitions/keys.
        machine_for_protocol = replace(machine, execution_threads=machine.cores / 2)
    saturation = ResourceModel(machine_for_protocol).saturation(costs.cost)
    per_shard = saturation.max_commands_per_second
    if num_shards <= 1:
        total = per_shard
    elif protocol in ("tempo",):
        total = per_shard * num_shards
    else:
        # Non-genuine protocols pay cross-shard coordination; scaling is
        # sub-linear in the number of shards.
        total = per_shard * (num_shards ** 0.75)
    return {
        "protocol": protocol,
        "max_ops_per_second": total,
        "per_shard_ops_per_second": per_shard,
        "bottleneck": saturation.bottleneck,
        "cpu_utilization": saturation.utilization_at_saturation.get("cpu", 0.0),
        "execution_utilization": saturation.utilization_at_saturation.get(
            "execution", 0.0
        ),
        "net_out_utilization": saturation.utilization_at_saturation.get("net_out", 0.0),
    }


def utilization_heatmap(
    protocols: List[str],
    config: Optional[ProtocolConfig] = None,
    payload: float = 4096.0,
    conflict_rate: float = 0.02,
    machine: Optional[MachineSpec] = None,
    model: Optional[CostModel] = None,
) -> List[Dict[str, float]]:
    """Hardware-utilization heatmap at saturation (bottom of Figure 7)."""
    rows: List[Dict[str, float]] = []
    for protocol in protocols:
        result = max_throughput(
            protocol,
            config=config,
            payload=payload,
            conflict_rate=conflict_rate,
            machine=machine,
            model=model,
        )
        rows.append(
            {
                "protocol": protocol,
                "cpu": round(result["cpu_utilization"] * 100.0, 1),
                "execution": round(result["execution_utilization"] * 100.0, 1),
                "net_out": round(result["net_out_utilization"] * 100.0, 1),
                "max_kops": round(result["max_ops_per_second"] / 1000.0, 1),
                "bottleneck": result["bottleneck"],
            }
        )
    return rows
