"""Declarative fault injection for the discrete-event simulator.

A :class:`~repro.faults.plan.FaultPlan` is a timeline of typed fault events
(crash, restart, bidirectional partition + heal, flaky-link degradation
windows, message-class-targeted loss); a
:class:`~repro.faults.injector.FaultInjector` compiles it against one
deployment and schedules every event at its simulated time.  See
``docs/fault_injection.md``.
"""

from repro.faults.plan import (
    Crash,
    FaultPlan,
    FlakyLink,
    Partition,
    Restart,
    TargetedLoss,
)
from repro.faults.injector import FaultInjector

__all__ = [
    "Crash",
    "FaultInjector",
    "FaultPlan",
    "FlakyLink",
    "Partition",
    "Restart",
    "TargetedLoss",
]
