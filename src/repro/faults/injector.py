"""Compile a :class:`~repro.faults.plan.FaultPlan` against one deployment.

The plan names replicas by ``(site_rank, shard)`` and links by site rank;
the injector resolves those into concrete process ids and site names and
schedules every event at its simulated time:

* :class:`~repro.faults.plan.Crash` events go through the simulator's
  first-class ``crash_at`` (the same CRASH event the legacy
  ``crash_site_rank``/``crash_at_ms`` knobs pushed, at the same queue
  position — keeping legacy crash runs byte-identical);
* everything else becomes a FAULT event whose payload mutates the network's
  fault state (partition edges, degradation windows, targeted-loss windows)
  or restarts a process.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.faults.plan import (
    Crash,
    FaultPlan,
    FlakyLink,
    Partition,
    Restart,
    TargetedLoss,
)
from repro.simulator.network import LinkDegradation
from repro.simulator.network import TargetedLoss as NetTargetedLoss
from repro.simulator.sim import Simulation


class FaultInjector:
    """Schedules the events of one validated plan onto one simulation.

    ``sites`` is the deployment's site names in rank order and
    ``process_id_of(site_rank, shard)`` resolves a replica coordinate to its
    process id (the cluster runner passes its deployment's resolver).
    """

    def __init__(
        self,
        plan: FaultPlan,
        sites: Sequence[str],
        process_id_of: Callable[[int, int], int],
        num_shards: int = 1,
    ) -> None:
        self.plan = plan.validate(len(sites), num_shards)
        self.sites = list(sites)
        self.process_id_of = process_id_of
        self.num_shards = num_shards

    def install(self, simulation: Simulation) -> None:
        """Schedule every plan event; call once, before ``simulation.run``."""
        if any(
            isinstance(event, TargetedLoss) and event.cross_shard_only
            for event in self.plan
        ):
            # Cross-shard targeted loss needs the network to know each
            # process's shard; tag them all up front (pure metadata, no
            # effect until a cross_group_only rule is active).
            for shard in range(self.num_shards):
                for site_rank in range(len(self.sites)):
                    simulation.network.set_group(
                        self.process_id_of(site_rank, shard), shard
                    )
        for event in self.plan:
            if isinstance(event, Crash):
                simulation.crash_at(
                    event.at_ms, self.process_id_of(event.site_rank, event.shard)
                )
            elif isinstance(event, Restart):
                process_id = self.process_id_of(event.site_rank, event.shard)
                simulation.fault_at(
                    event.at_ms,
                    lambda sim, process_id=process_id: sim.restart(process_id),
                )
            elif isinstance(event, Partition):
                groups = tuple(
                    tuple(self.sites[rank] for rank in group)
                    for group in event.groups
                )
                simulation.fault_at(
                    event.at_ms,
                    lambda sim, groups=groups: sim.network.set_partition(groups),
                )
                simulation.fault_at(
                    event.heal_at_ms, lambda sim: sim.network.clear_partition()
                )
            elif isinstance(event, FlakyLink):
                links = self._links_of(event)
                degradation = LinkDegradation(
                    extra_delay_ms=event.extra_delay_ms,
                    jitter_ms=event.jitter_ms,
                    drop_probability=event.drop_probability,
                )
                simulation.fault_at(
                    event.at_ms,
                    lambda sim, links=links, degradation=degradation: [
                        sim.network.degrade_link(a, b, degradation)
                        for a, b in links
                    ],
                )
                simulation.fault_at(
                    event.until_ms,
                    lambda sim, links=links: [
                        sim.network.restore_link(a, b) for a, b in links
                    ],
                )
            elif isinstance(event, TargetedLoss):
                loss = NetTargetedLoss(
                    probability=event.probability,
                    cross_group_only=event.cross_shard_only,
                )
                simulation.fault_at(
                    event.at_ms,
                    lambda sim, kind=event.kind, loss=loss: (
                        sim.network.set_targeted_loss(kind, loss)
                    ),
                )
                simulation.fault_at(
                    event.until_ms,
                    lambda sim, kind=event.kind: (
                        sim.network.clear_targeted_loss(kind)
                    ),
                )
            else:  # pragma: no cover - validate() rejects unknown events
                raise TypeError(f"unknown fault event: {event!r}")

    def _links_of(self, event: FlakyLink) -> List[Tuple[str, str]]:
        """Concrete site-name link pairs a FlakyLink event degrades."""
        sites = self.sites
        if event.site_a is None:
            return [
                (sites[a], sites[b])
                for a in range(len(sites))
                for b in range(a + 1, len(sites))
            ]
        if event.site_b is None:
            a = event.site_a
            return [(sites[a], sites[b]) for b in range(len(sites)) if b != a]
        return [(sites[event.site_a], sites[event.site_b])]
