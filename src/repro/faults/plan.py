"""The declarative fault-plan schema.

A :class:`FaultPlan` is a validated timeline of typed fault events.  Events
name replicas by ``(site_rank, shard)`` — the deployment-independent
coordinates the cluster layer already uses for its legacy crash knobs — and
links by site rank, so one plan can be replayed against any deployment with
enough sites/shards.  The :mod:`repro.faults.injector` compiles ranks into
concrete process ids and site names at install time.

Injected faults follow the crash-failure model in a message-passing system
(cf. "From Byzantine Failures to Crash Failures in Message-Passing
Systems"): processes fail by stopping, links lose or delay messages but
never corrupt them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple, Union


@dataclass(frozen=True)
class Crash:
    """Crash-stop the replica of ``shard`` at site rank ``site_rank``."""

    at_ms: float
    site_rank: int
    shard: int = 0

    def validate(self, num_sites: int, num_shards: int) -> None:
        if self.at_ms <= 0:
            raise ValueError("Crash.at_ms must be positive")
        _check_rank(self.site_rank, num_sites)
        _check_shard(self.shard, num_shards)


@dataclass(frozen=True)
class Restart:
    """Restart a previously crashed replica with its durable state.

    The paper assumes crash-stop failures; a restart models the
    crash-recovery variant where the replica returns holding the protocol
    state it had at the crash (as if persisted to stable storage) and the
    failure detectors flip it back to alive.  In-flight messages lost while
    it was down stay lost.
    """

    at_ms: float
    site_rank: int
    shard: int = 0

    def validate(self, num_sites: int, num_shards: int) -> None:
        if self.at_ms <= 0:
            raise ValueError("Restart.at_ms must be positive")
        _check_rank(self.site_rank, num_sites)
        _check_shard(self.shard, num_shards)


@dataclass(frozen=True)
class Partition:
    """Bidirectional network partition between site groups, then heal.

    ``groups`` lists disjoint groups of site ranks; messages between sites
    in different groups are dropped from ``at_ms`` until ``heal_at_ms``.
    Sites not listed in any group keep full connectivity.  Messages dropped
    while the partition is up stay lost (fair-lossy links) — liveness after
    the heal relies on the protocols' retransmission/recovery machinery.
    """

    at_ms: float
    heal_at_ms: float
    groups: Tuple[Tuple[int, ...], ...]

    def __init__(
        self,
        at_ms: float,
        heal_at_ms: float,
        groups: Iterable[Iterable[int]],
    ) -> None:
        object.__setattr__(self, "at_ms", at_ms)
        object.__setattr__(self, "heal_at_ms", heal_at_ms)
        object.__setattr__(
            self, "groups", tuple(tuple(group) for group in groups)
        )

    def validate(self, num_sites: int, num_shards: int) -> None:
        if self.at_ms <= 0:
            raise ValueError("Partition.at_ms must be positive")
        if self.heal_at_ms <= self.at_ms:
            raise ValueError("Partition.heal_at_ms must be after at_ms")
        if len(self.groups) < 2:
            raise ValueError("Partition needs at least two groups")
        seen = set()
        for group in self.groups:
            for rank in group:
                _check_rank(rank, num_sites)
                if rank in seen:
                    raise ValueError(f"site rank {rank} appears in two groups")
                seen.add(rank)


@dataclass(frozen=True)
class FlakyLink:
    """Degradation window on one link (or a whole site, or every link).

    Between ``at_ms`` and ``until_ms``, messages crossing the selected
    site-to-site link(s) gain ``extra_delay_ms`` plus a uniform jitter draw
    in ``[0, jitter_ms)`` and are dropped with ``drop_probability``.  With
    ``site_b=None`` every link touching ``site_a`` degrades; with
    ``site_a=None`` (and ``site_b=None``) every cross-site link does —
    the sustained-loss shape.  All randomness draws from the network's
    dedicated fault RNG stream.
    """

    at_ms: float
    until_ms: float
    site_a: Optional[int] = None
    site_b: Optional[int] = None
    extra_delay_ms: float = 0.0
    jitter_ms: float = 0.0
    drop_probability: float = 0.0

    def validate(self, num_sites: int, num_shards: int) -> None:
        if self.at_ms <= 0:
            raise ValueError("FlakyLink.at_ms must be positive")
        if self.until_ms <= self.at_ms:
            raise ValueError("FlakyLink.until_ms must be after at_ms")
        if self.site_a is None and self.site_b is not None:
            raise ValueError("FlakyLink.site_b requires site_a")
        for rank in (self.site_a, self.site_b):
            if rank is not None:
                _check_rank(rank, num_sites)
        if self.site_a is not None and self.site_a == self.site_b:
            raise ValueError("FlakyLink needs two distinct sites")
        if self.extra_delay_ms < 0 or self.jitter_ms < 0:
            raise ValueError("FlakyLink delay/jitter must be non-negative")
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError("FlakyLink.drop_probability must be in [0, 1]")
        if (
            self.extra_delay_ms == 0
            and self.jitter_ms == 0
            and self.drop_probability == 0
        ):
            raise ValueError("FlakyLink degrades nothing")


@dataclass(frozen=True)
class TargetedLoss:
    """Message-class-targeted loss window (e.g. cross-partition MStable).

    Between ``at_ms`` and ``until_ms``, messages whose class name is
    ``kind`` are dropped with ``probability``.  ``cross_shard_only``
    restricts the loss to messages between processes of *different*
    protocol partitions (shards) — the multi-shard stability notifications
    the paper's happy-path figures never lose.
    """

    at_ms: float
    until_ms: float
    kind: str
    probability: float = 1.0
    cross_shard_only: bool = False

    def validate(self, num_sites: int, num_shards: int) -> None:
        if self.at_ms <= 0:
            raise ValueError("TargetedLoss.at_ms must be positive")
        if self.until_ms <= self.at_ms:
            raise ValueError("TargetedLoss.until_ms must be after at_ms")
        if not self.kind:
            raise ValueError("TargetedLoss.kind must be a message class name")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("TargetedLoss.probability must be in (0, 1]")
        if self.cross_shard_only and num_shards < 2:
            raise ValueError(
                "TargetedLoss.cross_shard_only needs a multi-shard deployment"
            )


FaultEvent = Union[Crash, Restart, Partition, FlakyLink, TargetedLoss]


def _check_rank(rank: int, num_sites: int) -> None:
    if not 0 <= rank < num_sites:
        raise ValueError(f"site rank {rank} out of range (num_sites={num_sites})")


def _check_shard(shard: int, num_shards: int) -> None:
    if not 0 <= shard < num_shards:
        raise ValueError(f"shard {shard} out of range (num_shards={num_shards})")


@dataclass(frozen=True)
class FaultPlan:
    """A validated timeline of fault events, sorted by activation time.

    The sort is stable, so events sharing one ``at_ms`` keep their given
    order; the injector schedules them in timeline order, which the
    simulator's FIFO timestamp lanes preserve exactly.
    """

    events: Tuple[FaultEvent, ...]

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        # Tolerate non-events here so validate() gets to raise its
        # descriptive TypeError instead of the sort key blowing up.
        ordered = sorted(events, key=lambda event: getattr(event, "at_ms", 0.0))
        object.__setattr__(self, "events", tuple(ordered))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def validate(self, num_sites: int, num_shards: int) -> "FaultPlan":
        """Check every event against the deployment shape; returns self."""
        for event in self.events:
            if not hasattr(event, "validate"):
                raise TypeError(f"not a fault event: {event!r}")
            event.validate(num_sites, num_shards)
        return self

    @classmethod
    def from_legacy_crash(
        cls, crash_site_rank: int, crash_shard: int, crash_at_ms: float
    ) -> "FaultPlan":
        """Compile the legacy single-crash knobs into a one-event plan."""
        return cls(
            [Crash(at_ms=crash_at_ms, site_rank=crash_site_rank, shard=crash_shard)]
        )
