"""In-memory key-value store replicated by the SMR protocols."""

from repro.kvstore.store import KeyValueStore
from repro.kvstore.sharding import ShardMap

__all__ = ["KeyValueStore", "ShardMap"]
