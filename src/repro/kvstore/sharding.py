"""Shard and partition mapping for partial replication (§6.4).

The paper defines a *shard* as a set of partitions co-located on the same
machine; each YCSB key is its own partition and each shard holds 1M keys.
This module provides the mapping from keys to partitions to shards that the
partial-replication experiments and the Janus*/Tempo multi-partition
deployments use.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.commands import Partitioner


class ShardMap:
    """Maps keys onto shards and shards onto groups of processes.

    In this reproduction a *partition* (in the protocol sense) corresponds to
    one shard: the protocol state machine per shard orders all keys of that
    shard.  This matches how the paper's implementation co-locates the
    partitions of a shard in one protocol instance per machine.
    """

    def __init__(self, num_shards: int, keys_per_shard: int = 1_000_000) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if keys_per_shard < 1:
            raise ValueError("keys_per_shard must be >= 1")
        self.num_shards = num_shards
        self.keys_per_shard = keys_per_shard

    def shard_of_key(self, key: str) -> int:
        """Shard holding ``key``.

        YCSB-style keys (``user<number>``) are mapped round-robin by their
        numeric suffix so that load spreads uniformly; other keys fall back
        to a stable string hash.
        """
        digits = "".join(ch for ch in key if ch.isdigit())
        if digits:
            return int(digits) % self.num_shards
        digest = 0
        for ch in key:
            digest = (digest * 131 + ord(ch)) % (2**31)
        return digest % self.num_shards

    def key_for(self, shard: int, index: int) -> str:
        """The ``index``-th key of ``shard`` (inverse of :meth:`shard_of_key`)."""
        if not 0 <= shard < self.num_shards:
            raise ValueError("shard out of range")
        if not 0 <= index < self.keys_per_shard:
            raise ValueError("index out of range")
        return f"user{index * self.num_shards + shard}"

    def total_keys(self) -> int:
        return self.num_shards * self.keys_per_shard

    def partitioner(self) -> Partitioner:
        """A :class:`Partitioner` treating each shard as one partition."""
        shard_map = self

        class _ShardPartitioner(Partitioner):
            def __init__(self) -> None:
                super().__init__(num_partitions=shard_map.num_shards)

            def partition_of(self, key: str) -> int:
                return shard_map.shard_of_key(key)

        return _ShardPartitioner()

    def shards_of(self, keys: Sequence[str]) -> List[int]:
        """Distinct shards accessed by ``keys``, sorted."""
        return sorted({self.shard_of_key(key) for key in keys})

    def distribution(self, keys: Sequence[str]) -> Dict[int, int]:
        """How many of ``keys`` fall on each shard."""
        histogram: Dict[int, int] = {}
        for key in keys:
            shard = self.shard_of_key(key)
            histogram[shard] = histogram.get(shard, 0) + 1
        return histogram
