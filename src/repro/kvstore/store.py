"""A deterministic in-memory key-value store.

This is the state machine the SMR protocols replicate.  It applies
:class:`repro.core.commands.Command` objects: writes store the command's
value for the key, reads return the current value.  The store records the
sequence of applied commands, which the linearizability/ordering checks in
the test suite rely on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.commands import Command
from repro.core.identifiers import Dot


class KeyValueStore:
    """Single-partition deterministic key-value store."""

    def __init__(self, partition: int = 0) -> None:
        self.partition = partition
        self._data: Dict[str, Optional[str]] = {}
        self._applied: List[Dot] = []
        self._applied_set: Set[Dot] = set()
        self._writes_per_key: Dict[str, int] = {}

    def apply(self, command: Command) -> Dict[str, Optional[str]]:
        """Apply ``command`` and return the per-key results.

        For a write, the result maps the key to the value written; for a
        read, it maps the key to the value read (``None`` if absent).
        Applying the same command twice is rejected, which enforces the
        Validity property (a command is executed at most once).
        """
        if command.dot in self._applied_set:
            raise ValueError(f"command {command.dot} applied twice")
        results: Dict[str, Optional[str]] = {}
        for op in command.ops:
            if op.is_write():
                self._data[op.key] = op.value
                self._writes_per_key[op.key] = self._writes_per_key.get(op.key, 0) + 1
                results[op.key] = op.value
            else:
                results[op.key] = self._data.get(op.key)
        self._applied.append(command.dot)
        self._applied_set.add(command.dot)
        return results

    def get(self, key: str) -> Optional[str]:
        """Current value of ``key`` (``None`` when absent)."""
        return self._data.get(key)

    def keys(self) -> List[str]:
        """Keys currently present in the store."""
        return sorted(self._data)

    def applied_commands(self) -> Tuple[Dot, ...]:
        """Identifiers applied so far, in application order."""
        return tuple(self._applied)

    def writes_to(self, key: str) -> int:
        """Number of writes applied to ``key``."""
        return self._writes_per_key.get(key, 0)

    def __len__(self) -> int:
        return len(self._data)

    def snapshot(self) -> Dict[str, Optional[str]]:
        """Copy of the current contents."""
        return dict(self._data)
