"""Latency and throughput metrics."""

from repro.metrics.histogram import LatencyHistogram
from repro.metrics.throughput import ThroughputTracker
from repro.metrics.report import ExperimentReport, format_table

__all__ = [
    "ExperimentReport",
    "LatencyHistogram",
    "ThroughputTracker",
    "format_table",
]
