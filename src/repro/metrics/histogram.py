"""Latency histograms and percentile computation.

The evaluation reports mean per-site latency (Figure 5) and tail percentiles
from the 95th to the 99.99th (Figure 6); this module provides both.

Percentile semantics
--------------------

Percentiles use the *nearest-rank* definition: the ``p``-th percentile of
``n`` sorted samples is the sample at rank ``ceil(p / 100 * n)`` (1-based).
Because ``p`` arrives as a binary float, the product ``p / 100 * n`` can land
an ulp *above* an exact integer rank (e.g. ``99.9 / 100 * 1000`` evaluates to
``999.0000000000001``), which would push ``ceil`` one rank too high.  The
rank computation therefore applies a ``1e-9`` tolerance before ``ceil`` so
ranks that are integral up to float error stay at the exact rank.

Streaming summaries
-------------------

:class:`LatencyHistogram` keeps running count/sum/min/max aggregates, so
``mean``/``minimum``/``maximum`` (and the non-percentile part of
``summary``) are O(1) queries that never touch or sort the sample list;
samples are sorted lazily, at most once per batch of inserts, and only when
a percentile is actually requested.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

#: Tolerance applied before ``ceil`` in the nearest-rank computation, making
#: it immune to binary floating-point error in ``percentile / 100 * n``.
_RANK_EPSILON = 1e-9


def nearest_rank(percentile: float, count: int) -> int:
    """1-based nearest rank of ``percentile`` among ``count`` samples.

    Computes ``ceil(percentile / 100 * count)`` with a ``1e-9`` tolerance so
    binary-float error cannot push an exact integer rank one step up.
    """
    return math.ceil(percentile / 100.0 * count - _RANK_EPSILON)


class LatencyHistogram:
    """Collects latency samples (milliseconds) and answers summary queries."""

    def __init__(self, samples: Optional[Iterable[float]] = None) -> None:
        self._samples: List[float] = []
        self._sorted = True
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        if samples is not None:
            for sample in samples:
                self.record(sample)

    def record(self, latency_ms: float) -> None:
        """Record one latency sample."""
        if latency_ms < 0:
            raise ValueError("latency samples must be non-negative")
        value = float(latency_ms)
        self._samples.append(value)
        self._sorted = False
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Merge another histogram into this one (in place) and return self."""
        if other._samples:
            self._samples.extend(other._samples)
            self._sorted = False
            self._sum += other._sum
            if other._min < self._min:
                self._min = other._min
            if other._max > self._max:
                self._max = other._max
        return self

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True

    def __len__(self) -> int:
        return len(self._samples)

    def is_empty(self) -> bool:
        return not self._samples

    def mean(self) -> float:
        """Average latency (0 when empty)."""
        if not self._samples:
            return 0.0
        return self._sum / len(self._samples)

    def minimum(self) -> float:
        if not self._samples:
            return 0.0
        return self._min

    def maximum(self) -> float:
        if not self._samples:
            return 0.0
        return self._max

    def percentile(self, percentile: float) -> float:
        """Latency at the given percentile (nearest-rank, e.g. 99.9)."""
        if not 0.0 < percentile <= 100.0:
            raise ValueError("percentile must be in (0, 100]")
        if not self._samples:
            return 0.0
        self._ensure_sorted()
        rank = nearest_rank(percentile, len(self._samples))
        index = min(len(self._samples) - 1, max(0, rank - 1))
        return self._samples[index]

    def percentiles(self, which: Sequence[float] = (95.0, 99.0, 99.9, 99.99)) -> Dict[float, float]:
        """A batch of percentiles, matching Figure 6's x-axis by default."""
        return {percentile: self.percentile(percentile) for percentile in which}

    def summary(self) -> Dict[str, float]:
        """Mean / p50 / p95 / p99 / p99.9 / p99.99 / max in one dictionary."""
        return {
            "count": float(len(self._samples)),
            "mean": self.mean(),
            "p50": self.percentile(50.0) if self._samples else 0.0,
            "p95": self.percentile(95.0) if self._samples else 0.0,
            "p99": self.percentile(99.0) if self._samples else 0.0,
            "p99.9": self.percentile(99.9) if self._samples else 0.0,
            "p99.99": self.percentile(99.99) if self._samples else 0.0,
            "max": self.maximum(),
        }

    def samples(self) -> List[float]:
        """Copy of the recorded samples."""
        return list(self._samples)
