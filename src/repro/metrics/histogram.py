"""Latency histograms and percentile computation.

The evaluation reports mean per-site latency (Figure 5) and tail percentiles
from the 95th to the 99.99th (Figure 6); this module provides both.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence


class LatencyHistogram:
    """Collects latency samples (milliseconds) and answers summary queries."""

    def __init__(self, samples: Optional[Iterable[float]] = None) -> None:
        self._samples: List[float] = []
        self._sorted = True
        if samples is not None:
            for sample in samples:
                self.record(sample)

    def record(self, latency_ms: float) -> None:
        """Record one latency sample."""
        if latency_ms < 0:
            raise ValueError("latency samples must be non-negative")
        self._samples.append(float(latency_ms))
        self._sorted = False

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Merge another histogram into this one (in place) and return self."""
        self._samples.extend(other._samples)
        self._sorted = False
        return self

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True

    def __len__(self) -> int:
        return len(self._samples)

    def is_empty(self) -> bool:
        return not self._samples

    def mean(self) -> float:
        """Average latency (0 when empty)."""
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def minimum(self) -> float:
        if not self._samples:
            return 0.0
        self._ensure_sorted()
        return self._samples[0]

    def maximum(self) -> float:
        if not self._samples:
            return 0.0
        self._ensure_sorted()
        return self._samples[-1]

    def percentile(self, percentile: float) -> float:
        """Latency at the given percentile (nearest-rank, e.g. 99.9)."""
        if not 0.0 < percentile <= 100.0:
            raise ValueError("percentile must be in (0, 100]")
        if not self._samples:
            return 0.0
        self._ensure_sorted()
        rank = math.ceil(percentile / 100.0 * len(self._samples))
        index = min(len(self._samples) - 1, max(0, rank - 1))
        return self._samples[index]

    def percentiles(self, which: Sequence[float] = (95.0, 99.0, 99.9, 99.99)) -> Dict[float, float]:
        """A batch of percentiles, matching Figure 6's x-axis by default."""
        return {percentile: self.percentile(percentile) for percentile in which}

    def summary(self) -> Dict[str, float]:
        """Mean / p50 / p95 / p99 / p99.9 / p99.99 / max in one dictionary."""
        return {
            "count": float(len(self._samples)),
            "mean": self.mean(),
            "p50": self.percentile(50.0) if self._samples else 0.0,
            "p95": self.percentile(95.0) if self._samples else 0.0,
            "p99": self.percentile(99.0) if self._samples else 0.0,
            "p99.9": self.percentile(99.9) if self._samples else 0.0,
            "p99.99": self.percentile(99.99) if self._samples else 0.0,
            "max": self.maximum(),
        }

    def samples(self) -> List[float]:
        """Copy of the recorded samples."""
        return list(self._samples)
