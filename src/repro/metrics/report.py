"""Experiment reports and plain-text table rendering.

Every experiment driver in :mod:`repro.experiments` returns an
:class:`ExperimentReport`; the benchmark harness prints them with
:func:`format_table` so the rows/series of the paper's tables and figures
can be eyeballed directly from the bench output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.metrics.histogram import LatencyHistogram


@dataclass
class ExperimentReport:
    """Outcome of one experiment run (one protocol, one configuration)."""

    name: str
    protocol: str
    parameters: Dict[str, object] = field(default_factory=dict)
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    per_site_latency: Dict[str, LatencyHistogram] = field(default_factory=dict)
    throughput_ops: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    def mean_latency(self) -> float:
        return self.latency.mean()

    def site_means(self) -> Dict[str, float]:
        return {site: histogram.mean() for site, histogram in self.per_site_latency.items()}

    def tail(self, percentile: float) -> float:
        return self.latency.percentile(percentile)

    def row(self) -> Dict[str, object]:
        """Flat dictionary used by the table renderer."""
        row: Dict[str, object] = {"protocol": self.protocol}
        row.update(self.parameters)
        summary = self.latency.summary()
        row.update(
            {
                "mean_ms": round(summary["mean"], 1),
                "p99_ms": round(summary["p99"], 1),
                "p99.9_ms": round(summary["p99.9"], 1),
                "throughput_ops": round(self.throughput_ops, 1),
            }
        )
        row.update({key: round(value, 3) for key, value in self.extra.items()})
        return row


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[List[str]] = None,
    title: str = "",
) -> str:
    """Render rows as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    widths = {
        column: max(len(str(column)), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for row in rows:
        lines.append(
            " | ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)
