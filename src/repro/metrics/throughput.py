"""Throughput accounting for closed-loop experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class ThroughputTracker:
    """Counts completed commands over simulated time.

    Operations completed before ``warmup_ms`` are excluded, mirroring the
    warm-up discard used by benchmarking harnesses.
    """

    warmup_ms: float = 0.0
    completed: int = 0
    ignored: int = 0
    first_completion: float = 0.0
    last_completion: float = 0.0
    per_site: Dict[str, int] = field(default_factory=dict)

    def record(self, now: float, site: str = "") -> None:
        """Record one completed command at simulated time ``now`` (ms)."""
        if now < self.warmup_ms:
            self.ignored += 1
            return
        if self.completed == 0:
            self.first_completion = now
        self.completed += 1
        self.last_completion = now
        if site:
            self.per_site[site] = self.per_site.get(site, 0) + 1

    def duration_ms(self) -> float:
        """Measurement window length in milliseconds."""
        if self.completed < 2:
            return 0.0
        return self.last_completion - self.first_completion

    def ops_per_second(self) -> float:
        """Completed commands per second of simulated time.

        Interval-based rate: ``completed - 1`` inter-completion intervals
        span the ``[first_completion, last_completion]`` window, so counting
        ``completed`` events over that window would overstate the rate (11
        completions at 0, 100, .. 1000 ms are 10 ops/s, not 11).
        """
        duration = self.duration_ms()
        if duration <= 0:
            return 0.0
        return (self.completed - 1) / (duration / 1000.0)

    def ops_per_second_per_site(self) -> Dict[str, float]:
        """Per-site completion counts over the shared measurement window.

        Deliberately count-based (events per second of the global window):
        a site's completions are a subset of the window-defining events, so
        there is no per-site fencepost to correct.  Consequently the values
        sum to ``completed / window`` — one interval more than
        :meth:`ops_per_second`'s interval-based total.
        """
        duration = self.duration_ms()
        if duration <= 0:
            return {site: 0.0 for site in self.per_site}
        return {
            site: count / (duration / 1000.0) for site, count in self.per_site.items()
        }
