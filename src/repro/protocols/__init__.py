"""Baseline SMR protocols the paper evaluates Tempo against (§6).

* :class:`repro.protocols.fpaxos.FPaxosProcess` — leader-based Flexible
  Paxos with phase-2 quorums of ``f + 1``.
* :class:`repro.protocols.epaxos.EPaxosProcess` — Egalitarian Paxos,
  leaderless with explicit dependencies and fast quorums of ``floor(3r/4)``.
* :class:`repro.protocols.atlas.AtlasProcess` — Atlas, like EPaxos but with
  fast quorums of ``floor(r/2) + f`` and a more permissive fast-path rule.
* :class:`repro.protocols.caesar.CaesarProcess` — Caesar, timestamp ordering
  with explicit dependencies and the blocking wait condition.
* :class:`repro.protocols.janus.JanusProcess` — Janus*, the Atlas-based
  generalization of Janus to partial replication (non-genuine).

All protocols implement the :class:`repro.core.base.ProcessBase` interface so
the simulator, the cluster runner and the tests drive them uniformly.
"""

from repro.protocols.atlas import AtlasProcess
from repro.protocols.caesar import CaesarProcess
from repro.protocols.depgraph import DependencyGraph, DependencyGraphExecutor
from repro.protocols.dependency import DependencyProtocolProcess
from repro.protocols.epaxos import EPaxosProcess
from repro.protocols.fpaxos import FPaxosProcess
from repro.protocols.janus import JanusProcess
from repro.protocols.registry import PROTOCOLS, build_process, protocol_names

__all__ = [
    "AtlasProcess",
    "CaesarProcess",
    "DependencyGraph",
    "DependencyGraphExecutor",
    "DependencyProtocolProcess",
    "EPaxosProcess",
    "FPaxosProcess",
    "JanusProcess",
    "PROTOCOLS",
    "build_process",
    "protocol_names",
]
