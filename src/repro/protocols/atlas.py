"""Atlas (EuroSys'20) — dependency-based leaderless SMR with small quorums.

Atlas differs from EPaxos in two ways that matter for the evaluation (§6):

* fast quorums have size ``floor(r/2) + f`` (the same as Tempo), so with
  ``f = 1`` they are plain majorities;
* the fast path commits the *union* of the reported dependencies and is
  taken whenever every dependency in the union can be recovered after ``f``
  failures, i.e. when each one was reported by at least ``f`` fast-quorum
  members.  With ``f = 1`` this always holds, so Atlas ``f = 1`` never takes
  the slow path.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.core.identifiers import Dot
from repro.protocols.dependency import DependencyProtocolProcess


class AtlasProcess(DependencyProtocolProcess):
    """An Atlas replica."""

    name = "atlas"

    def fast_quorum_size(self) -> int:
        """Atlas fast quorums contain ``floor(r/2) + f`` processes."""
        return self.config.fast_quorum_size

    def slow_quorum_size(self) -> int:
        """The slow path uses Flexible-Paxos quorums of ``f + 1``."""
        return self.config.slow_quorum_size

    def allows_fast_path(
        self,
        union_deps: FrozenSet[Dot],
        acks: Dict[int, Tuple[FrozenSet[Dot], int]],
        coordinator: int,
    ) -> bool:
        """Each dependency in the union must be reported by at least ``f``
        fast-quorum members, which makes it recoverable after ``f`` crashes.

        The coordinator's own report counts: its dependencies are known to
        the recovery procedure through the command identifier's initial
        coordinator rules (as in the Atlas paper).
        """
        if self.config.faults == 1:
            return True
        # ``levels[k]`` accumulates the dependencies reported by at least
        # ``k + 1`` fast-quorum members; set algebra keeps the check
        # O(total reported deps) instead of O(union x quorum) per command.
        faults = self.config.faults
        levels: List[Set[Dot]] = [set() for _ in range(faults)]
        for deps, _ in acks.values():
            for level in range(faults - 1, 0, -1):
                levels[level] |= levels[level - 1] & deps
            levels[0] |= deps
        return union_deps <= levels[faults - 1]
