"""Caesar (DSN'17) — timestamp ordering with explicit dependencies.

Caesar assigns each command a unique timestamp and executes commands in
timestamp order; dependencies are used to detect when a timestamp is stable
(§3.3).  The protocol's distinguishing feature — and its weakness, which the
paper demonstrates analytically (§D) and experimentally (§6) — is the *wait
condition*: a replica that receives a proposal ``(c, t)`` while it knows a
conflicting, not-yet-committed command with a higher timestamp must delay
its reply until that command commits.  This blocking sits on the critical
path of every contended command and produces both extra latency and the
pathological scenarios of §D.

This implementation reproduces:

* unique timestamp proposals ``(clock, process rank)``;
* fast quorums of size ``ceil(3r/4)``;
* the blocking wait condition, with deferred replies re-evaluated whenever a
  conflicting command commits;
* dependency collection (conflicting commands with smaller timestamps) and
  execution in timestamp order gated on dependency commitment.

Simplification (documented in DESIGN.md): the rejection/retry slow path of
Caesar is reduced to a single retry round that accepts the coordinator's
timestamp, because the evaluation's Caesar* variant measures commit-time
behaviour (commands are "executed as soon as committed", §6.3) and the
dominant effect is the wait condition, which is fully modelled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.base import Envelope, ProcessBase
from repro.core.commands import Command, Partitioner
from repro.core.config import ProtocolConfig
from repro.core.gc import GcTracker
from repro.core.identifiers import Dot, DotGenerator, intern_dot
from repro.core.messages import ClientReply, MDeliveryAck, MExecutedClock
from repro.core.quorums import QuorumSystem
from repro.protocols.dep_messages import (
    MCaesarCommit,
    MCaesarPropose,
    MCaesarProposeAck,
)
from repro.reliability import TRACKED_KIND_IDS

ApplyFn = Callable[[Command], Optional[Dict[str, Optional[str]]]]

Timestamp = Tuple[int, int]

#: Wire kind byte stamped into delivery acks for MCaesarCommit.
_ACK_KIND_MCAESARCOMMIT = TRACKED_KIND_IDS["MCaesarCommit"]


@dataclass
class CaesarInfo:
    """Per-command state at a Caesar replica."""

    command: Optional[Command] = None
    timestamp: Timestamp = (0, 0)
    dependencies: FrozenSet[Dot] = frozenset()
    status: str = "start"  # start | propose | commit | execute
    acks: Dict[int, FrozenSet[Dot]] = field(default_factory=dict)
    submitted_here: bool = False
    submitted_at: Optional[float] = None
    committed_at: Optional[float] = None
    #: Dependencies not yet executed here (populated at commit time);
    #: the stability check walks only this live remainder instead of the
    #: full history-sized dependency set.
    live_deps: Optional[Set[Dot]] = None


@dataclass
class _DeferredReply:
    """A proposal reply delayed by the wait condition."""

    dot: Dot
    coordinator: int
    since: float
    #: Monotonic sequence number preserving the original deferral order, so
    #: re-evaluation (and therefore the reply order) matches the historical
    #: single-list scan exactly.
    sequence: int = 0
    #: Keys the deferred command conflicts on, captured at deferral time so
    #: index cleanup never needs the (possibly collected) command record.
    keys: Tuple[str, ...] = ()


class CaesarProcess(ProcessBase):
    """A Caesar replica."""

    name = "caesar"

    def __init__(
        self,
        process_id: int,
        config: ProtocolConfig,
        partitioner: Optional[Partitioner] = None,
        quorum_system: Optional[QuorumSystem] = None,
        apply_fn: Optional[ApplyFn] = None,
        watermark_gc: bool = True,
    ) -> None:
        super().__init__(process_id, config)
        self.partitioner = partitioner or Partitioner(config.num_partitions)
        self.quorum_system = quorum_system or QuorumSystem(config)
        self.apply_fn = apply_fn
        #: Epoch-2 GC: globally-executed watermark exchange with the
        #: partition peers (see :mod:`repro.core.gc`); ``None`` disables
        #: collection entirely (epoch-1 behaviour).
        self.gc: Optional[GcTracker] = (
            GcTracker(process_id, self.partition_peers()) if watermark_gc else None
        )
        self._last_gc_announce = float("-inf")
        self.dot_generator = DotGenerator(process_id)
        self.clock = 0
        self._info: Dict[Dot, CaesarInfo] = {}
        #: Per-key set of *live* (known but not yet committed) commands —
        #: the only ones the wait condition can block on.  Pruned on commit,
        #: so its peak size is bounded by in-flight commands.
        self._known_per_key: Dict[str, Set[Dot]] = {}
        #: Per-key archive of committed/executed commands and their final
        #: timestamps.  Dependency collection unions it back in, so pruning
        #: the live sets never changes an emitted dependency set.
        self._committed_per_key: Dict[str, Dict[Dot, Timestamp]] = {}
        #: Dots executed at this replica (status "execute"), kept as a set
        #: so commit-time stability bookkeeping can subtract the executed
        #: history in one C-level operation.
        self._executed_dots: Set[Dot] = set()
        #: High-water mark over the per-key live sets, the boundedness
        #: witness used by the pruning regression tests.
        self.peak_live_per_key = 0
        #: Replies delayed by the wait condition, keyed by sequence number
        #: (insertion-ordered) and indexed by conflicting key: a commit only
        #: re-evaluates the deferred replies that share a key with the
        #: committed command, instead of rescanning the whole deferred list.
        self._deferred: Dict[int, _DeferredReply] = {}
        self._deferred_by_key: Dict[str, Set[int]] = {}
        self._deferred_sequence = 0
        #: Min-heap of ``(timestamp, dot)`` over committed-but-unexecuted
        #: commands; its head is the execution candidate (see _try_execute).
        self._commit_heap: List[Tuple[Timestamp, Dot]] = []
        self._dispatch: Dict[type, Callable[[int, object, float], None]] = {
            MCaesarPropose: self._on_propose,
            MCaesarProposeAck: self._on_propose_ack,
            MCaesarCommit: self._on_commit,
            MExecutedClock: self._on_executed_clock,
            MDeliveryAck: self._on_delivery_ack,
        }
        #: Commands whose replies are currently blocked (for observability
        #: and for the §D pathological-scenario experiments).
        self.blocked_replies_ever = 0

    # -- helpers -----------------------------------------------------------------

    def info(self, dot: Dot) -> CaesarInfo:
        record = self._info.get(dot)
        if record is None:
            record = CaesarInfo()
            self._info[dot] = record
        return record

    def status_of(self, dot: Dot) -> str:
        record = self._info.get(dot)
        if record is None:
            if self.gc is not None and self.gc.collected(dot):
                return "execute"
            return "start"
        return record.status

    def new_command(
        self, keys, payload_size: int = 100, client_id: Optional[int] = None
    ) -> Command:
        return Command.write(
            self.dot_generator.next_id(),
            keys,
            payload_size=payload_size,
            client_id=client_id,
        )

    def _next_timestamp(self) -> Timestamp:
        self.clock += 1
        return (self.clock, self.config.rank_in_partition(self.process_id))

    def _register(self, command: Command) -> None:
        """Track a not-yet-committed command in the live per-key sets."""
        dot = command.dot
        committed = self._committed_per_key
        for key in command.keys:
            if dot in committed.get(key, ()):
                continue
            live = self._known_per_key.setdefault(key, set())
            live.add(dot)
            if len(live) > self.peak_live_per_key:
                self.peak_live_per_key = len(live)

    def _register_committed(self, command: Command, timestamp: Timestamp) -> None:
        """Move a command from the live sets into the committed archive."""
        dot = command.dot
        known = self._known_per_key
        committed = self._committed_per_key
        for key in command.keys:
            live = known.get(key)
            if live is not None:
                live.discard(dot)
                if not live:
                    del known[key]
            committed.setdefault(key, {})[dot] = timestamp

    def _fast_quorum(self) -> List[int]:
        members = self.config.processes_of_partition(self.partition)
        size = min(self.config.caesar_fast_quorum_size, len(members))
        others = sorted(
            (member for member in members if member != self.process_id),
            key=lambda member: (
                self.quorum_system._distance(self.process_id, member),
                member,
            ),
        )
        return [self.process_id] + others[: size - 1]

    # -- submission ----------------------------------------------------------------

    def submit(self, command: Command, now: float = 0.0) -> None:
        record = self.info(command.dot)
        record.command = command
        record.submitted_here = True
        record.submitted_at = now
        record.status = "propose"
        record.timestamp = self._next_timestamp()
        self._register(command)
        self.send(
            self._fast_quorum(),
            MCaesarPropose(command.dot, command, record.timestamp),
            now,
        )

    # -- message handling -------------------------------------------------------------

    def on_message(self, sender: int, message: object, now: float) -> None:
        handler = self._dispatch.get(message.__class__)
        if handler is None:
            raise TypeError(f"unexpected message {message!r}")
        handler(sender, message, now)

    def _on_propose(self, sender: int, message: MCaesarPropose, now: float) -> None:
        if self.gc is not None and self.gc.collected(message.dot):
            return
        record = self.info(message.dot)
        if record.status in ("commit", "execute"):
            return
        record.command = message.command
        record.timestamp = message.timestamp
        if record.status == "start":
            record.status = "propose"
        self._register(message.command)
        self.clock = max(self.clock, message.timestamp[0])
        if self._wait_condition_blocks(message.dot, now):
            self._defer_reply(message.dot, sender, now)
            return
        self._reply_propose(message.dot, sender, now)

    def _defer_reply(self, dot: Dot, coordinator: int, now: float) -> None:
        """Park a blocked reply, indexed by every key it conflicts on."""
        sequence = self._deferred_sequence
        self._deferred_sequence += 1
        keys = tuple(self._info[dot].command.keys)
        self._deferred[sequence] = _DeferredReply(
            dot, coordinator, now, sequence, keys
        )
        for key in keys:
            self._deferred_by_key.setdefault(key, set()).add(sequence)
        self.blocked_replies_ever += 1

    def _wait_condition_blocks(self, dot: Dot, now: float) -> bool:
        """Caesar's wait condition (§3.3).

        The reply about ``dot`` must wait while some conflicting command with
        a *higher* timestamp is known here but not yet committed: its
        dependency set is still open, so this replica cannot promise that it
        will include ``dot``.
        """
        record = self._info[dot]
        if record.command is None:
            return False
        info = self._info
        known = self._known_per_key
        timestamp = record.timestamp
        for key in record.command.keys:
            # Only live (uncommitted) commands can block, so the scan is
            # bounded by in-flight commands rather than the key's history.
            for other_dot in known.get(key, ()):
                if other_dot == dot:
                    continue
                other = info.get(other_dot)
                if other is None or other.command is None:
                    continue
                if other.timestamp > timestamp:
                    return True
        return False

    def _reply_propose(self, dot: Dot, coordinator: int, now: float) -> None:
        record = self._info[dot]
        info = self._info
        known = self._known_per_key
        committed = self._committed_per_key
        timestamp = record.timestamp
        zero = (0, 0)
        dependencies: Set[Dot] = set()
        for key in record.command.keys:
            # Committed conflicts come from the archive with their final
            # timestamps; live conflicts still consult their records.
            for other_dot, other_timestamp in committed.get(key, {}).items():
                if other_timestamp < timestamp:
                    dependencies.add(other_dot)
            for other_dot in known.get(key, ()):
                if other_dot == dot:
                    continue
                other = info.get(other_dot)
                if other is not None and zero != other.timestamp < timestamp:
                    dependencies.add(other_dot)
        dependencies.discard(dot)
        ack = MCaesarProposeAck(dot, timestamp, frozenset(dependencies), accepted=True)
        self.send([coordinator], ack, now)

    def _on_propose_ack(self, sender: int, message: MCaesarProposeAck, now: float) -> None:
        record = self._info.get(message.dot)
        if record is None or not record.submitted_here or record.status != "propose":
            return
        record.acks[sender] = message.dependencies
        if len(record.acks) < len(self._fast_quorum()):
            return
        dependencies = frozenset().union(*record.acks.values()) if record.acks else frozenset()
        record.dependencies = dependencies
        commit = MCaesarCommit(
            message.dot, record.command, record.timestamp, dependencies
        )
        targets = self.partition_peers()
        self.send(targets, commit, now)
        if self.reliability is not None:
            # Lossy-run safety net: keep the commit buffered until every
            # non-self target acknowledges delivery (see repro.reliability).
            self.reliability.track(targets, commit, now)

    def _on_commit(self, sender: int, message: MCaesarCommit, now: float) -> None:
        if self.reliability is not None and sender != self.process_id:
            # Ack before any dedup/GC early return: a duplicate usually
            # means our first ack was lost.
            self._ack_delivery(sender, _ACK_KIND_MCAESARCOMMIT, message.dot, now)
        if self.gc is not None and self.gc.collected(message.dot):
            return
        record = self.info(message.dot)
        if record.status in ("commit", "execute"):
            return
        record.command = message.command
        record.timestamp = message.timestamp
        record.dependencies = message.dependencies
        record.status = "commit"
        record.committed_at = now
        # Stability only ever has to look at the dependencies that are not
        # yet executed here; the executed history is subtracted once, now.
        live = set(message.dependencies - self._executed_dots)
        if self.gc is not None and live:
            # A peer with a smaller watermark may still list dependencies
            # collected here; those executed everywhere, so they are
            # settled by definition.
            collected = self.gc.collected
            live = {dep for dep in live if not collected(dep)}
        record.live_deps = live
        if record.acks:
            record.acks = {}
        heappush(self._commit_heap, (record.timestamp, message.dot))
        self._register_committed(message.command, message.timestamp)
        self.clock = max(self.clock, message.timestamp[0])
        self._flush_deferred_for(message.command.keys, now)
        self._try_execute(now)

    def _flush_deferred_for(self, keys, now: float) -> None:
        """Re-evaluate the deferred replies conflicting on ``keys``.

        Only a commit can clear the wait condition, and only for deferred
        commands sharing a key with the committed command, so this replaces
        the historical full rescan of the deferred list on every commit.
        Entries are re-evaluated in deferral order, matching the reply
        order of the full scan exactly.
        """
        affected: Set[int] = set()
        for key in keys:
            affected.update(self._deferred_by_key.get(key, ()))
        for sequence in sorted(affected):
            # A reply can synchronously complete a quorum at a self-
            # coordinated command and re-enter this method via _on_commit;
            # entries it resolved are already gone.
            deferred = self._deferred.get(sequence)
            if deferred is None:
                continue
            record = self._info.get(deferred.dot)
            resolved = record is None or record.status in ("commit", "execute")
            if not resolved:
                if self._wait_condition_blocks(deferred.dot, now):
                    continue
                self._reply_propose(deferred.dot, deferred.coordinator, now)
            self._remove_deferred(sequence, deferred)

    def _remove_deferred(self, sequence: int, deferred: _DeferredReply) -> None:
        del self._deferred[sequence]
        # The keys were captured at deferral time, so cleanup works even if
        # the command's record has since been collected by the watermark GC.
        for key in deferred.keys:
            bucket = self._deferred_by_key.get(key)
            if bucket is not None:
                bucket.discard(sequence)
                if not bucket:
                    del self._deferred_by_key[key]

    # -- execution ---------------------------------------------------------------------

    def _try_execute(self, now: float) -> None:
        """Execute committed commands in timestamp order.

        A command may execute once every dependency is committed and every
        dependency with a smaller timestamp has executed (dependency-based
        timestamp stability).  Execution is strictly in timestamp order among
        the commands this replica knows, so an unstable command blocks its
        successors — the behaviour responsible for Caesar's tail latency.

        The committed-but-unexecuted commands wait in a min-heap: only the
        lowest-timestamped one can ever execute (an unstable head blocks the
        rest), so peeking the head replaces re-sorting the whole record
        table on every commit and tick.
        """
        heap = self._commit_heap
        while heap:
            _, dot = heap[0]
            record = self._info[dot]
            if not self._is_stable(record):
                return
            heappop(heap)
            self._execute(dot, record, now)

    def _is_stable(self, record: CaesarInfo) -> bool:
        live = record.live_deps
        if live is None:
            # Not committed here yet (only reachable from tests poking at
            # uncommitted records): fall back to the full dependency scan.
            live = record.live_deps = set(
                record.dependencies - self._executed_dots
            )
        if not live:
            return True
        info = self._info
        gc = self.gc
        timestamp = record.timestamp
        settled: List[Dot] = []
        stable = True
        for dependency in live:
            other = info.get(dependency)
            if other is None:
                if gc is not None and gc.collected(dependency):
                    # Globally executed and collected: settled forever.
                    settled.append(dependency)
                    continue
                stable = False
                break
            status = other.status
            if status == "execute":
                # Permanently satisfied; drop it from the live remainder.
                settled.append(dependency)
                continue
            if status != "commit":
                stable = False
                break
            if other.timestamp < timestamp:
                # Committed with a smaller timestamp but not yet executed:
                # still unstable, and must stay live until it executes.
                stable = False
                break
            # Committed with a larger (final) timestamp: satisfied forever.
            settled.append(dependency)
        for dependency in settled:
            live.discard(dependency)
        return stable

    def _execute(self, dot: Dot, record: CaesarInfo, now: float) -> None:
        result = self.apply_fn(record.command) if self.apply_fn else None
        record.status = "execute"
        self._executed_dots.add(dot)
        record.live_deps = None
        self.record_execution(dot, record.command, now)
        if self.gc is not None:
            self.gc.record_executed(dot)
        if record.submitted_here and record.command.client_id is not None:
            self.outbox.append(
                Envelope(
                    sender=self.process_id,
                    destination=-(record.command.client_id + 1),
                    message=ClientReply(dot, result=result),
                )
            )

    def tick(self, now: float) -> None:
        # No deferred flush here: only a commit can clear the wait
        # condition, and _on_commit already re-evaluates the replies
        # conflicting with the committed command via the per-key index.
        self._try_execute(now)
        if now - self._last_gc_announce >= self.config.gc_interval:
            self._last_gc_announce = now
            self._gc_announce(now)
        self._reliability_tick(now)

    # -- watermark GC -------------------------------------------------------------------

    def _gc_announce(self, now: float) -> None:
        """Announce the local executed clock to the partition peers (only
        when the frontier advanced since the last announcement)."""
        gc = self.gc
        if gc is None:
            return
        clock = gc.announcement()
        if clock:
            sentinel = Dot(self.process_id, self.dot_generator.peek().sequence)
            targets = [
                process for process in self.partition_peers()
                if process != self.process_id
            ]
            if targets:
                self.send(targets, MExecutedClock(sentinel, clock=clock), now)
        self._gc_sweep()

    def _on_executed_clock(
        self, sender: int, message: MExecutedClock, now: float
    ) -> None:
        gc = self.gc
        if gc is None:
            return
        gc.ingest(sender, message.clock)
        self._gc_sweep()

    def _gc_sweep(self) -> None:
        gc = self.gc
        if gc is None:
            return
        for source, lo, hi in gc.advance():
            for sequence in range(lo, hi + 1):
                self._collect(intern_dot(source, sequence))

    def _collect(self, dot: Dot) -> None:
        """Forget a globally-executed dot: its record, its committed-
        timestamp archive entries and its executed-set membership."""
        record = self._info.pop(dot, None)
        assert record is None or record.status == "execute", (
            f"collecting {dot} in status {record.status}: watermark ran "
            "ahead of local execution"
        )
        if record is not None and record.command is not None:
            committed = self._committed_per_key
            for key in record.command.keys:
                archive = committed.get(key)
                if archive is not None and archive.pop(dot, None) is not None:
                    if not archive:
                        del committed[key]
        self._executed_dots.discard(dot)

    # -- introspection -------------------------------------------------------------------

    def blocked_count(self) -> int:
        """Number of replies currently delayed by the wait condition."""
        return len(self._deferred)

    def memory_footprint(self) -> Dict[str, int]:
        footprint = super().memory_footprint()
        footprint["archived"] = sum(
            len(bucket) for bucket in self._committed_per_key.values()
        )
        footprint["peak_live_per_key"] = self.peak_live_per_key
        return footprint

    def committed_dots(self) -> List[Dot]:
        return [
            dot
            for dot, record in self._info.items()
            if record.status in ("commit", "execute")
        ]
