"""Messages used by the dependency-based protocols (EPaxos, Atlas, Janus*)
and by Caesar.

They mirror the structure of the Tempo messages in
:mod:`repro.core.messages` and implement the same ``size_bytes`` interface
for the resource model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Mapping, Tuple

from repro.core.commands import Command
from repro.core.identifiers import Dot
from repro.core.messages import Message

_HEADER_BYTES = 24
_DEP_BYTES = 12


def _deps_size(dependencies: FrozenSet[Dot]) -> int:
    return _DEP_BYTES * len(dependencies)


@dataclass(frozen=True)
class MPreAccept(Message):
    """Coordinator -> fast quorum: command plus initial dependencies."""

    command: Command
    dependencies: FrozenSet[Dot]
    sequence: int = 0

    def size_bytes(self) -> int:
        return _HEADER_BYTES + self.command.payload_size + _deps_size(self.dependencies)


@dataclass(frozen=True)
class MPreAcceptAck(Message):
    """Fast-quorum member -> coordinator: possibly extended dependencies."""

    dependencies: FrozenSet[Dot]
    sequence: int = 0

    def size_bytes(self) -> int:
        return _HEADER_BYTES + _deps_size(self.dependencies)


@dataclass(frozen=True)
class MDepAccept(Message):
    """Slow-path phase-2 message carrying the union of dependencies."""

    command: Command
    dependencies: FrozenSet[Dot]
    sequence: int
    ballot: int

    def size_bytes(self) -> int:
        return (
            _HEADER_BYTES
            + self.command.payload_size
            + _deps_size(self.dependencies)
            + 16
        )


@dataclass(frozen=True)
class MDepAcceptAck(Message):
    """Acceptance of a slow-path proposal."""

    #: Wire size is instance-independent; batched stats multiply this.
    FIXED_SIZE_BYTES = _HEADER_BYTES + 8

    ballot: int

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 8


@dataclass(frozen=True)
class MDepCommit(Message):
    """Commit notification with the final dependencies."""

    command: Command
    dependencies: FrozenSet[Dot]
    sequence: int = 0
    shard: int = 0

    def size_bytes(self) -> int:
        return (
            _HEADER_BYTES
            + self.command.payload_size
            + _deps_size(self.dependencies)
            + 8
        )


# -- Caesar ---------------------------------------------------------------------


@dataclass(frozen=True)
class MCaesarPropose(Message):
    """Coordinator -> fast quorum: command plus a unique timestamp proposal."""

    command: Command
    timestamp: Tuple[int, int]

    def size_bytes(self) -> int:
        return _HEADER_BYTES + self.command.payload_size + 16


@dataclass(frozen=True)
class MCaesarProposeAck(Message):
    """Reply to a Caesar proposal, sent only after the wait condition clears."""

    timestamp: Tuple[int, int]
    dependencies: FrozenSet[Dot]
    accepted: bool = True

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 17 + _deps_size(self.dependencies)


@dataclass(frozen=True)
class MCaesarRetry(Message):
    """Coordinator -> replicas: retry with a higher timestamp (slow path)."""

    command: Command
    timestamp: Tuple[int, int]
    dependencies: FrozenSet[Dot]

    def size_bytes(self) -> int:
        return _HEADER_BYTES + self.command.payload_size + 16 + _deps_size(self.dependencies)


@dataclass(frozen=True)
class MCaesarRetryAck(Message):
    """Acknowledgement of a retry."""

    timestamp: Tuple[int, int]
    dependencies: FrozenSet[Dot]

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 16 + _deps_size(self.dependencies)


@dataclass(frozen=True)
class MCaesarCommit(Message):
    """Commit with final timestamp and dependencies."""

    command: Command
    timestamp: Tuple[int, int]
    dependencies: FrozenSet[Dot]

    def size_bytes(self) -> int:
        return _HEADER_BYTES + self.command.payload_size + 16 + _deps_size(self.dependencies)


# -- FPaxos -----------------------------------------------------------------------


@dataclass(frozen=True)
class MForward(Message):
    """Non-leader -> leader: forward a client command."""

    command: Command

    def size_bytes(self) -> int:
        return _HEADER_BYTES + self.command.payload_size


@dataclass(frozen=True)
class MAccept(Message):
    """Leader -> phase-2 quorum: ordered command at a log slot."""

    command: Command
    slot: int
    ballot: int

    def size_bytes(self) -> int:
        return _HEADER_BYTES + self.command.payload_size + 16


@dataclass(frozen=True)
class MAccepted(Message):
    """Acceptor -> leader: slot accepted."""

    #: Wire size is instance-independent; batched stats multiply this.
    FIXED_SIZE_BYTES = _HEADER_BYTES + 16

    slot: int
    ballot: int

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 16


@dataclass(frozen=True)
class MDecided(Message):
    """Leader -> everyone: slot decided."""

    command: Command
    slot: int

    def size_bytes(self) -> int:
        return _HEADER_BYTES + self.command.payload_size + 8


# -- Janus* -------------------------------------------------------------------------


@dataclass(frozen=True)
class MJanusDeps(Message):
    """Per-shard coordinator -> submitting coordinator: this shard's deps."""

    shard: int
    dependencies: FrozenSet[Dot]

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 8 + _deps_size(self.dependencies)


#: All baseline-protocol message classes, mirroring ``TEMPO_MESSAGE_TYPES``:
#: dispatch tables, the wire-codec exhaustiveness gate and tests walk this.
DEP_MESSAGE_TYPES = (
    MPreAccept,
    MPreAcceptAck,
    MDepAccept,
    MDepAcceptAck,
    MDepCommit,
    MCaesarPropose,
    MCaesarProposeAck,
    MCaesarRetry,
    MCaesarRetryAck,
    MCaesarCommit,
    MForward,
    MAccept,
    MAccepted,
    MDecided,
    MJanusDeps,
)
