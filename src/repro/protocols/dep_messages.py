"""Messages used by the dependency-based protocols (EPaxos, Atlas, Janus*)
and by Caesar.

They mirror the structure of the Tempo messages in
:mod:`repro.core.messages` and implement the same ``size_bytes`` interface
for the resource model: since the epoch-2 re-baseline, ``size_bytes()``
computes the exact encoded frame length (:mod:`repro.core.wiresize`) and
equals ``encoded_size()`` for every kind.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from repro.core.commands import Command
from repro.core.identifiers import Dot
from repro.core.messages import Message
from repro.core.wiresize import (
    command_size,
    dot_set_size,
    dot_size,
    frame_size,
    svarint_size,
    uvarint_size,
)


def _ts_pair_size(timestamp: Tuple[int, int]) -> int:
    """Caesar's ``(clock, process)`` timestamp pair: two signed varints."""
    return svarint_size(timestamp[0]) + svarint_size(timestamp[1])


@dataclass(frozen=True)
class MPreAccept(Message):
    """Coordinator -> fast quorum: command plus initial dependencies."""

    command: Command
    dependencies: FrozenSet[Dot]
    sequence: int = 0

    def size_bytes(self) -> int:
        return frame_size(
            dot_size(self.dot)
            + command_size(self.command)
            + dot_set_size(self.dependencies)
            + svarint_size(self.sequence)
        )


@dataclass(frozen=True)
class MPreAcceptAck(Message):
    """Fast-quorum member -> coordinator: possibly extended dependencies."""

    dependencies: FrozenSet[Dot]
    sequence: int = 0

    def size_bytes(self) -> int:
        return frame_size(
            dot_size(self.dot)
            + dot_set_size(self.dependencies)
            + svarint_size(self.sequence)
        )


@dataclass(frozen=True)
class MDepAccept(Message):
    """Slow-path phase-2 message carrying the union of dependencies."""

    command: Command
    dependencies: FrozenSet[Dot]
    sequence: int
    ballot: int

    def size_bytes(self) -> int:
        return frame_size(
            dot_size(self.dot)
            + command_size(self.command)
            + dot_set_size(self.dependencies)
            + svarint_size(self.sequence)
            + svarint_size(self.ballot)
        )


@dataclass(frozen=True)
class MDepAcceptAck(Message):
    """Acceptance of a slow-path proposal."""

    ballot: int

    def size_bytes(self) -> int:
        return frame_size(dot_size(self.dot) + svarint_size(self.ballot))


@dataclass(frozen=True)
class MDepCommit(Message):
    """Commit notification with the final dependencies."""

    command: Command
    dependencies: FrozenSet[Dot]
    sequence: int = 0
    shard: int = 0

    def size_bytes(self) -> int:
        return frame_size(
            dot_size(self.dot)
            + command_size(self.command)
            + dot_set_size(self.dependencies)
            + svarint_size(self.sequence)
            + uvarint_size(self.shard)
        )


# -- Caesar ---------------------------------------------------------------------


@dataclass(frozen=True)
class MCaesarPropose(Message):
    """Coordinator -> fast quorum: command plus a unique timestamp proposal."""

    command: Command
    timestamp: Tuple[int, int]

    def size_bytes(self) -> int:
        return frame_size(
            dot_size(self.dot)
            + command_size(self.command)
            + _ts_pair_size(self.timestamp)
        )


@dataclass(frozen=True)
class MCaesarProposeAck(Message):
    """Reply to a Caesar proposal, sent only after the wait condition clears."""

    timestamp: Tuple[int, int]
    dependencies: FrozenSet[Dot]
    accepted: bool = True

    def size_bytes(self) -> int:
        return frame_size(
            dot_size(self.dot)
            + _ts_pair_size(self.timestamp)
            + dot_set_size(self.dependencies)
            + 1  # accepted flag byte
        )


@dataclass(frozen=True)
class MCaesarRetry(Message):
    """Coordinator -> replicas: retry with a higher timestamp (slow path)."""

    command: Command
    timestamp: Tuple[int, int]
    dependencies: FrozenSet[Dot]

    def size_bytes(self) -> int:
        return frame_size(
            dot_size(self.dot)
            + command_size(self.command)
            + _ts_pair_size(self.timestamp)
            + dot_set_size(self.dependencies)
        )


@dataclass(frozen=True)
class MCaesarRetryAck(Message):
    """Acknowledgement of a retry."""

    timestamp: Tuple[int, int]
    dependencies: FrozenSet[Dot]

    def size_bytes(self) -> int:
        return frame_size(
            dot_size(self.dot)
            + _ts_pair_size(self.timestamp)
            + dot_set_size(self.dependencies)
        )


@dataclass(frozen=True)
class MCaesarCommit(Message):
    """Commit with final timestamp and dependencies."""

    command: Command
    timestamp: Tuple[int, int]
    dependencies: FrozenSet[Dot]

    def size_bytes(self) -> int:
        return frame_size(
            dot_size(self.dot)
            + command_size(self.command)
            + _ts_pair_size(self.timestamp)
            + dot_set_size(self.dependencies)
        )


# -- FPaxos -----------------------------------------------------------------------


@dataclass(frozen=True)
class MForward(Message):
    """Non-leader -> leader: forward a client command."""

    command: Command

    def size_bytes(self) -> int:
        return frame_size(dot_size(self.dot) + command_size(self.command))


@dataclass(frozen=True)
class MAccept(Message):
    """Leader -> phase-2 quorum: ordered command at a log slot."""

    command: Command
    slot: int
    ballot: int

    def size_bytes(self) -> int:
        return frame_size(
            dot_size(self.dot)
            + command_size(self.command)
            + svarint_size(self.slot)
            + svarint_size(self.ballot)
        )


@dataclass(frozen=True)
class MAccepted(Message):
    """Acceptor -> leader: slot accepted."""

    slot: int
    ballot: int

    def size_bytes(self) -> int:
        return frame_size(
            dot_size(self.dot)
            + svarint_size(self.slot)
            + svarint_size(self.ballot)
        )


@dataclass(frozen=True)
class MDecided(Message):
    """Leader -> everyone: slot decided."""

    command: Command
    slot: int

    def size_bytes(self) -> int:
        return frame_size(
            dot_size(self.dot)
            + command_size(self.command)
            + svarint_size(self.slot)
        )


# -- Janus* -------------------------------------------------------------------------


@dataclass(frozen=True)
class MJanusDeps(Message):
    """Per-shard coordinator -> submitting coordinator: this shard's deps."""

    shard: int
    dependencies: FrozenSet[Dot]

    def size_bytes(self) -> int:
        return frame_size(
            dot_size(self.dot)
            + uvarint_size(self.shard)
            + dot_set_size(self.dependencies)
        )


#: All baseline-protocol message classes, mirroring ``TEMPO_MESSAGE_TYPES``:
#: dispatch tables, the wire-codec exhaustiveness gate and tests walk this.
DEP_MESSAGE_TYPES = (
    MPreAccept,
    MPreAcceptAck,
    MDepAccept,
    MDepAcceptAck,
    MDepCommit,
    MCaesarPropose,
    MCaesarProposeAck,
    MCaesarRetry,
    MCaesarRetryAck,
    MCaesarCommit,
    MForward,
    MAccept,
    MAccepted,
    MDecided,
    MJanusDeps,
)
