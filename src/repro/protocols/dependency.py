"""Shared machinery for dependency-based leaderless protocols.

EPaxos, Atlas and Janus* all follow the same two-phase pattern:

1. the coordinator sends the command with its locally computed conflicts
   (*dependencies*) to a fast quorum;
2. every fast-quorum member extends the dependencies with the conflicting
   commands it knows about and replies;
3. the coordinator either commits on the fast path (when the replies allow
   the dependencies to be recovered after ``f`` failures) or runs a phase-2
   round on the union of dependencies (slow path);
4. commands are executed by traversing the committed dependency graph,
   strongly connected component by strongly connected component
   (:mod:`repro.protocols.depgraph`).

Subclasses customise the fast-quorum size, the fast-path condition and the
slow-quorum size, which is exactly where EPaxos and Atlas differ (§6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.base import Envelope, ProcessBase
from repro.core.commands import Command, Partitioner
from repro.core.config import ProtocolConfig
from repro.core.gc import GcTracker
from repro.core.identifiers import Dot, DotGenerator, intern_dot
from repro.core.messages import ClientReply, MDeliveryAck, MExecutedClock
from repro.core.quorums import QuorumSystem
from repro.protocols.dep_messages import (
    MDepAccept,
    MDepAcceptAck,
    MDepCommit,
    MPreAccept,
    MPreAcceptAck,
)
from repro.protocols.depgraph import DependencyGraphExecutor
from repro.reliability import TRACKED_KIND_IDS

ApplyFn = Callable[[Command], Optional[Dict[str, Optional[str]]]]

_EMPTY_DEPS: FrozenSet[Dot] = frozenset()

#: Wire kind byte stamped into delivery acks for MDepCommit.
_ACK_KIND_MDEPCOMMIT = TRACKED_KIND_IDS["MDepCommit"]


class KeyConflicts:
    """Incrementally maintained conflict summary for one key.

    The summary splits the commands registered on a key into a *live* part
    (not yet executed here, bounded by in-flight commands) and an *executed*
    archive.  Per-command bookkeeping — registration, retirement on
    execution, the wait-free queries of ``_conflicts_of`` — touches only the
    live part or performs whole-set C-level unions, so the Python-level work
    per command is O(live) instead of the historical O(history) per-dot
    iteration.  The combined views are cached and rebuilt lazily, and they
    reproduce exactly the dependency sets the naive iteration emitted: the
    archive is unioned back in, because an emitted dependency set must not
    depend on how much of the history happens to have executed locally.
    """

    __slots__ = (
        "live",
        "live_writes",
        "executed",
        "executed_writes",
        "peak_live",
        "_all_cache",
        "_writes_cache",
    )

    def __init__(self) -> None:
        #: Registered, not yet executed (any kind).  Exposed through
        #: ``DependencyProtocolProcess._conflicts`` and bounded by the
        #: number of in-flight commands.
        self.live: Set[Dot] = set()
        #: The non-read-only subset of :attr:`live`.
        self.live_writes: Set[Dot] = set()
        #: Executed dots, retired out of the live sets.
        self.executed: Set[Dot] = set()
        self.executed_writes: Set[Dot] = set()
        #: High-water mark of ``len(live)``, the boundedness witness used by
        #: the pruning regression tests.
        self.peak_live: int = 0
        self._all_cache: Optional[FrozenSet[Dot]] = None
        self._writes_cache: Optional[FrozenSet[Dot]] = None

    def register(self, dot: Dot, read_only: bool) -> None:
        live = self.live
        if dot in live:
            return
        live.add(dot)
        if len(live) > self.peak_live:
            self.peak_live = len(live)
        self._all_cache = None
        if not read_only:
            self.live_writes.add(dot)
            self._writes_cache = None

    def retire(self, dot: Dot, read_only: bool) -> None:
        """Move an executed dot from the live sets into the archive."""
        live = self.live
        if dot not in live:
            return
        live.discard(dot)
        self.executed.add(dot)
        if not read_only:
            self.live_writes.discard(dot)
            self.executed_writes.add(dot)
        # The combined views are unchanged (live + executed is the same
        # set), so the caches stay valid.

    def all_conflicts(self) -> FrozenSet[Dot]:
        """Every command ever registered on this key."""
        cache = self._all_cache
        if cache is None:
            cache = self._all_cache = frozenset(self.live.union(self.executed))
        return cache

    def write_conflicts(self) -> FrozenSet[Dot]:
        """Every non-read-only command ever registered on this key."""
        cache = self._writes_cache
        if cache is None:
            cache = self._writes_cache = frozenset(
                self.live_writes.union(self.executed_writes)
            )
        return cache

    def drop_archived(self, dot: Dot, read_only: bool) -> None:
        """Forget a *globally executed* dot from the archive (epoch-2 GC).

        Unlike :meth:`retire` this changes the combined views, so the
        caches must be invalidated.  Dropping is safe exactly because the
        dot executed at every partition peer: a dependency edge on it would
        be satisfied everywhere before any newly submitted command can
        execute anywhere, so omitting it from future dependency sets
        changes no execution order.
        """
        executed = self.executed
        if dot not in executed:
            return
        executed.discard(dot)
        self._all_cache = None
        if not read_only:
            self.executed_writes.discard(dot)
            self._writes_cache = None


@dataclass
class DepInfo:
    """Per-command state at a dependency-protocol process."""

    command: Optional[Command] = None
    dependencies: FrozenSet[Dot] = frozenset()
    sequence: int = 0
    status: str = "start"  # start | preaccept | accept | commit | execute
    ballot: int = 0
    preaccept_acks: Dict[int, Tuple[FrozenSet[Dot], int]] = field(default_factory=dict)
    accept_acks: Set[int] = field(default_factory=set)
    submitted_here: bool = False
    submitted_at: Optional[float] = None
    committed_at: Optional[float] = None
    #: Last time the coordinator re-solicited the missing quorum acks for
    #: this command (see _resolicit_tick); debounces to one round per
    #: recovery-timeout window.
    last_solicit: float = float("-inf")


class DependencyProtocolProcess(ProcessBase):
    """Base class for EPaxos-style protocols.

    Subclasses must implement :meth:`fast_quorum_size`,
    :meth:`slow_quorum_size` and :meth:`allows_fast_path`.
    """

    #: Human-readable protocol name, overridden by subclasses.
    name = "dependency"

    def __init__(
        self,
        process_id: int,
        config: ProtocolConfig,
        partitioner: Optional[Partitioner] = None,
        quorum_system: Optional[QuorumSystem] = None,
        apply_fn: Optional[ApplyFn] = None,
        read_write_aware: bool = True,
        watermark_gc: bool = True,
    ) -> None:
        super().__init__(process_id, config)
        self.partitioner = partitioner or Partitioner(config.num_partitions)
        self.quorum_system = quorum_system or QuorumSystem(config)
        self.apply_fn = apply_fn
        #: Epoch-2 GC: globally-executed watermark exchange with the
        #: partition peers (see :mod:`repro.core.gc`); ``None`` disables
        #: collection entirely (epoch-1 behaviour).
        self.gc: Optional[GcTracker] = (
            GcTracker(process_id, self.partition_peers()) if watermark_gc else None
        )
        self._last_gc_announce = float("-inf")
        #: Whether reads only depend on writes (the read/write distinction of
        #: §3.3 that dependency-based protocols can exploit).
        self.read_write_aware = read_write_aware
        self.dot_generator = DotGenerator(process_id)
        self._info: Dict[Dot, DepInfo] = {}
        #: Per-key conflict summaries (live/executed split plus cached
        #: combined views), used to compute conflicts in O(live) per command.
        self._conflict_index: Dict[str, KeyConflicts] = {}
        #: Per-key set of *live* (not yet executed) commands.  Each value
        #: aliases the ``live`` set of the corresponding summary, so this
        #: view is pruned as commands execute and its peak size is bounded
        #: by the number of in-flight commands.
        self._conflicts: Dict[str, Set[Dot]] = {}
        self._max_sequence_per_key: Dict[str, int] = {}
        self.executor = DependencyGraphExecutor(
            collected=self.gc.collected if self.gc is not None else None
        )
        #: Message-type -> bound handler (exact class match); bound methods
        #: resolve subclass overrides (e.g. Janus) correctly.
        self._dispatch: Dict[type, Callable[[int, object, float], None]] = {
            MPreAccept: self._on_preaccept,
            MPreAcceptAck: self._on_preaccept_ack,
            MDepAccept: self._on_accept,
            MDepAcceptAck: self._on_accept_ack,
            MDepCommit: self._on_commit,
            MExecutedClock: self._on_executed_clock,
            MDeliveryAck: self._on_delivery_ack,
        }
        #: Last time _resolicit_tick scanned for stuck coordinator records.
        self._last_resolicit_scan = float("-inf")

    # -- protocol parameters (overridden by subclasses) ---------------------------

    def fast_quorum_size(self) -> int:
        raise NotImplementedError

    def slow_quorum_size(self) -> int:
        raise NotImplementedError

    def allows_fast_path(
        self,
        union_deps: FrozenSet[Dot],
        acks: Dict[int, Tuple[FrozenSet[Dot], int]],
        coordinator: int,
    ) -> bool:
        raise NotImplementedError

    # -- helpers -----------------------------------------------------------------

    def info(self, dot: Dot) -> DepInfo:
        record = self._info.get(dot)
        if record is None:
            record = DepInfo()
            self._info[dot] = record
        return record

    def status_of(self, dot: Dot) -> str:
        record = self._info.get(dot)
        if record is None:
            if self.gc is not None and self.gc.collected(dot):
                return "execute"
            return "start"
        return record.status

    def committed_dependencies(self, dot: Dot) -> FrozenSet[Dot]:
        """Dependencies the command committed with (empty if not committed)."""
        record = self._info.get(dot)
        if record is None or record.status not in ("commit", "execute"):
            return frozenset()
        return record.dependencies

    def new_command(
        self,
        keys,
        payload_size: int = 100,
        client_id: Optional[int] = None,
        read_only: bool = False,
    ) -> Command:
        """Mint a new command at this process."""
        dot = self.dot_generator.next_id()
        if read_only:
            return Command.read(dot, keys, payload_size=payload_size, client_id=client_id)
        return Command.write(dot, keys, payload_size=payload_size, client_id=client_id)

    def _conflicts_of(self, command: Command) -> Tuple[FrozenSet[Dot], int]:
        """Locally known conflicting commands and the next sequence number.

        Reads depend on every known write; everything else depends on every
        known command (§3.3).  The per-key summaries answer both queries
        with cached whole-set unions, so the work here is one C-level union
        per key instead of a per-dot scan of the key's full history.
        """
        # Reads do not depend on reads (§3.3).
        reads_matter = not (self.read_write_aware and command.is_read_only())
        max_sequence = self._max_sequence_per_key
        index = self._conflict_index
        keys = command.keys
        max_seq = 0
        if len(keys) == 1:
            (key,) = keys
            summary = index.get(key)
            if summary is None:
                deps = _EMPTY_DEPS
            else:
                deps = summary.all_conflicts() if reads_matter else summary.write_conflicts()
                if command.dot in deps:
                    deps = deps - {command.dot}
            max_seq = max_sequence.get(key, 0)
            return deps, max_seq + 1
        union: Set[Dot] = set()
        for key in keys:
            summary = index.get(key)
            if summary is not None:
                union |= (
                    summary.all_conflicts() if reads_matter else summary.write_conflicts()
                )
            key_seq = max_sequence.get(key, 0)
            if key_seq > max_seq:
                max_seq = key_seq
        union.discard(command.dot)
        return frozenset(union), max_seq + 1

    def _register(self, command: Command, sequence: int) -> None:
        """Make the command visible to future conflict computations."""
        dot = command.dot
        read_only = command.is_read_only()
        index = self._conflict_index
        conflicts = self._conflicts
        max_sequence = self._max_sequence_per_key
        for key in command.keys:
            summary = index.get(key)
            if summary is None:
                summary = index[key] = KeyConflicts()
                conflicts[key] = summary.live
            summary.register(dot, read_only)
            if sequence > max_sequence.get(key, 0):
                max_sequence[key] = sequence

    def _retire_executed(self, command: Command) -> None:
        """Prune an executed command out of the live conflict sets.

        Its contribution to future dependency sets is preserved by the
        per-key executed archive, so emitted dependencies are unchanged;
        only the per-command bookkeeping shrinks to the live window.
        """
        dot = command.dot
        read_only = command.is_read_only()
        index = self._conflict_index
        for key in command.keys:
            summary = index.get(key)
            if summary is not None:
                summary.retire(dot, read_only)

    def _fast_quorum(self) -> List[int]:
        members = self.config.processes_of_partition(self.partition)
        size = self.fast_quorum_size()
        others = sorted(
            (member for member in members if member != self.process_id),
            key=lambda member: (
                self.quorum_system._distance(self.process_id, member),
                member,
            ),
        )
        return [self.process_id] + others[: size - 1]

    def _slow_quorum(self) -> List[int]:
        members = self.config.processes_of_partition(self.partition)
        size = self.slow_quorum_size()
        others = sorted(
            (member for member in members if member != self.process_id),
            key=lambda member: (
                self.quorum_system._distance(self.process_id, member),
                member,
            ),
        )
        return [self.process_id] + others[: size - 1]

    # -- submission ----------------------------------------------------------------

    def submit(self, command: Command, now: float = 0.0) -> None:
        """Submit a command with this process acting as its coordinator."""
        record = self.info(command.dot)
        record.command = command
        record.submitted_here = True
        record.submitted_at = now
        dependencies, sequence = self._conflicts_of(command)
        self._register(command, sequence)
        record.dependencies = dependencies
        record.sequence = sequence
        record.status = "preaccept"
        message = MPreAccept(command.dot, command, dependencies, sequence)
        self.send(self._fast_quorum(), message, now)

    # -- message handling -------------------------------------------------------------

    def on_message(self, sender: int, message: object, now: float) -> None:
        handler = self._dispatch.get(message.__class__)
        if handler is None:
            raise TypeError(f"unexpected message {message!r}")
        handler(sender, message, now)

    def _on_preaccept(self, sender: int, message: MPreAccept, now: float) -> None:
        if self.gc is not None and self.gc.collected(message.dot):
            return
        record = self.info(message.dot)
        if record.status in ("commit", "execute"):
            return
        if record.submitted_here:
            # The coordinator already computed its dependencies in submit();
            # recomputing here would count the command against itself.
            self.send(
                [sender],
                MPreAcceptAck(message.dot, record.dependencies, record.sequence),
                now,
            )
            return
        local_deps, local_seq = self._conflicts_of(message.command)
        dependencies = frozenset(message.dependencies | local_deps)
        sequence = max(message.sequence, local_seq)
        record.command = message.command
        record.dependencies = dependencies
        record.sequence = sequence
        if record.status == "start":
            record.status = "preaccept"
        self._register(message.command, sequence)
        self.send([sender], MPreAcceptAck(message.dot, dependencies, sequence), now)

    def _on_preaccept_ack(self, sender: int, message: MPreAcceptAck, now: float) -> None:
        record = self._info.get(message.dot)
        if record is None or record.status != "preaccept" or not record.submitted_here:
            return
        record.preaccept_acks[sender] = (message.dependencies, message.sequence)
        if len(record.preaccept_acks) < self.fast_quorum_size():
            return
        union_deps = frozenset().union(
            *(deps for deps, _ in record.preaccept_acks.values())
        )
        sequence = max(seq for _, seq in record.preaccept_acks.values())
        record.dependencies = union_deps
        record.sequence = sequence
        if self.allows_fast_path(union_deps, record.preaccept_acks, self.process_id):
            self._broadcast_commit(record, now)
        else:
            record.status = "accept"
            record.ballot = self.config.rank_in_partition(self.process_id) + 1
            accept = MDepAccept(
                record.command.dot,
                record.command,
                union_deps,
                sequence,
                record.ballot,
            )
            self.send(self._slow_quorum(), accept, now)

    def _on_accept(self, sender: int, message: MDepAccept, now: float) -> None:
        if self.gc is not None and self.gc.collected(message.dot):
            return
        record = self.info(message.dot)
        if record.status in ("commit", "execute"):
            return
        record.command = message.command
        record.dependencies = message.dependencies
        record.sequence = message.sequence
        record.status = "accept"
        self._register(message.command, message.sequence)
        self.send([sender], MDepAcceptAck(message.dot, message.ballot), now)

    def _on_accept_ack(self, sender: int, message: MDepAcceptAck, now: float) -> None:
        record = self._info.get(message.dot)
        if record is None or record.status != "accept" or not record.submitted_here:
            return
        record.accept_acks.add(sender)
        if len(record.accept_acks) < self.slow_quorum_size():
            return
        self._broadcast_commit(record, now)

    def _commit_targets(self, record: DepInfo) -> List[int]:
        """Processes that must learn about the commit."""
        return list(self.partition_peers())

    def _broadcast_commit(self, record: DepInfo, now: float) -> None:
        if record.command is None:
            return
        commit = MDepCommit(
            record.command.dot,
            record.command,
            record.dependencies,
            record.sequence,
            shard=self.partition,
        )
        targets = sorted(set(self._commit_targets(record)))
        self.send(targets, commit, now)
        if self.reliability is not None:
            # Lossy-run safety net: keep the commit buffered until every
            # non-self target acknowledges delivery (see repro.reliability).
            self.reliability.track(targets, commit, now)

    def _on_commit(self, sender: int, message: MDepCommit, now: float) -> None:
        if self.reliability is not None and sender != self.process_id:
            # Ack before any dedup/GC early return: a duplicate usually
            # means our first ack was lost.
            self._ack_delivery(sender, _ACK_KIND_MDEPCOMMIT, message.dot, now)
        if self.gc is not None and self.gc.collected(message.dot):
            return
        record = self.info(message.dot)
        if record.status in ("commit", "execute"):
            return
        record.command = message.command
        record.dependencies = message.dependencies
        record.sequence = message.sequence
        record.status = "commit"
        record.committed_at = now
        # The quorum bookkeeping is dead past this point (the ack handlers
        # gate on the pre-commit statuses); drop it so each ack's
        # history-sized dependency snapshot can be reclaimed.
        if record.preaccept_acks:
            record.preaccept_acks = {}
        if record.accept_acks:
            record.accept_acks = set()
        self._register(message.command, message.sequence)
        newly = self.executor.commit(
            message.dot, message.dependencies, message.sequence
        )
        self._execute_all(newly, now)

    # -- execution ---------------------------------------------------------------------

    def _execute_all(self, dots: List[Dot], now: float) -> None:
        for dot in dots:
            record = self._info.get(dot)
            if record is None or record.command is None:
                continue
            if record.status == "execute":
                continue
            result = self.apply_fn(record.command) if self.apply_fn else None
            record.status = "execute"
            self._retire_executed(record.command)
            self.record_execution(dot, record.command, now)
            if self.gc is not None:
                self.gc.record_executed(dot)
            if record.submitted_here and record.command.client_id is not None:
                self.outbox.append(
                    Envelope(
                        sender=self.process_id,
                        destination=-(record.command.client_id + 1),
                        message=ClientReply(dot, result=result),
                    )
                )

    def tick(self, now: float) -> None:
        """Periodically retry execution (a commit elsewhere may have
        unblocked a component whose last commit message raced the check)."""
        newly = self.executor.advance()
        if newly:
            self._execute_all(newly, now)
        if now - self._last_gc_announce >= self.config.gc_interval:
            self._last_gc_announce = now
            self._gc_announce(now)
        self._resolicit_tick(now)
        self._reliability_tick(now)

    def _resolicit_tick(self, now: float) -> None:
        """Re-solicit the missing quorum replies of stuck coordinations.

        These protocols have no recovery sub-protocol in this reproduction:
        a phase-1/phase-2 round-trip lost to a restart or a lossy link
        strands the command at its coordinator forever.  When reliable
        delivery is enabled, the coordinator re-sends the pre-accept (or
        accept) to exactly the quorum members whose reply is missing, once
        per recovery-timeout window per command, after the command has been
        pending for two full windows.  Crash-only plans keep this off, so
        the crash@s0 baseline rows keep their documented behaviour.
        """
        if self.reliability is None:
            return
        timeout = self.config.recovery_timeout
        if now - self._last_resolicit_scan < timeout:
            return
        self._last_resolicit_scan = now
        for dot, record in self._info.items():
            if not record.submitted_here or record.command is None:
                continue
            if record.status not in ("preaccept", "accept"):
                continue
            submitted_at = record.submitted_at
            if submitted_at is None or now - submitted_at < 2 * timeout:
                continue
            if now - record.last_solicit < timeout:
                continue
            record.last_solicit = now
            if record.status == "preaccept":
                missing = [
                    member
                    for member in self._fast_quorum()
                    if member not in record.preaccept_acks
                ]
                if missing:
                    self.send(
                        missing,
                        MPreAccept(
                            dot, record.command, record.dependencies, record.sequence
                        ),
                        now,
                    )
            else:
                missing = [
                    member
                    for member in self._slow_quorum()
                    if member not in record.accept_acks
                ]
                if missing:
                    self.send(
                        missing,
                        MDepAccept(
                            dot,
                            record.command,
                            record.dependencies,
                            record.sequence,
                            record.ballot,
                        ),
                        now,
                    )

    # -- watermark GC -------------------------------------------------------------------

    def _gc_announce(self, now: float) -> None:
        """Announce the local executed clock to the partition peers (only
        when the frontier advanced since the last announcement)."""
        gc = self.gc
        if gc is None:
            return
        clock = gc.announcement()
        if clock:
            sentinel = Dot(self.process_id, self.dot_generator.peek().sequence)
            targets = [
                process for process in self.partition_peers()
                if process != self.process_id
            ]
            if targets:
                self.send(targets, MExecutedClock(sentinel, clock=clock), now)
        self._gc_sweep()

    def _on_executed_clock(
        self, sender: int, message: MExecutedClock, now: float
    ) -> None:
        gc = self.gc
        if gc is None:
            return
        gc.ingest(sender, message.clock)
        self._gc_sweep()

    def _gc_sweep(self) -> None:
        gc = self.gc
        if gc is None:
            return
        for source, lo, hi in gc.advance():
            for sequence in range(lo, hi + 1):
                self._collect(intern_dot(source, sequence))

    def _collect(self, dot: Dot) -> None:
        """Forget a globally-executed dot: its record, its per-key archive
        entries (with cache invalidation) and its dependency-graph node."""
        record = self._info.pop(dot, None)
        assert record is None or record.status == "execute", (
            f"collecting {dot} in status {record.status}: watermark ran "
            "ahead of local execution"
        )
        if record is not None and record.command is not None:
            command = record.command
            read_only = command.is_read_only()
            index = self._conflict_index
            for key in command.keys:
                summary = index.get(key)
                if summary is not None:
                    summary.drop_archived(dot, read_only)
        self.executor.collect(dot)

    # -- introspection -------------------------------------------------------------------

    def committed_dots(self) -> List[Dot]:
        return [
            dot
            for dot, record in self._info.items()
            if record.status in ("commit", "execute")
        ]

    def pending_dots(self) -> List[Dot]:
        return [
            dot
            for dot, record in self._info.items()
            if record.status in ("preaccept", "accept")
        ]

    def max_component_size(self) -> int:
        """Largest strongly connected component executed so far."""
        return self.executor.max_component_size()

    def conflict_footprint(self) -> Dict[str, int]:
        """Size accounting of the conflict-tracking structures.

        ``live`` (and its high-water mark ``peak_live``) must stay bounded
        by in-flight commands under the pruning scheme, while ``archived``
        carries the executed history needed to keep emitted dependency
        sets exact.
        """
        live = peak = archived = 0
        for summary in self._conflict_index.values():
            live += len(summary.live)
            peak = max(peak, summary.peak_live)
            archived += len(summary.executed)
        return {"live": live, "peak_live": peak, "archived": archived}

    def memory_footprint(self) -> Dict[str, int]:
        footprint = super().memory_footprint()
        conflicts = self.conflict_footprint()
        footprint["archived"] = conflicts["archived"]
        footprint["peak_live_per_key"] = conflicts["peak_live"]
        return footprint
