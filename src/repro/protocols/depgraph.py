"""Dependency-graph execution used by EPaxos, Atlas and Janus* (§3.3).

Dependency-based leaderless protocols commit each command together with a
set of explicit dependencies.  Execution then proceeds over the directed
graph whose edges point from a command to its dependencies:

1. a command can only be considered once it is committed;
2. strongly connected components (SCCs) of the committed subgraph are
   executed one at a time, in reverse topological order;
3. an SCC can only be executed when every dependency reachable from it is
   committed — an uncommitted (or unknown) dependency blocks the whole
   component, which is the source of the unbounded execution delays the
   paper demonstrates (§3.3, §D).

Commands inside an SCC are ordered by their sequence number (EPaxos-style)
and identifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.identifiers import Dot


@dataclass
class CommittedNode:
    """A committed command inside the dependency graph."""

    dot: Dot
    dependencies: FrozenSet[Dot]
    sequence: int = 0
    #: Dependencies not yet executed *here*, shrunk as they execute.  Kept
    #: so per-commit bookkeeping touches only the live part of a dependency
    #: set instead of re-walking the (mostly executed) full history.
    live_deps: Set[Dot] = field(default_factory=set)


class DependencyGraph:
    """The committed dependency graph at one process."""

    def __init__(
        self, collected: Optional[Callable[[Dot], bool]] = None
    ) -> None:
        #: Watermark-GC predicate (epoch-2): a collected dot is globally
        #: executed and its node/executed-set entries may have been dropped
        #: by :meth:`collect`.  A dependency on a collected dot is satisfied
        #: by definition, so commits filter such dots out of their live
        #: dependency sets instead of treating them as missing.
        self._collected = collected
        self._nodes: Dict[Dot, CommittedNode] = {}
        self._executed: Set[Dot] = set()
        #: Committed-but-unexecuted dots in commit order (insertion-ordered
        #: dict used as an ordered set).  Kept incrementally so execution
        #: passes never rescan the full node table.
        self._unexecuted: Dict[Dot, None] = {}
        #: Reverse dependency edges: for each dot, the committed nodes that
        #: directly depend on it.  Maintained incrementally on commit and
        #: pruned on execution, so the blocked set can be computed by
        #: walking only the actually-blocked region instead of running the
        #: historical O(pending x deps) fixed point on every commit.
        self._dependents: Dict[Dot, Set[Dot]] = {}
        #: Uncommitted dots some committed, unexecuted node depends on —
        #: the sources of all blocking.  When empty, nothing is blocked and
        #: a commit costs O(deps).
        self._missing: Set[Dot] = set()

    def commit(self, dot: Dot, dependencies: Iterable[Dot], sequence: int = 0) -> bool:
        """Record that ``dot`` committed with the given dependencies.

        Returns ``True`` when the commit is new, ``False`` for duplicates.
        """
        if dot in self._nodes:
            return False
        dependencies = frozenset(dependencies)
        live = set(dependencies - self._executed)
        collected = self._collected
        if collected is not None and live:
            # Peers with a smaller watermark may still emit dependencies on
            # dots collected here; those executed everywhere already, so
            # they must not re-enter the missing/blocked bookkeeping.
            live = {dep for dep in live if not collected(dep)}
        self._nodes[dot] = CommittedNode(
            dot=dot, dependencies=dependencies, sequence=sequence, live_deps=live
        )
        self._unexecuted[dot] = None
        for dependency in live:
            self._dependents.setdefault(dependency, set()).add(dot)
            if dependency not in self._nodes:
                self._missing.add(dependency)
        # ``dot`` itself just stopped being a blocking source.
        self._missing.discard(dot)
        return True

    def mark_executed(self, dot: Dot) -> None:
        """Record that ``dot`` was executed."""
        self._executed.add(dot)
        self._unexecuted.pop(dot, None)
        node = self._nodes.get(dot)
        if node is not None:
            for dependency in node.live_deps:
                bucket = self._dependents.get(dependency)
                if bucket is not None:
                    bucket.discard(dot)
                    if not bucket:
                        del self._dependents[dependency]
        # Executed nodes are never blocked, so edges into them are dead;
        # shrink the dependants' live sets so their bookkeeping stays
        # proportional to in-flight commands.
        dependents = self._dependents.pop(dot, None)
        if dependents:
            nodes = self._nodes
            for dependent in dependents:
                dependent_node = nodes.get(dependent)
                if dependent_node is not None:
                    dependent_node.live_deps.discard(dot)

    def collect(self, dot: Dot) -> None:
        """Drop a globally-executed dot's node and executed-set entries.

        Only valid for dots already executed here (the caller's watermark
        guarantees it); duplicate suppression for late references moves to
        the ``collected`` predicate supplied at construction.
        """
        self._executed.discard(dot)
        self._nodes.pop(dot, None)

    def is_committed(self, dot: Dot) -> bool:
        return dot in self._nodes

    def is_executed(self, dot: Dot) -> bool:
        return dot in self._executed

    def committed_count(self) -> int:
        return len(self._nodes)

    def executed_count(self) -> int:
        return len(self._executed)

    def pending_execution(self) -> List[Dot]:
        """Committed commands not yet executed."""
        return list(self._unexecuted)

    def dependencies_of(self, dot: Dot) -> FrozenSet[Dot]:
        node = self._nodes.get(dot)
        return node.dependencies if node is not None else frozenset()

    def missing_dependencies_of(self, dot: Dot) -> FrozenSet[Dot]:
        """Direct dependencies of ``dot`` that are still uncommitted (the
        per-node view of the incremental blocking bookkeeping)."""
        node = self._nodes.get(dot)
        if node is None:
            return frozenset()
        return frozenset(
            dependency for dependency in node.dependencies
            if dependency in self._missing
        )

    # -- execution ------------------------------------------------------------

    def executable_components(self) -> List[List[Dot]]:
        """Find SCCs that are ready to execute, in execution order.

        A component is ready when every command reachable from it (following
        dependency edges, ignoring already-executed commands) is committed.
        Components are returned in reverse topological order, i.e. the order
        in which they must be executed.
        """
        ready_roots = list(self._unexecuted)
        if not ready_roots:
            return []
        blocked = self._blocked_set(ready_roots)
        components = self._tarjan(
            [dot for dot in ready_roots if dot not in blocked], blocked
        )
        ordered: List[List[Dot]] = []
        for component in components:
            ordered.append(
                sorted(
                    component,
                    key=lambda dot: (self._nodes[dot].sequence, dot),
                )
            )
        return ordered

    def execute_ready(self) -> List[Dot]:
        """Mark every ready command as executed and return them in order."""
        order: List[Dot] = []
        for component in self.executable_components():
            for dot in component:
                self.mark_executed(dot)
                order.append(dot)
        return order

    def largest_pending_component(self) -> int:
        """Size of the largest SCC among committed, unexecuted commands
        (ignoring blocking); used by the evaluation to report dependency-
        chain growth."""
        pending = self.pending_execution()
        if not pending:
            return 0
        components = self._tarjan(pending, blocked=set(), ignore_blocked=True)
        return max(len(component) for component in components) if components else 0

    # -- internals --------------------------------------------------------------

    def _blocked_set(self, roots: Sequence[Dot]) -> Set[Dot]:
        """Commands that transitively depend on an uncommitted command.

        A command is blocked exactly when it can reach an uncommitted
        dependency through unexecuted committed nodes, so the set is the
        backward reachability of the ``_missing`` sources over the
        incrementally maintained reverse-dependency edges.  This walks only
        the actually-blocked region (and is O(1) when nothing is missing),
        replacing the historical O(pending x deps) fixed point; the
        resulting set is the same least fixed point, so the execution order
        downstream is unchanged.  ``roots`` is kept for API compatibility
        but no longer consulted: blocked membership is a global property.
        """
        blocked: Set[Dot] = set()
        if not self._missing:
            return blocked
        stack: List[Dot] = list(self._missing)
        while stack:
            source = stack.pop()
            for dependent in self._dependents.get(source, ()):
                if dependent in blocked or dependent not in self._unexecuted:
                    continue
                blocked.add(dependent)
                stack.append(dependent)
        return blocked

    def _tarjan(
        self,
        roots: Sequence[Dot],
        blocked: Set[Dot],
        ignore_blocked: bool = False,
    ) -> List[List[Dot]]:
        """Iterative Tarjan SCC over the committed, unexecuted, unblocked
        subgraph; returns components in reverse topological order."""
        index_counter = [0]
        index: Dict[Dot, int] = {}
        lowlink: Dict[Dot, int] = {}
        on_stack: Set[Dot] = set()
        stack: List[Dot] = []
        components: List[List[Dot]] = []
        nodes = self._nodes
        executed = self._executed
        #: Neighbour lists computed once per node per pass: the iterative
        #: Tarjan revisits a node once per recursion continuation, and
        #: recomputing the filtered list each time re-paid a hash probe per
        #: dependency.  The iteration order over ``dependencies`` (which
        #: downstream fixes the component order) is unchanged.
        neighbour_cache: Dict[Dot, List[Dot]] = {}

        def neighbours(dot: Dot) -> List[Dot]:
            cached = neighbour_cache.get(dot)
            if cached is not None:
                return cached
            result = []
            for dependency in nodes[dot].dependencies:
                if dependency in executed or dependency not in nodes:
                    continue
                if not ignore_blocked and dependency in blocked:
                    continue
                result.append(dependency)
            neighbour_cache[dot] = result
            return result

        def strongconnect(root: Dot) -> None:
            work: List[Tuple[Dot, int]] = [(root, 0)]
            while work:
                node, child_index = work[-1]
                if child_index == 0:
                    index[node] = index_counter[0]
                    lowlink[node] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                children = neighbours(node)
                for position in range(child_index, len(children)):
                    child = children[position]
                    if child not in index:
                        work[-1] = (node, position + 1)
                        work.append((child, 0))
                        recurse = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index[child])
                if recurse:
                    continue
                if lowlink[node] == index[node]:
                    component: List[Dot] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)
                work.pop()
                if work:
                    parent, _ = work[-1]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])

        for root in roots:
            if root in index:
                continue
            if root in self._executed:
                continue
            if not ignore_blocked and root in blocked:
                continue
            strongconnect(root)
        return components


class DependencyGraphExecutor:
    """Drives a :class:`DependencyGraph` and records the execution order."""

    def __init__(
        self, collected: Optional[Callable[[Dot], bool]] = None
    ) -> None:
        self.graph = DependencyGraph(collected=collected)
        self.execution_order: List[Dot] = []
        self.component_sizes: List[int] = []
        #: Whether the committed subgraph changed since the last advance().
        #: Executing commands never unblocks anything (blocking is caused by
        #: *uncommitted* dependencies only) and advance() reaches a fixed
        #: point, so a clean graph cannot yield new executables.
        self._dirty = False

    def commit(self, dot: Dot, dependencies: Iterable[Dot], sequence: int = 0) -> List[Dot]:
        """Commit a command and return the commands that became executable."""
        graph = self.graph
        was_missing = dot in graph._missing
        if not graph.commit(dot, dependencies, sequence):
            return []
        if not was_missing:
            # No committed node was waiting for ``dot`` (otherwise it would
            # have been a missing source), so this commit cannot unblock
            # anything else, and advance() left every other pending node
            # blocked at its last fixed point.  The only candidate executable
            # is ``dot`` itself: it runs exactly when all its dependencies
            # are already executed here (a committed-but-unexecuted
            # dependency is itself blocked, hence so is ``dot``).  This skips
            # the full blocked-set/SCC pass for the common in-order commit.
            live = graph._nodes[dot].live_deps
            if live and not (len(live) == 1 and dot in live):
                return []
            self.component_sizes.append(1)
            graph.mark_executed(dot)
            self.execution_order.append(dot)
            return [dot]
        self._dirty = True
        return self.advance()

    def advance(self) -> List[Dot]:
        """Execute every ready component; return newly executed commands."""
        if not self._dirty:
            return []
        self._dirty = False
        newly: List[Dot] = []
        components = self.graph.executable_components()
        for component in components:
            self.component_sizes.append(len(component))
            for dot in component:
                self.graph.mark_executed(dot)
                self.execution_order.append(dot)
                newly.append(dot)
        return newly

    def collect(self, dot: Dot) -> None:
        """Prune a globally-executed dot from the graph (the recorded
        ``execution_order`` is deliberately kept: it is the equivalence and
        convergence witness, like ``ProcessBase.executed``)."""
        self.graph.collect(dot)

    def executed(self) -> Tuple[Dot, ...]:
        return tuple(self.execution_order)

    def pending(self) -> List[Dot]:
        return self.graph.pending_execution()

    def max_component_size(self) -> int:
        return max(self.component_sizes, default=0)
