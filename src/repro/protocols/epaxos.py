"""EPaxos (Egalitarian Paxos, SOSP'13) — dependency-based leaderless SMR.

The paper's evaluation (§6) characterises EPaxos by:

* fast quorums of size ``floor(3r/4)``;
* a conservative fast-path condition: every fast-quorum member must report
  exactly the same dependencies (and sequence number) for the command;
* slow path over a majority;
* execution over the committed dependency graph (SCC by SCC), which is the
  source of its long tail latency.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from repro.core.identifiers import Dot
from repro.protocols.dependency import DependencyProtocolProcess


class EPaxosProcess(DependencyProtocolProcess):
    """An EPaxos replica."""

    name = "epaxos"

    def fast_quorum_size(self) -> int:
        """EPaxos fast quorums contain ``floor(3r/4)`` processes."""
        return max(self.config.epaxos_fast_quorum_size, self.config.majority)

    def slow_quorum_size(self) -> int:
        """The slow path uses a simple majority."""
        return self.config.majority

    def allows_fast_path(
        self,
        union_deps: FrozenSet[Dot],
        acks: Dict[int, Tuple[FrozenSet[Dot], int]],
        coordinator: int,
    ) -> bool:
        """Fast path requires every non-coordinator reply to match the
        coordinator's dependencies exactly."""
        reference = acks.get(coordinator)
        if reference is None:
            return False
        return all(reply == reference for reply in acks.values())
