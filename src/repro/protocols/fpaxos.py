"""Flexible Paxos (FPaxos) — the leader-based baseline (§6).

FPaxos is classical Multi-Paxos with the Flexible-Paxos quorum refinement:
during normal operation the leader replicates each command to a phase-2
quorum of only ``f + 1`` processes (instead of a majority), and recovery
would use phase-1 quorums of ``r - f``.

The leader orders commands in a log; followers apply decided log slots in
order.  Clients submit at the closest process, which forwards the command to
the leader — this forwarding is what makes FPaxos unfair to clients far from
the leader (Figure 5) and what makes the leader the throughput bottleneck
(Figure 7).

Leader failure is handled by re-running phase 1 from a higher ballot; since
the evaluation only exercises the failure-free path, this implementation
keeps a static leader (rank 0 of the partition by default) and exposes
:meth:`set_leader` for tests.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.core.base import Envelope, ProcessBase
from repro.core.commands import Command, Partitioner
from repro.core.config import ProtocolConfig
from repro.core.identifiers import Dot, DotGenerator
from repro.core.messages import ClientReply
from repro.core.quorums import QuorumSystem
from repro.protocols.dep_messages import MAccept, MAccepted, MDecided, MForward

ApplyFn = Callable[[Command], Optional[Dict[str, Optional[str]]]]


class FPaxosProcess(ProcessBase):
    """One FPaxos replica (leader or follower)."""

    name = "fpaxos"

    def __init__(
        self,
        process_id: int,
        config: ProtocolConfig,
        partitioner: Optional[Partitioner] = None,
        quorum_system: Optional[QuorumSystem] = None,
        apply_fn: Optional[ApplyFn] = None,
        leader_rank: int = 0,
    ) -> None:
        super().__init__(process_id, config)
        self.partitioner = partitioner or Partitioner(config.num_partitions)
        self.quorum_system = quorum_system or QuorumSystem(config)
        self.apply_fn = apply_fn
        self.leader_rank = leader_rank
        self.dot_generator = DotGenerator(process_id)
        self.ballot = 1
        # -- leader state
        self._next_slot = 1
        self._slot_of_dot: Dict[Dot, int] = {}
        self._accept_acks: Dict[int, Set[int]] = {}
        self._proposals: Dict[int, Command] = {}
        # -- replica state
        #: Commands accepted in phase 2 (not necessarily decided yet).
        self._accepted_log: Dict[int, Command] = {}
        #: Commands known to be decided, applied in slot order.
        self._decided_log: Dict[int, Command] = {}
        self._applied_up_to = 0
        self._submitted_here: Set[Dot] = set()
        self._submitted_at: Dict[Dot, float] = {}
        self._dispatch: Dict[type, Callable[[int, object, float], None]] = {
            MForward: self._on_forward,
            MAccept: self._on_accept,
            MAccepted: self._on_accepted,
            MDecided: self._on_decided,
        }

    # -- roles ------------------------------------------------------------------

    @property
    def leader(self) -> int:
        """Global identifier of the partition leader."""
        return (
            self.partition * self.config.num_processes + self.leader_rank
        )

    def is_leader(self) -> bool:
        return self.process_id == self.leader

    def set_leader(self, rank: int) -> None:
        """Move the leader to another rank (used by failover tests)."""
        if not 0 <= rank < self.config.num_processes:
            raise ValueError("leader rank out of range")
        self.leader_rank = rank
        self.ballot += 1

    # -- helpers -----------------------------------------------------------------

    def new_command(
        self,
        keys,
        payload_size: int = 100,
        client_id: Optional[int] = None,
    ) -> Command:
        return Command.write(
            self.dot_generator.next_id(),
            keys,
            payload_size=payload_size,
            client_id=client_id,
        )

    def _phase2_quorum(self) -> List[int]:
        """The ``f + 1`` closest processes including the leader."""
        members = self.config.processes_of_partition(self.partition)
        others = sorted(
            (member for member in members if member != self.process_id),
            key=lambda member: (
                self.quorum_system._distance(self.process_id, member),
                member,
            ),
        )
        return [self.process_id] + others[: self.config.slow_quorum_size - 1]

    # -- submission ----------------------------------------------------------------

    def submit(self, command: Command, now: float = 0.0) -> None:
        """Submit a command; non-leaders forward it to the leader."""
        self._submitted_here.add(command.dot)
        self._submitted_at[command.dot] = now
        if self.is_leader():
            self._order(command, now)
        else:
            self.send([self.leader], MForward(command.dot, command), now)

    def _order(self, command: Command, now: float) -> None:
        """Leader: assign the next log slot and run phase 2."""
        slot = self._next_slot
        self._next_slot += 1
        self._slot_of_dot[command.dot] = slot
        self._proposals[slot] = command
        self._accept_acks[slot] = set()
        self.send(self._phase2_quorum(), MAccept(command.dot, command, slot, self.ballot), now)

    # -- message handling -------------------------------------------------------------

    def on_message(self, sender: int, message: object, now: float) -> None:
        handler = self._dispatch.get(message.__class__)
        if handler is None:
            raise TypeError(f"unexpected message {message!r}")
        handler(sender, message, now)

    def _on_forward(self, sender: int, message: MForward, now: float) -> None:
        if not self.is_leader():
            # Forward again in case the leader changed.
            self.send([self.leader], message, now)
            return
        self._order(message.command, now)

    def _on_accept(self, sender: int, message: MAccept, now: float) -> None:
        if message.ballot < self.ballot:
            return
        self.ballot = message.ballot
        self._accepted_log[message.slot] = message.command
        self.send([sender], MAccepted(message.dot, message.slot, message.ballot), now)

    def _on_accepted(self, sender: int, message: MAccepted, now: float) -> None:
        if not self.is_leader() or message.ballot != self.ballot:
            return
        acks = self._accept_acks.setdefault(message.slot, set())
        acks.add(sender)
        if len(acks) < self.config.slow_quorum_size:
            return
        command = self._proposals.get(message.slot)
        if command is None:
            return
        decided = MDecided(command.dot, command, message.slot)
        self.send(self.partition_peers(), decided, now)

    def _on_decided(self, sender: int, message: MDecided, now: float) -> None:
        self._decided_log[message.slot] = message.command
        self._apply_contiguous(now)

    # -- execution ---------------------------------------------------------------------

    def _apply_contiguous(self, now: float) -> None:
        """Apply decided slots in order as long as the decided log is
        contiguous (followers apply in the leader-chosen total order)."""
        while (self._applied_up_to + 1) in self._decided_log:
            slot = self._applied_up_to + 1
            command = self._decided_log[slot]
            result = self.apply_fn(command) if self.apply_fn else None
            self._applied_up_to = slot
            self.record_execution(command.dot, command, now)
            if command.dot in self._submitted_here and command.client_id is not None:
                self.outbox.append(
                    Envelope(
                        sender=self.process_id,
                        destination=-(command.client_id + 1),
                        message=ClientReply(command.dot, result=result),
                    )
                )

    # -- introspection -------------------------------------------------------------------

    def log_length(self) -> int:
        """Number of decided slots known to this process."""
        return len(self._decided_log)

    def applied_up_to(self) -> int:
        return self._applied_up_to
