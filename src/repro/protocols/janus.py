"""Janus* — dependency-based partial replication (§6.4).

Janus (OSDI'16) generalizes EPaxos to partial replication: a command that
accesses several shards collects dependencies from every shard it touches
and is executed over the resulting cross-shard dependency graph.  The paper
evaluates an improved variant, *Janus**, built on Atlas instead of plain
EPaxos: fast quorums of ``floor(r/2) + f`` per shard and the Atlas fast-path
condition.

Janus* is **not genuine**: ordering a command requires communication beyond
the processes that replicate the shards it accesses.  In this implementation
that shows up as the commit broadcast going to every process of the
deployment, so that the dependency graph every process executes over is
globally consistent (dependencies may point at commands of other shards).

Each process only *applies* the operations on keys of its own shard, but the
graph traversal — the execution bottleneck the paper measures — spans all
commands it has heard about.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.base import Envelope
from repro.core.commands import Command, KeyOp
from repro.core.identifiers import Dot
from repro.core.messages import ClientReply
from repro.protocols.atlas import AtlasProcess
from repro.protocols.dep_messages import MDepAccept, MDepCommit, MPreAccept


class JanusProcess(AtlasProcess):
    """A Janus* replica of one shard (= one partition)."""

    name = "janus"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Per-command set of processes whose fast-path ack is expected.
        self._expected_fast: Dict[Dot, Set[int]] = {}
        #: Per-command set of processes whose slow-path ack is expected.
        self._expected_slow: Dict[Dot, Set[int]] = {}

    # -- submission ----------------------------------------------------------------

    def _accessed_shards(self, command: Command) -> List[int]:
        return sorted(command.partitions(self.partitioner))

    def submit(self, command: Command, now: float = 0.0) -> None:
        """Submit a (possibly multi-shard) command coordinated by this
        process."""
        record = self.info(command.dot)
        record.command = command
        record.submitted_here = True
        record.submitted_at = now
        dependencies, sequence = self._conflicts_of(command)
        self._register(command, sequence)
        record.dependencies = dependencies
        record.sequence = sequence
        record.status = "preaccept"
        shards = self._accessed_shards(command)
        expected: Set[int] = set()
        for shard in shards:
            coordinator = self.quorum_system.coordinator_for(self.process_id, shard)
            quorum = self.quorum_system.fast_quorum(coordinator, shard)
            expected.update(quorum)
        self._expected_fast[command.dot] = expected
        message = MPreAccept(command.dot, command, dependencies, sequence)
        self.send(sorted(expected), message, now)

    # -- coordinator-side overrides -----------------------------------------------------

    def _on_preaccept_ack(self, sender: int, message, now: float) -> None:
        record = self._info.get(message.dot)
        if record is None or record.status != "preaccept" or not record.submitted_here:
            return
        record.preaccept_acks[sender] = (message.dependencies, message.sequence)
        expected = self._expected_fast.get(message.dot, set())
        if set(record.preaccept_acks) < expected:
            return
        union_deps = frozenset().union(
            *(deps for deps, _ in record.preaccept_acks.values())
        )
        sequence = max(seq for _, seq in record.preaccept_acks.values())
        record.dependencies = union_deps
        record.sequence = sequence
        if self.allows_fast_path(union_deps, record.preaccept_acks, self.process_id):
            self._broadcast_commit(record, now)
            return
        record.status = "accept"
        record.ballot = self.config.rank_in_partition(self.process_id) + 1
        shards = self._accessed_shards(record.command)
        expected_slow: Set[int] = set()
        for shard in shards:
            coordinator = self.quorum_system.coordinator_for(self.process_id, shard)
            expected_slow.update(self.quorum_system.slow_quorum(coordinator, shard))
        self._expected_slow[record.command.dot] = expected_slow
        accept = MDepAccept(
            record.command.dot,
            record.command,
            union_deps,
            sequence,
            record.ballot,
        )
        self.send(sorted(expected_slow), accept, now)

    def _on_accept_ack(self, sender: int, message, now: float) -> None:
        record = self._info.get(message.dot)
        if record is None or record.status != "accept" or not record.submitted_here:
            return
        record.accept_acks.add(sender)
        expected = self._expected_slow.get(message.dot, set())
        if record.accept_acks < expected:
            return
        self._broadcast_commit(record, now)

    def _commit_targets(self, record) -> List[int]:
        """Non-genuine commit dissemination: every process of the
        deployment learns the commit, so the cross-shard dependency graph is
        complete everywhere."""
        return list(range(self.config.total_processes()))

    # -- execution ---------------------------------------------------------------------

    def _execute_all(self, dots: List[Dot], now: float) -> None:
        """Execute ready commands, applying only the operations on keys of
        this process's shard."""
        for dot in dots:
            record = self._info.get(dot)
            if record is None or record.command is None:
                continue
            if record.status == "execute":
                continue
            local_command = self._restrict_to_shard(record.command)
            result = None
            if local_command is not None and self.apply_fn is not None:
                result = self.apply_fn(local_command)
            record.status = "execute"
            self._retire_executed(record.command)
            self._expected_fast.pop(dot, None)
            self._expected_slow.pop(dot, None)
            self.record_execution(dot, record.command, now)
            if record.submitted_here and record.command.client_id is not None:
                self.outbox.append(
                    Envelope(
                        sender=self.process_id,
                        destination=-(record.command.client_id + 1),
                        message=ClientReply(dot, result=result),
                    )
                )

    def _restrict_to_shard(self, command: Command) -> Optional[Command]:
        """Project ``command`` onto the keys of this process's shard."""
        ops: Tuple[KeyOp, ...] = tuple(
            op
            for op in command.ops
            if self.partitioner.partition_of(op.key) == self.partition
        )
        if not ops:
            return None
        return Command(
            dot=command.dot,
            ops=ops,
            payload_size=command.payload_size,
            client_id=command.client_id,
        )
