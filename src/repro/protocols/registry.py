"""Registry mapping protocol names to process factories.

The cluster runner, the experiments and the benchmarks select protocols by
name (``"tempo"``, ``"atlas"``, ``"epaxos"``, ``"fpaxos"``, ``"caesar"``,
``"janus"``), mirroring how the paper's framework selects the protocol under
test.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.base import ProcessBase
from repro.core.commands import Partitioner
from repro.core.config import ProtocolConfig
from repro.core.process import TempoProcess
from repro.core.quorums import QuorumSystem
from repro.protocols.atlas import AtlasProcess
from repro.protocols.caesar import CaesarProcess
from repro.protocols.epaxos import EPaxosProcess
from repro.protocols.fpaxos import FPaxosProcess
from repro.protocols.janus import JanusProcess

ProcessFactory = Callable[..., ProcessBase]

#: Name -> process class for every protocol in the evaluation.
PROTOCOLS: Dict[str, ProcessFactory] = {
    "tempo": TempoProcess,
    "atlas": AtlasProcess,
    "epaxos": EPaxosProcess,
    "caesar": CaesarProcess,
    "fpaxos": FPaxosProcess,
    "janus": JanusProcess,
}


def protocol_names() -> list:
    """Names of all available protocols."""
    return sorted(PROTOCOLS)


def build_process(
    name: str,
    process_id: int,
    config: ProtocolConfig,
    partitioner: Optional[Partitioner] = None,
    quorum_system: Optional[QuorumSystem] = None,
    apply_fn=None,
    **kwargs,
) -> ProcessBase:
    """Instantiate a protocol process by name.

    Extra keyword arguments are forwarded to the process constructor (e.g.
    ``leader_rank`` for FPaxos).
    """
    try:
        factory = PROTOCOLS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown protocol {name!r}; available: {', '.join(protocol_names())}"
        ) from exc
    return factory(
        process_id,
        config,
        partitioner=partitioner,
        quorum_system=quorum_system,
        apply_fn=apply_fn,
        **kwargs,
    )
