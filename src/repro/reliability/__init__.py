"""Protocol-generic reliable delivery (ack-driven bounded retransmission).

The paper's protocols assume fair-lossy links and rely on periodic
re-broadcast for liveness; the PR 8 fault campaign showed where that
assumption bites: send-once cross-shard ``MStable``, baseline commit
broadcasts under loss, and a promise GC that never learns what peers
absorbed.  This package closes those gaps with one mechanism — a
per-destination retransmit buffer over epoch-stamped delivery acks —
threaded through :class:`repro.core.base.ProcessBase` so every protocol
shares it.  See ``docs/reliable_delivery.md``.
"""

from repro.reliability.buffer import (
    DEFAULT_BACKOFF_BASE_MS,
    DEFAULT_MAX_ATTEMPTS,
    TRACKED_KIND_IDS,
    RetransmitBuffer,
)

__all__ = [
    "DEFAULT_BACKOFF_BASE_MS",
    "DEFAULT_MAX_ATTEMPTS",
    "TRACKED_KIND_IDS",
    "RetransmitBuffer",
]
