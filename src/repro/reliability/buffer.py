"""The retransmit buffer: critical outbound messages until acknowledged.

A :class:`RetransmitBuffer` tracks the small set of *critical* messages a
process sends — the ones whose loss strands work forever rather than just
delaying it (commit broadcasts, cross-partition stability notifications) —
keyed by ``(destination, wire kind, dot)``.  The receiver acknowledges each
tracked message with an ``MDeliveryAck`` carrying its recovery epoch; until
that ack arrives the buffer re-offers the message on recovery-timeout ticks
with exponential backoff, up to a bounded number of attempts, so a lossy
window is healed by a handful of re-sends instead of a storm.

Design constraints (see ``docs/reliable_delivery.md``):

* **Healthy runs pay nothing.**  The buffer only exists when the cluster
  runner installs it for a fault plan that can lose messages; processes
  gate every hook on a single ``self.reliability is None`` check.
* **Bounded.**  Re-sends back off exponentially (``backoff_base_ms`` ·
  2^attempt) and stop after ``max_attempts``; an entry that exhausts its
  budget is dropped and counted in :attr:`RetransmitBuffer.expired` —
  the periodic watchdogs (``MCommitRequest``, ``MPromiseResync``, the
  cross-shard ``MStable`` watchdog) remain the last-resort safety net.
* **Epoch-stamped.**  Acks carry the acker's recovery epoch; acks from a
  previous epoch of a since-restarted peer are ignored (the restarted
  peer re-acks from its durable state), mirroring how ``GcTracker``
  treats stale frontiers.
* **Deterministic.**  Due entries drain in (due time, track order); no
  set iteration, no randomness.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Sequence, Tuple

#: Wire kind-byte of every tracked message class, mirrored from the
#: ``repro.wire`` registry.  The reliability layer sits *below* the wire
#: package in the import order (``repro.wire`` imports ``repro.core``,
#: which imports this), so the ids are pinned here and cross-checked
#: against ``repro.wire.TYPE_TO_KIND`` by ``tests/test_reliability``.
TRACKED_KIND_IDS: Dict[str, int] = {
    "MCommit": 5,
    "MStable": 10,
    "MDepCommit": 21,
    "MCaesarCommit": 26,
}

#: First re-send one recovery timeout after the original send — the same
#: cadence as the MCommitRequest / MPromiseResync watchdogs, so a lost
#: message is retried exactly when the protocol starts suspecting loss.
DEFAULT_BACKOFF_BASE_MS = 500.0

#: Re-send budget per tracked (destination, kind, dot) entry.  With the
#: default backoff base the attempts land ~0.5 s, 1 s, 2 s, 4 s and 8 s
#: after the original send; anything still unacknowledged after that is
#: a crashed (or partitioned-forever) peer, which the watchdogs and the
#: failure detector own.
DEFAULT_MAX_ATTEMPTS = 5


class _Entry:
    __slots__ = ("message", "attempts", "next_due")

    def __init__(self, message: object, next_due: float) -> None:
        self.message = message
        self.attempts = 0
        self.next_due = next_due


class RetransmitBuffer:
    """Per-process tracking of unacknowledged critical messages."""

    __slots__ = (
        "process_id",
        "backoff_base_ms",
        "max_attempts",
        "_entries",
        "_heap",
        "_seq",
        "_peer_epoch",
        "tracked",
        "acked",
        "resends",
        "expired",
        "stale_acks",
    )

    def __init__(
        self,
        process_id: int,
        backoff_base_ms: float = DEFAULT_BACKOFF_BASE_MS,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> None:
        if backoff_base_ms <= 0:
            raise ValueError("backoff_base_ms must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.process_id = process_id
        self.backoff_base_ms = backoff_base_ms
        self.max_attempts = max_attempts
        #: (destination, kind id, dot) -> live entry.
        self._entries: Dict[Tuple[int, int, object], _Entry] = {}
        #: Lazy schedule: (next_due, insertion seq, key).  Entries whose
        #: recorded due time no longer matches are stale and skipped.
        self._heap: List[Tuple[float, int, Tuple[int, int, object]]] = []
        self._seq = 0
        #: Highest recovery epoch seen per acking peer; acks stamped with
        #: an older epoch are ignored (the peer restarted since).
        self._peer_epoch: Dict[int, int] = {}
        self.tracked = 0
        self.acked = 0
        self.resends = 0
        self.expired = 0
        self.stale_acks = 0

    # -- producers ------------------------------------------------------------

    def track(
        self, destinations: Sequence[int], message: object, now: float
    ) -> int:
        """Start tracking ``message`` toward each (non-self) destination.

        Returns the number of destinations newly tracked.  A destination
        already tracking this exact (kind, dot) keeps its schedule — a
        re-broadcast of the same message is not a fresh budget.
        """
        kind_name = type(message).__name__
        try:
            kind_id = TRACKED_KIND_IDS[kind_name]
        except KeyError:
            raise ValueError(
                f"{kind_name} is not a tracked message kind "
                f"(tracked: {sorted(TRACKED_KIND_IDS)})"
            ) from None
        dot = message.dot
        added = 0
        next_due = now + self.backoff_base_ms
        for destination in destinations:
            if destination == self.process_id:
                continue
            key = (destination, kind_id, dot)
            if key in self._entries:
                continue
            self._entries[key] = _Entry(message, next_due)
            self._seq += 1
            heapq.heappush(self._heap, (next_due, self._seq, key))
            added += 1
        self.tracked += added
        return added

    def record_ack(
        self, destination: int, kind_id: int, dot: object, epoch: int
    ) -> bool:
        """Absorb one delivery ack; returns whether it retired an entry.

        Acks stamped with an epoch older than the highest seen from this
        peer are stale (sent before the peer's last restart) and ignored.
        """
        known = self._peer_epoch.get(destination, 0)
        if epoch < known:
            self.stale_acks += 1
            return False
        if epoch > known:
            self._peer_epoch[destination] = epoch
        entry = self._entries.pop((destination, kind_id, dot), None)
        if entry is None:
            return False
        self.acked += 1
        return True

    # -- consumer -------------------------------------------------------------

    def due(self, now: float) -> List[Tuple[int, object]]:
        """Drain every entry due at ``now``; returns (destination, message)
        pairs to re-send and reschedules each with doubled backoff.

        O(1) when nothing is due (one heap peek), which is the hot case:
        the owning process calls this every tick.
        """
        heap = self._heap
        if not heap or heap[0][0] > now:
            return []
        out: List[Tuple[int, object]] = []
        entries = self._entries
        while heap and heap[0][0] <= now:
            due_at, _, key = heapq.heappop(heap)
            entry = entries.get(key)
            if entry is None or entry.next_due != due_at:
                continue  # acked, expired, or superseded by a later push
            if entry.attempts >= self.max_attempts:
                del entries[key]
                self.expired += 1
                continue
            entry.attempts += 1
            entry.next_due = now + self.backoff_base_ms * (2 ** entry.attempts)
            self._seq += 1
            heapq.heappush(heap, (entry.next_due, self._seq, key))
            self.resends += 1
            out.append((key[0], entry.message))
        return out

    # -- introspection --------------------------------------------------------

    def pending(self) -> int:
        """Number of tracked-but-unacknowledged entries."""
        return len(self._entries)

    def pending_keys(self) -> Iterable[Tuple[int, int, object]]:
        """The live (destination, kind id, dot) keys, in track order."""
        return list(self._entries)

    def stats(self) -> Dict[str, int]:
        return {
            "tracked": self.tracked,
            "acked": self.acked,
            "resends": self.resends,
            "expired": self.expired,
            "stale_acks": self.stale_acks,
            "pending": len(self._entries),
        }
