"""Asyncio runtime: run the protocol state machines as real concurrent tasks.

While the discrete-event simulator (:mod:`repro.simulator`) drives the
protocols with virtual time, this package runs them "for real": each process
is an asyncio task with an inbox queue, messages travel over in-memory
channels (optionally with injected latency), and clients are asyncio
coroutines.  The examples use it to demonstrate the library outside the
simulator, and the integration tests use it to exercise concurrency.
"""

from repro.runtime.cluster import AsyncCluster, AsyncClusterOptions
from repro.runtime.channel import Channel, Router
from repro.runtime.virtual_clock import VirtualClockEventLoop, run_with_virtual_clock

__all__ = [
    "AsyncCluster",
    "AsyncClusterOptions",
    "Channel",
    "Router",
    "VirtualClockEventLoop",
    "run_with_virtual_clock",
]
