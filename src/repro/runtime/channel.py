"""In-memory message channels for the asyncio runtime.

With ``Router(wire_bytes=True)`` every protocol message travels through the
queues as its real encoded frame (:mod:`repro.wire`): the router encodes on
send and :meth:`Channel.get` decodes on receipt, so anything the runtime
exercises also exercises the codecs end-to-end.  Payloads without a codec
(plain strings, test sentinels) pass through unchanged; in wire mode a raw
``bytes`` payload is reserved for frames.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.wire import decode_frame, encode_frame, has_codec


@dataclass
class Channel:
    """An inbox for one endpoint (process or client)."""

    endpoint: int
    queue: "asyncio.Queue[Tuple[int, object]]"
    #: Decode ``bytes`` entries as wire frames (set by ``Router`` in
    #: ``wire_bytes`` mode).
    wire: bool = False

    @classmethod
    def create(cls, endpoint: int, maxsize: int = 0, wire: bool = False) -> "Channel":
        return cls(endpoint=endpoint, queue=asyncio.Queue(maxsize=maxsize), wire=wire)

    async def put(self, sender: int, message: object) -> None:
        await self.queue.put((sender, message))

    async def get(self) -> Tuple[int, object]:
        sender, message = await self.queue.get()
        if self.wire and type(message) is bytes:
            message, _ = decode_frame(message)
        return sender, message

    def empty(self) -> bool:
        return self.queue.empty()


class Router:
    """Routes messages between channels, optionally delaying them.

    ``latency(sender, destination)`` returns the one-way delay in seconds;
    by default delivery is immediate.  Crashed endpoints drop messages,
    matching the crash-stop model.

    With ``wire_bytes=True`` every message whose type has a registered
    codec is encoded to its framed byte form before it enters the
    destination queue and decoded back by :meth:`Channel.get`, so the
    runtime ships real bytes rather than object references.
    """

    def __init__(self, latency=None, wire_bytes: bool = False) -> None:
        self._channels: Dict[int, Channel] = {}
        self._latency = latency
        self._crashed: set = set()
        self.wire_bytes = wire_bytes
        self.delivered = 0
        self.dropped = 0
        #: Total frame bytes shipped through the router in wire mode.
        self.bytes_shipped = 0

    def register(self, endpoint: int) -> Channel:
        """Create (or return) the channel of ``endpoint``."""
        channel = self._channels.get(endpoint)
        if channel is None:
            channel = Channel.create(endpoint, wire=self.wire_bytes)
            self._channels[endpoint] = channel
        return channel

    def channel(self, endpoint: int) -> Optional[Channel]:
        return self._channels.get(endpoint)

    def reset(self) -> None:
        """Recreate every channel's queue.

        ``asyncio.Queue`` binds to the first loop that awaits it, so a
        cluster restarting under a fresh event loop needs fresh queues.
        Undelivered messages are dropped, which the crash-stop/fair-lossy
        link model permits.
        """
        for channel in self._channels.values():
            channel.queue = asyncio.Queue()

    def crash(self, endpoint: int) -> None:
        self._crashed.add(endpoint)

    def is_crashed(self, endpoint: int) -> bool:
        return endpoint in self._crashed

    async def send(self, sender: int, destination: int, message: object) -> None:
        """Deliver one message, honouring latency and crashes."""
        if destination in self._crashed:
            self.dropped += 1
            return
        channel = self._channels.get(destination)
        if channel is None:
            self.dropped += 1
            return
        if self.wire_bytes and has_codec(type(message)):
            frame = encode_frame(message)
            self.bytes_shipped += len(frame)
            message = frame
        if self._latency is not None:
            delay = self._latency(sender, destination)
            if delay > 0:
                await asyncio.sleep(delay)
        await channel.put(sender, message)
        self.delivered += 1

    def send_soon(self, sender: int, destination: int, message: object) -> None:
        """Schedule a delivery without awaiting it."""
        asyncio.get_event_loop().create_task(self.send(sender, destination, message))
