"""In-memory message channels for the asyncio runtime."""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass
class Channel:
    """An inbox for one endpoint (process or client)."""

    endpoint: int
    queue: "asyncio.Queue[Tuple[int, object]]"

    @classmethod
    def create(cls, endpoint: int, maxsize: int = 0) -> "Channel":
        return cls(endpoint=endpoint, queue=asyncio.Queue(maxsize=maxsize))

    async def put(self, sender: int, message: object) -> None:
        await self.queue.put((sender, message))

    async def get(self) -> Tuple[int, object]:
        return await self.queue.get()

    def empty(self) -> bool:
        return self.queue.empty()


class Router:
    """Routes messages between channels, optionally delaying them.

    ``latency(sender, destination)`` returns the one-way delay in seconds;
    by default delivery is immediate.  Crashed endpoints drop messages,
    matching the crash-stop model.
    """

    def __init__(self, latency=None) -> None:
        self._channels: Dict[int, Channel] = {}
        self._latency = latency
        self._crashed: set = set()
        self.delivered = 0
        self.dropped = 0

    def register(self, endpoint: int) -> Channel:
        """Create (or return) the channel of ``endpoint``."""
        channel = self._channels.get(endpoint)
        if channel is None:
            channel = Channel.create(endpoint)
            self._channels[endpoint] = channel
        return channel

    def channel(self, endpoint: int) -> Optional[Channel]:
        return self._channels.get(endpoint)

    def reset(self) -> None:
        """Recreate every channel's queue.

        ``asyncio.Queue`` binds to the first loop that awaits it, so a
        cluster restarting under a fresh event loop needs fresh queues.
        Undelivered messages are dropped, which the crash-stop/fair-lossy
        link model permits.
        """
        for channel in self._channels.values():
            channel.queue = asyncio.Queue()

    def crash(self, endpoint: int) -> None:
        self._crashed.add(endpoint)

    def is_crashed(self, endpoint: int) -> bool:
        return endpoint in self._crashed

    async def send(self, sender: int, destination: int, message: object) -> None:
        """Deliver one message, honouring latency and crashes."""
        if destination in self._crashed:
            self.dropped += 1
            return
        channel = self._channels.get(destination)
        if channel is None:
            self.dropped += 1
            return
        if self._latency is not None:
            delay = self._latency(sender, destination)
            if delay > 0:
                await asyncio.sleep(delay)
        await channel.put(sender, message)
        self.delivered += 1

    def send_soon(self, sender: int, destination: int, message: object) -> None:
        """Schedule a delivery without awaiting it."""
        asyncio.get_event_loop().create_task(self.send(sender, destination, message))
