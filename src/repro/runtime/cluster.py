"""AsyncCluster: run a replicated deployment as asyncio tasks.

Each protocol process runs in its own task: it waits on its inbox, handles
one message at a time, periodically ticks, and its outbox is drained into
the router after every step.  Clients submit commands through
:meth:`AsyncCluster.submit` and await the execution reply.

The runtime works with any protocol from :mod:`repro.protocols.registry`.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.base import ProcessBase
from repro.core.commands import Command, Partitioner
from repro.core.config import ProtocolConfig
from repro.core.identifiers import Dot
from repro.core.messages import ClientReply
from repro.core.quorums import QuorumSystem
from repro.kvstore.store import KeyValueStore
from repro.protocols.registry import build_process
from repro.runtime.channel import Router


@dataclass
class AsyncClusterOptions:
    """Tunables of the asyncio runtime."""

    protocol: str = "tempo"
    num_processes: int = 3
    faults: int = 1
    num_partitions: int = 1
    tick_interval: float = 0.005
    latency_seconds: float = 0.0
    #: Ship protocol messages through the router as encoded wire frames
    #: (encode on send, decode on receive).  On by default so every runtime
    #: test exercises the :mod:`repro.wire` codec path end-to-end.
    wire_bytes: bool = True
    protocol_kwargs: Dict[str, object] = field(default_factory=dict)


class AsyncCluster:
    """A local cluster of protocol processes driven by asyncio."""

    def __init__(self, options: Optional[AsyncClusterOptions] = None) -> None:
        self.options = options or AsyncClusterOptions()
        self.config = ProtocolConfig(
            num_processes=self.options.num_processes,
            faults=self.options.faults,
            num_partitions=self.options.num_partitions,
        )
        self.partitioner = Partitioner(self.config.num_partitions)
        self.quorum_system = QuorumSystem(self.config)
        latency = None
        if self.options.latency_seconds > 0:
            latency = lambda sender, destination: self.options.latency_seconds  # noqa: E731
        self.router = Router(latency=latency, wire_bytes=self.options.wire_bytes)
        self.stores: Dict[int, KeyValueStore] = {}
        self.processes: List[ProcessBase] = []
        for process_id in range(self.config.total_processes()):
            store = KeyValueStore(self.config.partition_of_process(process_id))
            self.stores[process_id] = store
            process = build_process(
                self.options.protocol,
                process_id,
                self.config,
                partitioner=self.partitioner,
                quorum_system=self.quorum_system,
                apply_fn=store.apply,
                **self.options.protocol_kwargs,
            )
            self.processes.append(process)
            self.router.register(process_id)
        self._tasks: List[asyncio.Task] = []
        self._running = False
        self._pending_replies: Dict[Dot, asyncio.Future] = {}
        self._client_endpoint = -1
        self.router.register(self._client_endpoint)
        #: Millisecond clock based on the event loop's time so the cluster
        #: works unchanged on a virtual-clock loop
        #: (:mod:`repro.runtime.virtual_clock`).  Bound lazily because the
        #: cluster may be constructed before any loop is running; falls
        #: back to ``time.monotonic`` outside a loop.
        self._time_fn = None
        self._start_time = 0.0
        #: Loop the cluster last started under; a restart under a different
        #: loop resets the router channels (see :meth:`start`).
        self._loop = None

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        """Start one task per process plus the client-reply dispatcher."""
        if self._running:
            return
        loop = asyncio.get_running_loop()
        if self._loop is not None and loop is not self._loop:
            # Restarted under a different loop (e.g. a second
            # run_with_virtual_clock call): the old loop's queues are
            # unusable, so give every endpoint a fresh inbox.
            self.router.reset()
        self._loop = loop
        self._rebind_clock()
        self._running = True
        for process in self.processes:
            self._tasks.append(asyncio.create_task(self._run_process(process)))
        self._tasks.append(asyncio.create_task(self._run_client_inbox()))

    async def stop(self) -> None:
        """Cancel all tasks and wait for them to finish."""
        self._running = False
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []

    async def __aenter__(self) -> "AsyncCluster":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- process loop ---------------------------------------------------------------

    def _rebind_clock(self) -> None:
        """(Re)bind the millisecond clock to the current loop's time.

        A cluster may be stopped and started again under a different event
        loop (each ``run_with_virtual_clock`` call creates a fresh one);
        the rebinding preserves the already-elapsed cluster time so
        ``_now_ms`` stays monotonic across restarts.
        """
        try:
            loop_time = asyncio.get_running_loop().time
        except RuntimeError:
            loop_time = time.monotonic
        # Bound-method equality: same loop (or same module function) only.
        if self._time_fn == loop_time:
            return
        elapsed = 0.0
        if self._time_fn is not None:
            elapsed = self._time_fn() - self._start_time
        self._time_fn = loop_time
        self._start_time = loop_time() - elapsed

    def _now_ms(self) -> float:
        if self._time_fn is None:
            self._rebind_clock()
        return (self._time_fn() - self._start_time) * 1000.0

    async def _flush(self, process: ProcessBase) -> None:
        for envelope in process.drain_outbox():
            await self.router.send(
                envelope.sender, envelope.destination, envelope.message
            )

    async def _run_process(self, process: ProcessBase) -> None:
        channel = self.router.channel(process.process_id)
        assert channel is not None
        try:
            # The loop re-checks ``_running``: ``asyncio.wait_for`` can
            # swallow a one-shot ``Task.cancel()`` when the inner ``get()``
            # completes in the same event-loop step, which would leave this
            # task alive forever and deadlock ``stop()``'s gather.
            while self._running:
                try:
                    sender, message = await asyncio.wait_for(
                        channel.get(), timeout=self.options.tick_interval
                    )
                    process.deliver(sender, message, self._now_ms())
                except asyncio.TimeoutError:
                    process.tick(self._now_ms())
                await self._flush(process)
        except asyncio.CancelledError:
            return

    async def _run_client_inbox(self) -> None:
        channel = self.router.channel(self._client_endpoint)
        assert channel is not None
        try:
            while self._running:
                _, message = await channel.get()
                if isinstance(message, ClientReply):
                    future = self._pending_replies.pop(message.dot, None)
                    if future is not None and not future.done():
                        future.set_result(message)
        except asyncio.CancelledError:
            return

    # -- client API ---------------------------------------------------------------------

    async def submit(
        self,
        keys: Sequence[str],
        process_id: int = 0,
        payload_size: int = 64,
        timeout: float = 10.0,
    ) -> ClientReply:
        """Submit a write command at ``process_id`` and await its execution."""
        process = self.processes[process_id]
        dot = process.dot_generator.next_id()
        command = Command.write(dot, keys, payload_size=payload_size, client_id=0)
        future: asyncio.Future = asyncio.get_event_loop().create_future()
        self._pending_replies[dot] = future
        process.submit(command, self._now_ms())
        await self._flush(process)
        return await asyncio.wait_for(future, timeout=timeout)

    async def submit_many(
        self, keys_list: Sequence[Sequence[str]], timeout: float = 30.0
    ) -> List[ClientReply]:
        """Submit several commands concurrently, round-robin over processes."""
        coros = [
            self.submit(keys, process_id=index % len(self.processes), timeout=timeout)
            for index, keys in enumerate(keys_list)
        ]
        return list(await asyncio.gather(*coros))

    # -- introspection -------------------------------------------------------------------

    def value_of(self, key: str, process_id: int = 0) -> Optional[str]:
        """Value of ``key`` in the store of ``process_id``."""
        return self.stores[process_id].get(key)

    def executed_counts(self) -> Dict[int, int]:
        """Number of commands executed per process."""
        return {
            process.process_id: len(process.executed) for process in self.processes
        }

    def stores_agree(self) -> bool:
        """Whether every replica of every partition has identical contents."""
        by_partition: Dict[int, List[KeyValueStore]] = {}
        for process_id, store in self.stores.items():
            partition = self.config.partition_of_process(process_id)
            by_partition.setdefault(partition, []).append(store)
        for stores in by_partition.values():
            snapshots = [store.snapshot() for store in stores]
            if any(snapshot != snapshots[0] for snapshot in snapshots[1:]):
                return False
        return True
