"""Framed byte stream transport (UDS/TCP) behind the channel interface.

The asyncio runtime normally ships frames through in-memory queues
(:mod:`repro.runtime.channel`).  This module carries the exact same frames
over a real byte stream — a Unix domain socket or a TCP connection — so the
wire format is exercised against an actual transport, partial reads and
all.

Stream unit::

    uvarint(sender) + frame        # frame = uvarint(len) + kind_byte + body

A :class:`StreamServer` accepts connections and feeds every decoded message
into an ordinary :class:`~repro.runtime.channel.Channel`, so consumers call
``channel.get()`` exactly as they do with the in-memory router.  A
:class:`StreamConnection` is the sending side.
"""

from __future__ import annotations

import asyncio
from typing import Optional, Tuple

from repro.runtime.channel import Channel
from repro.wire import WireError, decode
from repro.wire.primitives import write_uvarint


async def _read_uvarint(reader: asyncio.StreamReader) -> Optional[int]:
    """Read one unsigned varint from the stream; ``None`` on clean EOF.

    EOF is clean only at the first byte (a frame boundary); mid-varint EOF
    is a truncated stream and raises :class:`WireError`.
    """
    value = 0
    shift = 0
    for index in range(10):
        try:
            byte = (await reader.readexactly(1))[0]
        except asyncio.IncompleteReadError:
            if index == 0:
                return None
            raise WireError("stream truncated inside a varint") from None
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value
        shift += 7
    raise WireError("varint too long on stream")


async def read_message(reader: asyncio.StreamReader) -> Optional[Tuple[int, object]]:
    """Read one ``(sender, message)`` unit; ``None`` on clean EOF."""
    sender = await _read_uvarint(reader)
    if sender is None:
        return None
    length = await _read_uvarint(reader)
    if length is None:
        raise WireError("stream truncated before frame length")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise WireError("stream truncated inside a frame") from error
    return sender, decode(payload)


def _encode_unit(sender: int, message: object) -> bytes:
    from repro.wire import encode

    buf = bytearray()
    write_uvarint(buf, sender)
    payload = encode(message)
    write_uvarint(buf, len(payload))
    buf += payload
    return bytes(buf)


class StreamConnection:
    """Sending side of a framed stream (one connection to a server)."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self.bytes_sent = 0

    @classmethod
    async def open_unix(cls, path: str) -> "StreamConnection":
        reader, writer = await asyncio.open_unix_connection(path)
        return cls(reader, writer)

    @classmethod
    async def open_tcp(cls, host: str, port: int) -> "StreamConnection":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def send(self, sender: int, message: object) -> None:
        unit = _encode_unit(sender, message)
        self._writer.write(unit)
        self.bytes_sent += len(unit)
        await self._writer.drain()

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass


class StreamServer:
    """Accepts framed stream connections and feeds a :class:`Channel`.

    Every message decoded off any connection is put into ``channel``; the
    consumer side is indistinguishable from the in-memory router path.
    """

    def __init__(self, channel: Channel) -> None:
        self.channel = channel
        self.frames_received = 0
        self.decode_errors = 0
        self._server: Optional[asyncio.AbstractServer] = None

    @classmethod
    async def serve_unix(cls, channel: Channel, path: str) -> "StreamServer":
        server = cls(channel)
        server._server = await asyncio.start_unix_server(server._handle, path=path)
        return server

    @classmethod
    async def serve_tcp(
        cls, channel: Channel, host: str = "127.0.0.1", port: int = 0
    ) -> "StreamServer":
        server = cls(channel)
        server._server = await asyncio.start_server(server._handle, host=host, port=port)
        return server

    @property
    def tcp_port(self) -> int:
        """The bound TCP port (after :meth:`serve_tcp` with ``port=0``)."""
        assert self._server is not None
        return self._server.sockets[0].getsockname()[1]

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                unit = await read_message(reader)
                if unit is None:
                    break
                self.frames_received += 1
                await self.channel.put(unit[0], unit[1])
        except WireError:
            self.decode_errors += 1
        finally:
            writer.close()

    async def close(self) -> None:
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
