"""Virtual-time asyncio event loop for deterministic runtime tests.

The asyncio runtime (:mod:`repro.runtime.cluster`) is time-driven: each
process task waits on its inbox with a ``tick_interval`` timeout and falls
back to :meth:`ProcessBase.tick`.  On a real clock those timeouts burn wall
time (5 ms per tick per process) and make test outcomes depend on scheduler
jitter.  :class:`VirtualClockEventLoop` removes both problems: whenever the
loop has no ready callbacks it jumps its clock straight to the earliest
pending timer instead of sleeping, so timeouts and ``asyncio.sleep`` fire
instantly in virtual time while message passing (which wakes tasks through
ready callbacks) is always fully drained before time advances.

Use :func:`run_with_virtual_clock` as a drop-in replacement for
``asyncio.run`` in tests.
"""

from __future__ import annotations

import asyncio
import heapq
from typing import Any, Coroutine


class VirtualClockEventLoop(asyncio.SelectorEventLoop):
    """A selector event loop whose clock only moves when the loop is idle."""

    def __init__(self) -> None:
        super().__init__()
        self._virtual_now = 0.0

    def time(self) -> float:
        return self._virtual_now

    def _run_once(self) -> None:
        # When nothing is ready to run, fast-forward the clock to the
        # earliest non-cancelled timer so the selector never blocks.  The
        # base implementation then computes a zero timeout for the poll and
        # fires the timer immediately.  ``_scheduled`` is a min-heap, so
        # popping cancelled heads (with the same bookkeeping the base loop
        # does) and reading the head is O(cancelled), not O(timers).
        if not self._ready and self._scheduled:
            scheduled = self._scheduled
            while scheduled and scheduled[0]._cancelled:
                self._timer_cancelled_count -= 1
                handle = heapq.heappop(scheduled)
                handle._scheduled = False
            if scheduled and scheduled[0]._when > self._virtual_now:
                self._virtual_now = scheduled[0]._when
        super()._run_once()


def _cancel_pending_tasks(loop: asyncio.AbstractEventLoop) -> None:
    """Cancel and reap leftover tasks, as ``asyncio.run`` does on exit."""
    tasks = asyncio.all_tasks(loop)
    if not tasks:
        return
    for task in tasks:
        task.cancel()
    loop.run_until_complete(asyncio.gather(*tasks, return_exceptions=True))


def run_with_virtual_clock(coroutine: Coroutine[Any, Any, Any]) -> Any:
    """Run ``coroutine`` to completion on a fresh virtual-clock loop."""
    loop = VirtualClockEventLoop()
    try:
        asyncio.set_event_loop(loop)
        return loop.run_until_complete(coroutine)
    finally:
        try:
            _cancel_pending_tasks(loop)
            loop.run_until_complete(loop.shutdown_asyncgens())
        finally:
            asyncio.set_event_loop(None)
            loop.close()
