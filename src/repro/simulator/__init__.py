"""Discrete-event geo-distributed simulator.

This package is the substrate on which the latency experiments run.  It
models processes placed at sites, message delivery with per-site-pair
latencies (the EC2 ping matrix of Appendix A by default), periodic ticks,
crashes, and closed-loop clients.

The simulator corresponds to the paper's "simulator" execution mode: it
computes observed client latency in a given wide-area configuration while
disregarding CPU and network bandwidth bottlenecks (those are modelled
separately by :mod:`repro.experiments.throughput_model` /
:mod:`repro.simulator.resources`).
"""

from repro.simulator.events import Event, EventKind, EventQueue
from repro.simulator.latency import EC2_PING_LATENCIES, LatencyMatrix, ec2_latency_matrix
from repro.simulator.network import Network, NetworkOptions
from repro.simulator.sim import Simulation, SimulationOptions
from repro.simulator.inline import InlineNetwork

__all__ = [
    "EC2_PING_LATENCIES",
    "Event",
    "EventKind",
    "EventQueue",
    "InlineNetwork",
    "LatencyMatrix",
    "Network",
    "NetworkOptions",
    "Simulation",
    "SimulationOptions",
    "ec2_latency_matrix",
]
