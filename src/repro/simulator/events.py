"""Event queue for the discrete-event simulator.

Events are ordered by ``(time, sequence)`` so that simultaneous events are
processed in insertion order, which keeps simulations deterministic.

:class:`Event` is a ``NamedTuple`` rather than a dataclass: events are the
unit of work of the simulation loop, and a tuple both allocates faster and
lets the heap compare entries with C-level tuple comparison (the unique
``sequence`` field guarantees the comparison never reaches the non-orderable
fields behind it).  The simulation loop additionally pushes *bare* tuples
with the same field order onto ``_heap`` on its hottest scheduling paths;
:meth:`EventQueue.pop` normalises them back to :class:`Event`.
"""

from __future__ import annotations

import enum
import itertools
from heapq import heappop, heappush
from typing import Any, Iterator, List, NamedTuple, Optional


class EventKind(enum.Enum):
    """Kinds of simulator events."""

    MESSAGE = "message"
    TICK = "tick"
    CLIENT = "client"
    CRASH = "crash"
    CUSTOM = "custom"


class Event(NamedTuple):
    """A scheduled simulator event."""

    time: float
    sequence: int
    kind: EventKind
    target: int = -1
    payload: Any = None
    sender: int = -1


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def push(
        self,
        time: float,
        kind: EventKind,
        target: int = -1,
        payload: Any = None,
        sender: int = -1,
    ) -> Event:
        """Schedule an event and return it."""
        if time < 0:
            raise ValueError("event time must be non-negative")
        event = Event(time, next(self._counter), kind, target, payload, sender)
        heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest event, or ``None`` when empty."""
        if not self._heap:
            return None
        event = heappop(self._heap)
        # The simulation loop pushes bare tuples (same field order) for
        # speed; normalise here so the public API always yields Events.
        if type(event) is Event:
            return event
        return Event._make(event)

    def peek_time(self) -> Optional[float]:
        """Time of the earliest scheduled event, or ``None`` when empty."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[Event]:
        """Drain the queue in time order (consumes it)."""
        while self._heap:
            event = self.pop()
            if event is not None:
                yield event
