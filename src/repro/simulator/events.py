"""Two-level timestamp-lane event queue for the discrete-event simulator.

The simulated deployments deliver messages after delays drawn from a *small
discrete set* (the EC2 one-way latency matrix, the intra-site
``local_latency_ms``, the 5 ms tick interval), so scheduled events cluster on
few distinct timestamps.  A single binary heap over every event pays an
O(log n) sift per event; this queue instead keeps

* a small binary heap of *unique* timestamps, and
* a FIFO ``deque`` lane per timestamp,

so N events scheduled at one instant cost one heap operation instead of N.
Ordering is ``(time, insertion order)`` **by construction**: events with the
same float time land in the same lane and leave it FIFO, so the explicit
``itertools.count`` tiebreak of the seed implementation disappears and events
never need to be comparable at all.

:class:`Event` is a ``NamedTuple``: events are the unit of work of the
simulation loop and a tuple allocates fast and unpacks at C speed.  The
validation-free hot path :meth:`EventQueue.schedule_message` appends *bare*
tuples with the same field order; :meth:`EventQueue.pop` normalises them back
to :class:`Event`, and the simulation loop (which drains whole lanes via
:meth:`EventQueue.pop_lane`) unpacks positionally, which works for both.

``heap_ops`` counts the operations on the timestamp heap (lane creations and
lane retirements); the ratio ``heap_ops / events`` is the scheduler's win
over the flat heap and is recorded in ``BENCH_fig6.json``.
"""

from __future__ import annotations

import enum
from collections import deque
from heapq import heappop, heappush
from typing import Any, Deque, Dict, Iterator, List, NamedTuple, Optional, Tuple


class EventKind(enum.IntEnum):
    """Kinds of simulator events.

    An ``IntEnum`` so the simulation loop can dispatch through a table
    indexed by kind; the values are the table slots.
    """

    MESSAGE = 0
    TICK = 1
    CLIENT = 2
    CRASH = 3
    CUSTOM = 4
    #: A scripted fault-plan action (partition/heal, link degradation
    #: window edge, targeted-loss window edge, process restart).  The
    #: payload is a callable applied to the simulation at the event's time.
    FAULT = 5


class Event(NamedTuple):
    """A scheduled simulator event."""

    time: float
    kind: EventKind
    target: int = -1
    payload: Any = None
    sender: int = -1


_MESSAGE = EventKind.MESSAGE

#: A lane: the events of one timestamp, in insertion order.
Lane = Deque[Event]


class EventQueue:
    """A deterministic two-level (timestamp -> FIFO lane) event queue.

    Public API summary:

    * :meth:`push` — validated scheduling of any event kind;
    * :meth:`schedule_message` — validation-free MESSAGE scheduling, the
      network-delivery hot path;
    * :meth:`pop` / :meth:`peek_time` / iteration — per-event consumption;
    * :meth:`pop_lane` / :meth:`requeue_lane` — batch consumption for the
      simulation loop (everything at the earliest instant at once).

    The attributes behind it (``_times``, ``_lanes``) are private: nothing
    outside this module may touch them (enforced by
    ``tests/test_simulator/test_scheduler_api.py``).
    """

    __slots__ = ("_times", "_lanes", "_size", "heap_ops")

    def __init__(self) -> None:
        #: Min-heap of the distinct timestamps that currently have a lane.
        self._times: List[float] = []
        #: Timestamp -> FIFO lane of events scheduled at that instant.
        self._lanes: Dict[float, Lane] = {}
        self._size = 0
        #: Operations performed on the timestamp heap (pushes + pops); the
        #: scheduler's cost metric, exposed through the experiment stats.
        self.heap_ops = 0

    # -- scheduling -----------------------------------------------------------

    def push(
        self,
        time: float,
        kind: EventKind,
        target: int = -1,
        payload: Any = None,
        sender: int = -1,
    ) -> Event:
        """Schedule an event and return it (validates the timestamp)."""
        if time < 0:
            raise ValueError("event time must be non-negative")
        event = Event(time, kind, target, payload, sender)
        lane = self._lanes.get(time)
        if lane is None:
            self._lanes[time] = lane = deque()
            heappush(self._times, time)
            self.heap_ops += 1
        lane.append(event)
        self._size += 1
        return event

    def schedule_message(
        self, at: float, sender: int, destination: int, payload: Any
    ) -> None:
        """Schedule a MESSAGE delivery: the validation-free hot path.

        The signature matches the ``deliver(at, sender, destination,
        message)`` callback of :meth:`repro.simulator.network.Network.transmit`,
        so the bound method is passed to the network directly.  Network
        delays are non-negative sums of non-negative terms, so the
        ``time >= 0`` check of :meth:`push` is skipped, and a bare tuple
        (same field order as :class:`Event`) is appended instead of a
        ``NamedTuple``.
        """
        lane = self._lanes.get(at)
        if lane is None:
            self._lanes[at] = lane = deque()
            heappush(self._times, at)
            self.heap_ops += 1
        lane.append((at, _MESSAGE, destination, payload, sender))
        self._size += 1

    # -- per-event consumption ------------------------------------------------

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest event, or ``None`` when empty."""
        if not self._size:
            return None
        times = self._times
        time = times[0]
        lane = self._lanes[time]
        event = lane.popleft()
        if not lane:
            heappop(times)
            self.heap_ops += 1
            del self._lanes[time]
        self._size -= 1
        # ``schedule_message`` appends bare tuples; normalise so the public
        # API always yields Events.
        if type(event) is Event:
            return event
        return Event._make(event)

    def peek_time(self) -> Optional[float]:
        """Time of the earliest scheduled event, or ``None`` when empty."""
        return self._times[0] if self._times else None

    # -- lane consumption (the simulation loop) -------------------------------

    def pop_lane(
        self, horizon: Optional[float] = None
    ) -> Optional[Tuple[float, Lane]]:
        """Remove and return ``(time, lane)`` for the earliest timestamp.

        Returns ``None`` when the queue is empty or the earliest timestamp
        lies beyond ``horizon``.  The returned lane is owned by the caller:
        events pushed at the same timestamp *while the caller drains it* open
        a fresh lane, which a later :meth:`pop_lane` returns — preserving
        global insertion order exactly as a flat heap would.
        """
        times = self._times
        if not times:
            return None
        time = times[0]
        if horizon is not None and time > horizon:
            return None
        heappop(times)
        self.heap_ops += 1
        lane = self._lanes.pop(time)
        self._size -= len(lane)
        return time, lane

    def requeue_lane(self, time: float, events: Lane) -> None:
        """Return the unprocessed remainder of a popped lane to the queue.

        Used by the simulation loop when an event budget or stop predicate
        halts mid-lane.  The remainder is placed *ahead* of any event pushed
        at the same timestamp since the lane was popped, restoring the exact
        pre-pop order.
        """
        if not events:
            # Registering an empty lane would leave a phantom timestamp in
            # the heap (peek_time lies, pop crashes on the empty lane).
            return
        lane = self._lanes.get(time)
        if lane is None:
            self._lanes[time] = events if type(events) is deque else deque(events)
            heappush(self._times, time)
            self.heap_ops += 1
        else:
            lane.extendleft(reversed(events))
        self._size += len(events)

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self) -> Iterator[Event]:
        """Drain the queue in time order (consumes it)."""
        while self._size:
            event = self.pop()
            if event is not None:
                yield event
