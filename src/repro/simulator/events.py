"""Event queue for the discrete-event simulator.

Events are ordered by ``(time, sequence)`` so that simultaneous events are
processed in insertion order, which keeps simulations deterministic.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional


class EventKind(enum.Enum):
    """Kinds of simulator events."""

    MESSAGE = "message"
    TICK = "tick"
    CLIENT = "client"
    CRASH = "crash"
    CUSTOM = "custom"


@dataclass(order=True)
class Event:
    """A scheduled simulator event."""

    time: float
    sequence: int
    kind: EventKind = field(compare=False)
    target: int = field(compare=False, default=-1)
    payload: Any = field(compare=False, default=None)
    sender: int = field(compare=False, default=-1)


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()
        self._size = 0

    def push(
        self,
        time: float,
        kind: EventKind,
        target: int = -1,
        payload: Any = None,
        sender: int = -1,
    ) -> Event:
        """Schedule an event and return it."""
        if time < 0:
            raise ValueError("event time must be non-negative")
        event = Event(
            time=time,
            sequence=next(self._counter),
            kind=kind,
            target=target,
            payload=payload,
            sender=sender,
        )
        heapq.heappush(self._heap, event)
        self._size += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest event, or ``None`` when empty."""
        if not self._heap:
            return None
        self._size -= 1
        return heapq.heappop(self._heap)

    def peek_time(self) -> Optional[float]:
        """Time of the earliest scheduled event, or ``None`` when empty."""
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[Event]:
        """Drain the queue in time order (consumes it)."""
        while self._heap:
            event = self.pop()
            if event is not None:
                yield event
