"""Inline (zero-latency) runtime for driving protocol processes in tests.

The inline network delivers every queued message immediately, in FIFO order,
with no latency at all.  It is convenient for unit tests of protocol logic
where wall-clock behaviour does not matter, and for the pathological-scenario
experiments that only care about message *orderings*.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

from repro.core.base import Envelope, ProcessBase


class InlineNetwork:
    """Synchronous message pump over a set of processes.

    Messages to unknown destinations (e.g. clients, addressed with negative
    identifiers) are collected in :attr:`undeliverable` for inspection.
    """

    def __init__(self, processes: Iterable[ProcessBase]) -> None:
        self.processes: Dict[int, ProcessBase] = {
            process.process_id: process for process in processes
        }
        self.undeliverable: List[Envelope] = []
        self.delivered: int = 0
        self._reorder: Optional[Callable[[List[Envelope]], List[Envelope]]] = None

    def set_reorder(self, reorder: Callable[[List[Envelope]], List[Envelope]]) -> None:
        """Install a hook that may reorder each drained outbox batch (used by
        adversarial-schedule tests)."""
        self._reorder = reorder

    def collect(self) -> List[Envelope]:
        """Drain every process outbox once."""
        envelopes: List[Envelope] = []
        for process in self.processes.values():
            envelopes.extend(process.drain_outbox())
        if self._reorder is not None:
            envelopes = self._reorder(envelopes)
        return envelopes

    def step(self, now: float = 0.0) -> int:
        """Deliver one round of queued messages; return how many were sent."""
        envelopes = self.collect()
        for envelope in envelopes:
            target = self.processes.get(envelope.destination)
            if target is None:
                self.undeliverable.append(envelope)
                continue
            target.deliver(envelope.sender, envelope.message, now)
            self.delivered += 1
        return len(envelopes)

    def run(self, now: float = 0.0, max_rounds: int = 10_000) -> int:
        """Deliver messages until quiescence; return total rounds used."""
        rounds = 0
        while rounds < max_rounds:
            if self.step(now) == 0:
                return rounds
            rounds += 1
        raise RuntimeError("inline network did not quiesce")

    def tick_all(self, now: float) -> None:
        """Invoke ``tick`` on every process, then deliver until quiescent."""
        for process in self.processes.values():
            if process.alive:
                process.tick(now)
        self.run(now)

    def settle(self, now: float = 0.0, rounds: int = 10) -> None:
        """Alternate ticks and delivery a few times; useful after commits to
        let promise broadcast and stability detection run."""
        for index in range(rounds):
            self.tick_all(now + index * 1.0)


class RecordingNetwork(InlineNetwork):
    """Inline network that also records every delivered envelope."""

    def __init__(self, processes: Iterable[ProcessBase]) -> None:
        super().__init__(processes)
        self.log: List[Tuple[int, int, str]] = []
        self._queue: Deque[Envelope] = deque()

    def step(self, now: float = 0.0) -> int:
        envelopes = self.collect()
        for envelope in envelopes:
            self.log.append(
                (envelope.sender, envelope.destination, type(envelope.message).__name__)
            )
        count = 0
        for envelope in envelopes:
            target = self.processes.get(envelope.destination)
            if target is None:
                self.undeliverable.append(envelope)
                continue
            target.deliver(envelope.sender, envelope.message, now)
            count += 1
        self.delivered += count
        return len(envelopes)
