"""Wide-area latency data and latency matrices.

``EC2_PING_LATENCIES`` reproduces Table 2 of the paper (Appendix A): the
average round-trip ping latency, in milliseconds, between the five EC2
regions used in the evaluation.  One-way latencies are modelled as half the
ping.  Intra-site latency defaults to a small constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence

#: Region names used throughout the evaluation (§6.2).
EC2_REGIONS = (
    "ireland",
    "n-california",
    "singapore",
    "canada",
    "sao-paulo",
)

#: Round-trip ping latencies in milliseconds (Table 2, symmetric closure).
EC2_PING_LATENCIES: Dict[str, Dict[str, float]] = {
    "ireland": {
        "ireland": 0.5,
        "n-california": 141.0,
        "singapore": 186.0,
        "canada": 72.0,
        "sao-paulo": 183.0,
    },
    "n-california": {
        "ireland": 141.0,
        "n-california": 0.5,
        "singapore": 181.0,
        "canada": 78.0,
        "sao-paulo": 190.0,
    },
    "singapore": {
        "ireland": 186.0,
        "n-california": 181.0,
        "singapore": 0.5,
        "canada": 221.0,
        "sao-paulo": 338.0,
    },
    "canada": {
        "ireland": 72.0,
        "n-california": 78.0,
        "singapore": 221.0,
        "canada": 0.5,
        "sao-paulo": 123.0,
    },
    "sao-paulo": {
        "ireland": 183.0,
        "n-california": 190.0,
        "singapore": 338.0,
        "canada": 123.0,
        "sao-paulo": 0.5,
    },
}

#: Default one-way latency between two processes at the same site.
DEFAULT_LOCAL_LATENCY = 0.25


@dataclass
class LatencyMatrix:
    """One-way latencies between sites, addressed by site name."""

    sites: Sequence[str]
    one_way: Mapping[str, Mapping[str, float]]

    def __post_init__(self) -> None:
        for a in self.sites:
            if a not in self.one_way:
                raise ValueError(f"missing latency row for site {a!r}")
            for b in self.sites:
                if b not in self.one_way[a]:
                    raise ValueError(f"missing latency entry {a!r} -> {b!r}")

    def latency(self, site_a: str, site_b: str) -> float:
        """One-way latency, in milliseconds, from ``site_a`` to ``site_b``."""
        return float(self.one_way[site_a][site_b])

    def rtt(self, site_a: str, site_b: str) -> float:
        """Round-trip latency between two sites."""
        return self.latency(site_a, site_b) + self.latency(site_b, site_a)

    def average_rtt(self, site: str) -> float:
        """Average RTT from ``site`` to every *other* site."""
        others = [other for other in self.sites if other != site]
        if not others:
            return 0.0
        return sum(self.rtt(site, other) for other in others) / len(others)

    def closest_sites(self, site: str, count: int) -> List[str]:
        """The ``count`` sites closest to ``site`` (excluding itself)."""
        others = sorted(
            (other for other in self.sites if other != site),
            key=lambda other: (self.latency(site, other), other),
        )
        return others[:count]

    def quorum_latency(self, site: str, quorum_size: int) -> float:
        """Round-trip latency to reach a quorum of ``quorum_size`` sites
        (including ``site`` itself): the RTT to the (quorum_size-1)-th
        closest site."""
        if quorum_size <= 1:
            return 0.0
        closest = self.closest_sites(site, quorum_size - 1)
        if len(closest) < quorum_size - 1:
            raise ValueError("not enough sites for the requested quorum size")
        return max(self.rtt(site, other) for other in closest)


def ec2_latency_matrix(sites: Iterable[str] = EC2_REGIONS) -> LatencyMatrix:
    """Build a :class:`LatencyMatrix` of one-way latencies from Table 2."""
    sites = list(sites)
    one_way: Dict[str, Dict[str, float]] = {}
    for a in sites:
        one_way[a] = {}
        for b in sites:
            ping = EC2_PING_LATENCIES[a][b]
            one_way[a][b] = DEFAULT_LOCAL_LATENCY if a == b else ping / 2.0
    return LatencyMatrix(sites=sites, one_way=one_way)


def uniform_latency_matrix(
    sites: Sequence[str], one_way_ms: float, local_ms: float = DEFAULT_LOCAL_LATENCY
) -> LatencyMatrix:
    """A synthetic matrix where every pair of distinct sites is ``one_way_ms``
    apart; useful for controlled tests."""
    one_way = {
        a: {b: (local_ms if a == b else one_way_ms) for b in sites} for a in sites
    }
    return LatencyMatrix(sites=sites, one_way=one_way)
