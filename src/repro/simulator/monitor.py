"""dstat-style monitoring of a running simulation.

The paper's framework records CPU and network utilization (dstat) alongside
every run and uses it to explain where each protocol saturates.  The
simulator equivalent tracks, per process and per sampling interval:

* messages handled (in) and sent (out), split by message kind;
* bytes received and sent;
* committed/executed command counts;
* pending (committed-but-unexecuted) backlog, which is the executor queue
  the dependency-based protocols accumulate under contention.

A :class:`SimulationMonitor` is attached to a :class:`repro.simulator.sim.Simulation`
via :meth:`attach`; it samples on a fixed simulated-time interval and the
collected series can be summarised or rendered as rows for reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.base import ProcessBase


@dataclass
class ProcessSample:
    """One sample of one process's counters."""

    time: float
    process_id: int
    messages_handled: int
    messages_delta: int
    executed: int
    executed_delta: int
    pending_execution: int
    outbox_backlog: int


@dataclass
class MonitorSeries:
    """All samples of one process, in time order."""

    process_id: int
    samples: List[ProcessSample] = field(default_factory=list)

    def peak_pending(self) -> int:
        """Largest committed-but-unexecuted backlog observed."""
        return max((sample.pending_execution for sample in self.samples), default=0)

    def total_messages(self) -> int:
        return self.samples[-1].messages_handled if self.samples else 0

    def total_executed(self) -> int:
        return self.samples[-1].executed if self.samples else 0

    def message_rate_per_second(self) -> float:
        """Average messages handled per second of simulated time."""
        if len(self.samples) < 2:
            return 0.0
        span_ms = self.samples[-1].time - self.samples[0].time
        if span_ms <= 0:
            return 0.0
        handled = self.samples[-1].messages_handled - self.samples[0].messages_handled
        return handled / (span_ms / 1000.0)


class SimulationMonitor:
    """Samples process counters on a fixed simulated-time interval."""

    def __init__(self, interval_ms: float = 100.0) -> None:
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        self.interval_ms = interval_ms
        self.series: Dict[int, MonitorSeries] = {}
        self._processes: Dict[int, ProcessBase] = {}
        self._last_messages: Dict[int, int] = {}
        self._last_executed: Dict[int, int] = {}
        self._simulation = None

    # -- wiring ------------------------------------------------------------------

    def attach(self, simulation) -> "SimulationMonitor":
        """Attach to a simulation and schedule the periodic sampling."""
        self._simulation = simulation
        for process_id, process in simulation.processes.items():
            self._processes[process_id] = process
            self.series[process_id] = MonitorSeries(process_id)
            self._last_messages[process_id] = 0
            self._last_executed[process_id] = 0
        simulation.schedule(self.interval_ms, self._sample)
        return self

    def attach_trace_recorder(self, recorder=None):
        """Subscribe an execution-trace recorder to the monitored processes.

        Utilisation sampling and consistency checking observe the same
        deployment, so the monitor doubles as the attachment point when a
        simulation is driven without :func:`repro.cluster.runner.run_experiment`.
        Returns the (possibly newly created) recorder.
        """
        from repro.analysis.trace import ExecutionTraceRecorder

        if recorder is None:
            recorder = ExecutionTraceRecorder()
        recorder.attach(list(self._processes.values()))
        return recorder

    def observe(self, processes: List[ProcessBase], now: float) -> None:
        """One-shot sampling outside a simulation (e.g. inline networks)."""
        for process in processes:
            if process.process_id not in self.series:
                self._processes[process.process_id] = process
                self.series[process.process_id] = MonitorSeries(process.process_id)
                self._last_messages[process.process_id] = 0
                self._last_executed[process.process_id] = 0
        self._record(now)

    # -- sampling ----------------------------------------------------------------

    def _sample(self, now: float) -> None:
        self._record(now)
        if self._simulation is not None:
            self._simulation.schedule(self.interval_ms, self._sample)

    def _pending_of(self, process: ProcessBase) -> int:
        committed = getattr(process, "_committed", None)
        if committed is not None:
            return len(committed)
        executor = getattr(process, "executor", None)
        if executor is not None:
            return len(executor.pending())
        return 0

    def _record(self, now: float) -> None:
        for process_id, process in self._processes.items():
            handled = process.messages_handled()
            executed = len(process.executed)
            series = self.series[process_id]
            series.samples.append(
                ProcessSample(
                    time=now,
                    process_id=process_id,
                    messages_handled=handled,
                    messages_delta=handled - self._last_messages[process_id],
                    executed=executed,
                    executed_delta=executed - self._last_executed[process_id],
                    pending_execution=self._pending_of(process),
                    outbox_backlog=len(process.outbox),
                )
            )
            self._last_messages[process_id] = handled
            self._last_executed[process_id] = executed

    # -- reporting ---------------------------------------------------------------

    def summary_rows(self) -> List[Dict[str, object]]:
        """One row per process: totals, rates and peak backlog."""
        rows: List[Dict[str, object]] = []
        for process_id in sorted(self.series):
            series = self.series[process_id]
            rows.append(
                {
                    "process": process_id,
                    "messages": series.total_messages(),
                    "messages_per_s": round(series.message_rate_per_second(), 1),
                    "executed": series.total_executed(),
                    "peak_pending": series.peak_pending(),
                }
            )
        return rows

    def busiest_process(self) -> Optional[int]:
        """The process that handled the most messages (the bottleneck
        candidate — the leader for FPaxos, any replica for the leaderless
        protocols)."""
        if not self.series:
            return None
        return max(self.series, key=lambda pid: self.series[pid].total_messages())

    def imbalance(self) -> float:
        """Max/mean ratio of messages handled across processes.

        Close to 1.0 for leaderless protocols; substantially above 1.0 for
        leader-based ones.
        """
        totals = [series.total_messages() for series in self.series.values()]
        if not totals or sum(totals) == 0:
            return 1.0
        mean = sum(totals) / len(totals)
        return max(totals) / mean
