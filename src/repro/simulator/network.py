"""Simulated wide-area network.

The network delivers messages between processes (and clients) with one-way
latencies taken from a :class:`repro.simulator.latency.LatencyMatrix`, plus
optional jitter.  Crashed processes silently drop incoming messages (crash-
stop model).  Message loss can be injected for liveness testing; the paper's
protocols assume fair-lossy links, which periodic re-broadcast copes with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.base import MBatch
from repro.simulator.latency import LatencyMatrix
from repro.simulator.rng import SeededRng
from repro.wire import drift_rows, encoded_size
from repro.wire.primitives import uvarint_size


@dataclass
class NetworkOptions:
    """Tunables for the simulated network."""

    jitter_ms: float = 0.0
    drop_probability: float = 0.0
    local_latency_ms: float = 0.25
    #: When true, every transmitted message is additionally run through the
    #: ``repro.wire`` codec and its *measured* frame size recorded in the
    #: ``encoded_*`` stats columns, next to the ``size_bytes()`` estimates.
    #: Off by default: the default accounting (and every ``results/*.txt``
    #: golden file) charges the historical estimates only, and measuring
    #: costs one encode per message.
    measure_encoded: bool = False

    def __post_init__(self) -> None:
        if self.jitter_ms < 0:
            raise ValueError("jitter_ms must be non-negative")
        if not 0.0 <= self.drop_probability < 1.0:
            raise ValueError("drop_probability must be in [0, 1)")
        if self.local_latency_ms < 0:
            raise ValueError("local_latency_ms must be non-negative")


@dataclass
class NetworkStats:
    """Counters maintained by the network."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    #: Number of multi-message deliveries produced by :meth:`transmit_batch`.
    #: All per-message counters above count the *inner* messages, so batching
    #: never changes them.
    batches_sent: int = 0
    #: Number of delivery events (an ``MBatch`` of any size counts once).
    #: ``messages_delivered / deliveries`` is the measured MBatch coalescing
    #: factor consumed by the analytic throughput model
    #: (``CostModel.mbatch_coalescing``).
    deliveries: int = 0
    per_kind: Dict[str, int] = field(default_factory=dict)
    #: Measured codec columns, populated only with
    #: ``NetworkOptions.measure_encoded``: total encoded frame bytes of the
    #: transmitted messages, the extra bytes the ``MBatch`` envelopes add on
    #: top of their inner frames, and the per-kind measured/estimated byte
    #: split feeding :meth:`Network.drift_report`.
    encoded_bytes: int = 0
    encoded_batch_overhead: int = 0
    per_kind_encoded: Dict[str, int] = field(default_factory=dict)
    per_kind_estimated: Dict[str, int] = field(default_factory=dict)


class Network:
    """Latency-aware message transport between simulation endpoints.

    Endpoints are integers: non-negative identifiers are processes, negative
    identifiers are clients (the cluster layer's convention).  Every endpoint
    is placed at a site; the latency between two endpoints is the site-to-site
    one-way latency (or ``local_latency_ms`` when co-located).
    """

    def __init__(
        self,
        latency: LatencyMatrix,
        options: Optional[NetworkOptions] = None,
        rng: Optional[SeededRng] = None,
    ) -> None:
        self.latency_matrix = latency
        self.options = options or NetworkOptions()
        self.rng = rng or SeededRng()
        self._site_of: Dict[int, str] = {}
        self._crashed: Set[int] = set()
        self.stats = NetworkStats()
        #: Cache of ``(sender, destination) -> base one-way delay`` pairs;
        #: invalidated when an endpoint is (re)placed.  Jitter, when enabled,
        #: is drawn per transmission on top of the cached base.
        self._delay_cache: Dict[Tuple[int, int], float] = {}
        #: Cache of message type -> (kind name, size_bytes method or None,
        #: fixed wire size or None).  Kinds that declare ``FIXED_SIZE_BYTES``
        #: (payload-free acks and the like) let batched accounting multiply
        #: instead of calling ``size_bytes`` per message.
        self._type_info: Dict[
            type, Tuple[str, Optional[Callable[[object], int]], Optional[int]]
        ] = {}

    # -- topology -------------------------------------------------------------

    def place(self, endpoint: int, site: str) -> None:
        """Place an endpoint (process or client) at a site."""
        if site not in self.latency_matrix.sites:
            raise KeyError(f"unknown site {site!r}")
        self._site_of[endpoint] = site
        if self._delay_cache:
            self._delay_cache.clear()

    def site_of(self, endpoint: int) -> str:
        """Site hosting ``endpoint``."""
        try:
            return self._site_of[endpoint]
        except KeyError as exc:
            raise KeyError(f"endpoint {endpoint} was never placed") from exc

    def crash(self, endpoint: int) -> None:
        """Mark an endpoint as crashed; messages to it are dropped."""
        self._crashed.add(endpoint)

    def is_crashed(self, endpoint: int) -> bool:
        return endpoint in self._crashed

    # -- delivery -------------------------------------------------------------

    def _base_delay(self, sender: int, destination: int) -> float:
        """Jitter-free one-way delay, cached per endpoint pair."""
        cached = self._delay_cache.get((sender, destination))
        if cached is not None:
            return cached
        site_a = self.site_of(sender)
        site_b = self.site_of(destination)
        if site_a == site_b:
            base = self.options.local_latency_ms
        else:
            base = self.latency_matrix.latency(site_a, site_b)
        self._delay_cache[(sender, destination)] = base
        return base

    def delay(self, sender: int, destination: int) -> float:
        """One-way delay between two endpoints, including jitter."""
        base = self._base_delay(sender, destination)
        if self.options.jitter_ms:
            base += self.rng.uniform_between(0.0, self.options.jitter_ms)
        return base

    def should_drop(self) -> bool:
        """Whether an injected message drop occurs."""
        if not self.options.drop_probability:
            return False
        return self.rng.uniform() < self.options.drop_probability

    def _resolve_type_info(
        self, message_type: type
    ) -> Tuple[str, Optional[Callable[[object], int]], Optional[int]]:
        """Build and cache the stats metadata for one message type."""
        # Cache the *unbound* class attribute: a bound method would pin
        # the first instance seen for this type.
        size = getattr(message_type, "size_bytes", None)
        fixed = getattr(message_type, "FIXED_SIZE_BYTES", None)
        info = (
            message_type.__name__,
            size if callable(size) else None,
            int(fixed) if isinstance(fixed, int) else None,
        )
        self._type_info[message_type] = info
        return info

    def _count_message(self, message: object) -> None:
        """Account for one logical message in the stats counters."""
        stats = self.stats
        stats.messages_sent += 1
        message_type = message.__class__
        type_info = self._type_info.get(message_type)
        if type_info is None:
            type_info = self._resolve_type_info(message_type)
        kind, size_method, fixed_size = type_info
        per_kind = stats.per_kind
        per_kind[kind] = per_kind.get(kind, 0) + 1
        if fixed_size is not None:
            stats.bytes_sent += fixed_size
        elif size_method is not None:
            stats.bytes_sent += int(size_method(message))
        if self.options.measure_encoded:
            self._record_encoded(kind, size_method, fixed_size, message)

    def _record_encoded(self, kind, size_method, fixed_size, message) -> int:
        """Measured-size accounting for one message (measure mode only);
        returns the measured frame size."""
        stats = self.stats
        measured = encoded_size(message)
        stats.encoded_bytes += measured
        per_kind_encoded = stats.per_kind_encoded
        per_kind_encoded[kind] = per_kind_encoded.get(kind, 0) + measured
        if fixed_size is not None:
            estimate = fixed_size
        elif size_method is not None:
            estimate = int(size_method(message))
        else:
            estimate = 0
        per_kind_estimated = stats.per_kind_estimated
        per_kind_estimated[kind] = per_kind_estimated.get(kind, 0) + estimate
        return measured

    def _record_batch_overhead(self, inner_frame_bytes: int, count: int) -> None:
        """Extra measured bytes an ``MBatch`` envelope adds over its inner
        frames: the kind byte, the inner-message count and the outer length
        prefix (measure mode only)."""
        payload_len = 1 + uvarint_size(count) + inner_frame_bytes
        overhead = uvarint_size(payload_len) + 1 + uvarint_size(count)
        self.stats.encoded_batch_overhead += overhead

    def drift_report(self) -> List[Dict[str, object]]:
        """Per-kind estimate-vs-measured drift rows for this network's
        traffic (requires ``measure_encoded``; empty otherwise)."""
        stats = self.stats
        return drift_rows(
            stats.per_kind_estimated, stats.per_kind_encoded, stats.per_kind
        )

    def transmit(
        self,
        sender: int,
        destination: int,
        message: object,
        now: float,
        deliver: Callable[[float, int, int, object], None],
    ) -> Optional[float]:
        """Route one message.

        ``deliver(at, sender, destination, message)`` is invoked (typically
        it schedules a simulator event) unless the message is dropped or the
        destination has crashed.  Returns the delivery time, or ``None`` when
        the message will never arrive.
        """
        # Inline of :meth:`_count_message`: single-message transmits are the
        # bulk of the simulator's network traffic and the extra call frame
        # is measurable.
        stats = self.stats
        stats.messages_sent += 1
        message_type = message.__class__
        type_info = self._type_info.get(message_type)
        if type_info is None:
            type_info = self._resolve_type_info(message_type)
        kind, size_method, fixed_size = type_info
        per_kind = stats.per_kind
        per_kind[kind] = per_kind.get(kind, 0) + 1
        if fixed_size is not None:
            stats.bytes_sent += fixed_size
        elif size_method is not None:
            stats.bytes_sent += int(size_method(message))
        if self.options.measure_encoded:
            self._record_encoded(kind, size_method, fixed_size, message)
        if destination in self._crashed or self.should_drop():
            stats.messages_dropped += 1
            return None
        if self.options.jitter_ms:
            at = now + self.delay(sender, destination)
        else:
            # Jitter-free deliveries (the default) read the cached base
            # delay directly, skipping two call frames per message.
            base = self._delay_cache.get((sender, destination))
            if base is None:
                base = self._base_delay(sender, destination)
            at = now + base
        deliver(at, sender, destination, message)
        stats.messages_delivered += 1
        stats.deliveries += 1
        return at

    def transmit_batch(
        self,
        sender: int,
        destination: int,
        messages: Sequence[object],
        now: float,
        deliver: Callable[[float, int, int, object], None],
    ) -> Optional[float]:
        """Route several messages to one destination as one delivery.

        Stats, crash handling and loss injection are applied per inner
        message, in order, exactly as ``len(messages)`` calls to
        :meth:`transmit` would.  On a deterministic network (no jitter) all
        surviving messages share one delivery time, so they are delivered as
        a single :class:`repro.core.base.MBatch` — one simulator event
        instead of one per message.  With jitter enabled each message keeps
        its own per-transmission delay draw and its own delivery, preserving
        the unbatched behaviour bit for bit.  Returns the batch delivery
        time (``None`` when nothing survived or jitter forced the
        per-message path).
        """
        if not messages:
            return None
        stats = self.stats
        crashed = destination in self._crashed
        jittery = bool(self.options.jitter_ms)
        if not crashed and not jittery and not self.options.drop_probability:
            # Fast path: every message survives and shares one delivery, so
            # the per-message stats work collapses to one ``per_kind`` update
            # per *run* of same-type inner messages (outboxes are dominated
            # by broadcast runs of a single kind).  Counter values are
            # identical to ``len(messages)`` calls of :meth:`transmit`.
            count = len(messages)
            per_kind = stats.per_kind
            type_info = self._type_info
            bytes_sent = 0
            index = 0
            while index < count:
                message = messages[index]
                message_type = message.__class__
                info = type_info.get(message_type)
                if info is None:
                    info = self._resolve_type_info(message_type)
                kind, size_method, fixed_size = info
                run_end = index + 1
                while run_end < count and messages[run_end].__class__ is message_type:
                    run_end += 1
                run_length = run_end - index
                per_kind[kind] = per_kind.get(kind, 0) + run_length
                if fixed_size is not None:
                    bytes_sent += fixed_size * run_length
                elif size_method is not None:
                    for position in range(index, run_end):
                        bytes_sent += int(size_method(messages[position]))
                index = run_end
            stats.messages_sent += count
            stats.bytes_sent += bytes_sent
            if self.options.measure_encoded:
                inner_frame_bytes = 0
                for message in messages:
                    info = type_info.get(message.__class__)
                    if info is None:
                        info = self._resolve_type_info(message.__class__)
                    inner_frame_bytes += self._record_encoded(
                        info[0], info[1], info[2], message
                    )
                if count > 1:
                    self._record_batch_overhead(inner_frame_bytes, count)
            at = now + self._base_delay(sender, destination)
            if count == 1:
                deliver(at, sender, destination, messages[0])
            else:
                deliver(at, sender, destination, MBatch(tuple(messages)))
                stats.batches_sent += 1
            stats.messages_delivered += count
            stats.deliveries += 1
            return at
        survivors: List[object] = []
        for message in messages:
            self._count_message(message)
            if crashed or self.should_drop():
                stats.messages_dropped += 1
                continue
            if jittery:
                deliver(now + self.delay(sender, destination), sender, destination, message)
                stats.messages_delivered += 1
                stats.deliveries += 1
            else:
                survivors.append(message)
        if not survivors:
            return None
        at = now + self._base_delay(sender, destination)
        if len(survivors) == 1:
            deliver(at, sender, destination, survivors[0])
        else:
            deliver(at, sender, destination, MBatch(tuple(survivors)))
            stats.batches_sent += 1
            if self.options.measure_encoded:
                self._record_batch_overhead(
                    sum(encoded_size(message) for message in survivors),
                    len(survivors),
                )
        stats.messages_delivered += len(survivors)
        stats.deliveries += 1
        return at
