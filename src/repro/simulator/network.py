"""Simulated wide-area network.

The network delivers messages between processes (and clients) with one-way
latencies taken from a :class:`repro.simulator.latency.LatencyMatrix`, plus
optional jitter.  Crashed processes silently drop incoming messages (crash-
stop model).  Message loss can be injected for liveness testing; the paper's
protocols assume fair-lossy links, which periodic re-broadcast copes with.

Fault injection (``repro.faults``) installs richer per-link state: a
bidirectional site partition, per-link degradation windows (added delay,
jitter, probabilistic drop) and message-class-targeted loss.  All fault
randomness draws from a dedicated :attr:`Network.fault_rng` stream split off
the main RNG's seed, so a healthy run is bit-identical with and without the
fault machinery, and activating a fault never shifts workload randomness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.base import MBatch
from repro.simulator.latency import LatencyMatrix
from repro.simulator.rng import SeededRng
from repro.wire import drift_rows, encoded_size
from repro.wire.primitives import uvarint_size


@dataclass
class NetworkOptions:
    """Tunables for the simulated network."""

    jitter_ms: float = 0.0
    drop_probability: float = 0.0
    local_latency_ms: float = 0.25
    #: When true, every transmitted message is additionally run through the
    #: ``repro.wire`` codec and its *measured* frame size recorded in the
    #: ``encoded_*`` stats columns, next to the ``size_bytes()`` estimates.
    #: Off by default: since the epoch-2 re-baseline the default accounting
    #: (and every ``results/*.txt`` golden file) already charges the exact
    #: codec frame sizes — ``size_bytes()`` mirrors the ``repro.wire``
    #: codecs byte-for-byte — so measuring is a zero-drift cross-check that
    #: costs one encode per message, not a correction.
    measure_encoded: bool = False

    def __post_init__(self) -> None:
        if self.jitter_ms < 0:
            raise ValueError("jitter_ms must be non-negative")
        if not 0.0 <= self.drop_probability < 1.0:
            raise ValueError("drop_probability must be in [0, 1)")
        if self.local_latency_ms < 0:
            raise ValueError("local_latency_ms must be non-negative")


@dataclass
class LinkDegradation:
    """Active degradation of one site-to-site link (a flaky-link window).

    Installed by :meth:`Network.degrade_link`; all randomness (drop draws,
    jitter draws) comes from the network's dedicated fault RNG stream, never
    from the main RNG, so degrading one link cannot shift the randomness of
    anything else in the run.
    """

    extra_delay_ms: float = 0.0
    jitter_ms: float = 0.0
    drop_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.extra_delay_ms < 0 or self.jitter_ms < 0:
            raise ValueError("degradation delay/jitter must be non-negative")
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")


@dataclass
class TargetedLoss:
    """Active message-class-targeted loss (e.g. cross-partition MStable).

    ``cross_group_only`` restricts the loss to messages whose endpoints
    carry *different* group tags (see :meth:`Network.set_group`; the cluster
    runner tags each process with its shard, so this expresses "only the
    cross-shard copies").
    """

    probability: float = 1.0
    cross_group_only: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")


@dataclass
class NetworkStats:
    """Counters maintained by the network."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    #: Number of multi-message deliveries produced by :meth:`transmit_batch`.
    #: All per-message counters above count the *inner* messages, so batching
    #: never changes them.
    batches_sent: int = 0
    #: Number of delivery events (an ``MBatch`` of any size counts once).
    #: ``messages_delivered / deliveries`` is the measured MBatch coalescing
    #: factor consumed by the analytic throughput model
    #: (``CostModel.mbatch_coalescing``).
    deliveries: int = 0
    per_kind: Dict[str, int] = field(default_factory=dict)
    #: Measured codec columns, populated only with
    #: ``NetworkOptions.measure_encoded``: total encoded frame bytes of the
    #: transmitted messages, the extra bytes the ``MBatch`` envelopes add on
    #: top of their inner frames, and the per-kind measured/declared byte
    #: split feeding :meth:`Network.drift_report` (gated at zero drift
    #: since the epoch-2 re-baseline).
    encoded_bytes: int = 0
    encoded_batch_overhead: int = 0
    per_kind_encoded: Dict[str, int] = field(default_factory=dict)
    per_kind_estimated: Dict[str, int] = field(default_factory=dict)


class Network:
    """Latency-aware message transport between simulation endpoints.

    Endpoints are integers: non-negative identifiers are processes, negative
    identifiers are clients (the cluster layer's convention).  Every endpoint
    is placed at a site; the latency between two endpoints is the site-to-site
    one-way latency (or ``local_latency_ms`` when co-located).
    """

    def __init__(
        self,
        latency: LatencyMatrix,
        options: Optional[NetworkOptions] = None,
        rng: Optional[SeededRng] = None,
        fault_rng: Optional[SeededRng] = None,
    ) -> None:
        self.latency_matrix = latency
        self.options = options or NetworkOptions()
        self.rng = rng or SeededRng()
        #: Dedicated RNG stream for fault-injection decisions (partition and
        #: flaky-link drops, degradation jitter, targeted loss).  Derived
        #: from the main stream's *seed* — no draws are consumed — so the
        #: two streams are independent: a run that never activates a fault
        #: makes zero fault-stream draws and is bit-identical to one without
        #: the fault machinery at all.
        self.fault_rng = fault_rng or self.rng.fault_stream()
        self._site_of: Dict[int, str] = {}
        self._crashed: Set[int] = set()
        #: Fault-injection state, all empty on a healthy network.  The hot
        #: path tests the single ``_faults_active`` flag; the per-message
        #: fault work only runs while at least one fault is installed.
        self._partition_of: Dict[str, int] = {}
        self._degraded: Dict[Tuple[str, str], LinkDegradation] = {}
        self._targeted: Dict[str, TargetedLoss] = {}
        self._group_of: Dict[int, int] = {}
        self._faults_active = False
        self.stats = NetworkStats()
        #: Cache of ``(sender, destination) -> base one-way delay`` pairs;
        #: invalidated when an endpoint is (re)placed.  Jitter, when enabled,
        #: is drawn per transmission on top of the cached base.
        self._delay_cache: Dict[Tuple[int, int], float] = {}
        #: Cache of message type -> (kind name, size_bytes method or None,
        #: fixed wire size or None).  Kinds that declare ``FIXED_SIZE_BYTES``
        #: (payload-free acks and the like) let batched accounting multiply
        #: instead of calling ``size_bytes`` per message.
        self._type_info: Dict[
            type, Tuple[str, Optional[Callable[[object], int]], Optional[int]]
        ] = {}

    # -- topology -------------------------------------------------------------

    def place(self, endpoint: int, site: str) -> None:
        """Place an endpoint (process or client) at a site."""
        if site not in self.latency_matrix.sites:
            raise KeyError(f"unknown site {site!r}")
        self._site_of[endpoint] = site
        if self._delay_cache:
            self._delay_cache.clear()

    def site_of(self, endpoint: int) -> str:
        """Site hosting ``endpoint``."""
        try:
            return self._site_of[endpoint]
        except KeyError as exc:
            raise KeyError(f"endpoint {endpoint} was never placed") from exc

    def crash(self, endpoint: int) -> None:
        """Mark an endpoint as crashed; messages to it are dropped."""
        self._crashed.add(endpoint)

    def is_crashed(self, endpoint: int) -> bool:
        return endpoint in self._crashed

    def restore(self, endpoint: int) -> None:
        """Un-crash an endpoint (a restarted process receives again)."""
        self._crashed.discard(endpoint)

    def set_group(self, endpoint: int, group: int) -> None:
        """Tag an endpoint with a replica-group id (the cluster runner uses
        the protocol partition/shard).  Only consulted by targeted loss
        rules with ``cross_group_only``."""
        self._group_of[endpoint] = group

    # -- fault injection (partitions, flaky links, targeted loss) -------------

    def _refresh_faults_active(self) -> None:
        self._faults_active = bool(
            self._partition_of or self._degraded or self._targeted
        )

    def set_partition(self, groups: Sequence[Iterable[str]]) -> None:
        """Install a bidirectional network partition between site groups.

        Messages between sites in *different* groups are dropped; sites not
        listed in any group reach (and are reached by) everyone.  Replaces
        any previously installed partition.
        """
        partition_of: Dict[str, int] = {}
        for group_id, group in enumerate(groups):
            for site in group:
                if site not in self.latency_matrix.sites:
                    raise KeyError(f"unknown site {site!r}")
                if site in partition_of:
                    raise ValueError(f"site {site!r} appears in two groups")
                partition_of[site] = group_id
        self._partition_of = partition_of
        self._refresh_faults_active()

    def clear_partition(self) -> None:
        """Heal the installed partition (links deliver again; messages
        dropped while it was up stay lost — fair-lossy links)."""
        self._partition_of = {}
        self._refresh_faults_active()

    @staticmethod
    def _link_key(site_a: str, site_b: str) -> Tuple[str, str]:
        return (site_a, site_b) if site_a <= site_b else (site_b, site_a)

    def degrade_link(
        self, site_a: str, site_b: str, degradation: LinkDegradation
    ) -> None:
        """Install a bidirectional degradation window on one link."""
        for site in (site_a, site_b):
            if site not in self.latency_matrix.sites:
                raise KeyError(f"unknown site {site!r}")
        if site_a == site_b:
            raise ValueError("cannot degrade a site's local link")
        self._degraded[self._link_key(site_a, site_b)] = degradation
        self._refresh_faults_active()

    def restore_link(self, site_a: str, site_b: str) -> None:
        """Remove the degradation installed on one link (end of window)."""
        self._degraded.pop(self._link_key(site_a, site_b), None)
        self._refresh_faults_active()

    def set_targeted_loss(self, kind: str, loss: TargetedLoss) -> None:
        """Drop messages of one kind (class name) with a probability."""
        self._targeted[kind] = loss
        self._refresh_faults_active()

    def clear_targeted_loss(self, kind: str) -> None:
        """Remove the targeted loss rule for one message kind."""
        self._targeted.pop(kind, None)
        self._refresh_faults_active()

    def _fault_verdict(
        self, sender: int, destination: int, kind: str
    ) -> Optional[float]:
        """Fault-injection outcome for one message on an active-fault
        network: ``None`` when a fault drops it, otherwise the extra delay
        (0.0 for unaffected links).  Only called while ``_faults_active``;
        all randomness comes from :attr:`fault_rng`.
        """
        site_a = self._site_of[sender]
        site_b = self._site_of[destination]
        partition_of = self._partition_of
        if partition_of:
            group_a = partition_of.get(site_a)
            group_b = partition_of.get(site_b)
            if group_a is not None and group_b is not None and group_a != group_b:
                return None
        targeted = self._targeted
        if targeted:
            loss = targeted.get(kind)
            if loss is not None:
                groups = self._group_of
                if not loss.cross_group_only or (
                    groups.get(sender) is not None
                    and groups.get(destination) is not None
                    and groups[sender] != groups[destination]
                ):
                    if (
                        loss.probability >= 1.0
                        or self.fault_rng.uniform() < loss.probability
                    ):
                        return None
        if self._degraded and site_a != site_b:
            degradation = self._degraded.get(self._link_key(site_a, site_b))
            if degradation is not None:
                if (
                    degradation.drop_probability
                    and self.fault_rng.uniform() < degradation.drop_probability
                ):
                    return None
                extra = degradation.extra_delay_ms
                if degradation.jitter_ms:
                    extra += self.fault_rng.uniform_between(
                        0.0, degradation.jitter_ms
                    )
                return extra
        return 0.0

    # -- delivery -------------------------------------------------------------

    def _base_delay(self, sender: int, destination: int) -> float:
        """Jitter-free one-way delay, cached per endpoint pair."""
        cached = self._delay_cache.get((sender, destination))
        if cached is not None:
            return cached
        site_a = self.site_of(sender)
        site_b = self.site_of(destination)
        if site_a == site_b:
            base = self.options.local_latency_ms
        else:
            base = self.latency_matrix.latency(site_a, site_b)
        self._delay_cache[(sender, destination)] = base
        return base

    def delay(self, sender: int, destination: int) -> float:
        """One-way delay between two endpoints, including jitter.

        Jitter is a fault/noise knob, so the draw comes from the dedicated
        fault stream (:attr:`fault_rng`), never the main RNG.
        """
        base = self._base_delay(sender, destination)
        if self.options.jitter_ms:
            base += self.fault_rng.uniform_between(0.0, self.options.jitter_ms)
        return base

    def should_drop(self) -> bool:
        """Whether an injected message drop occurs (fault-stream draw)."""
        if not self.options.drop_probability:
            return False
        return self.fault_rng.uniform() < self.options.drop_probability

    def _resolve_type_info(
        self, message_type: type
    ) -> Tuple[str, Optional[Callable[[object], int]], Optional[int]]:
        """Build and cache the stats metadata for one message type."""
        # Cache the *unbound* class attribute: a bound method would pin
        # the first instance seen for this type.  ``wire_size`` (the
        # per-instance memoised size) is preferred so broadcasts charge the
        # size arithmetic once per message rather than once per destination.
        size = getattr(message_type, "wire_size", None)
        if size is None:
            size = getattr(message_type, "size_bytes", None)
        fixed = getattr(message_type, "FIXED_SIZE_BYTES", None)
        info = (
            message_type.__name__,
            size if callable(size) else None,
            int(fixed) if isinstance(fixed, int) else None,
        )
        self._type_info[message_type] = info
        return info

    def _count_message(self, message: object) -> None:
        """Account for one logical message in the stats counters."""
        stats = self.stats
        stats.messages_sent += 1
        message_type = message.__class__
        type_info = self._type_info.get(message_type)
        if type_info is None:
            type_info = self._resolve_type_info(message_type)
        kind, size_method, fixed_size = type_info
        per_kind = stats.per_kind
        per_kind[kind] = per_kind.get(kind, 0) + 1
        if fixed_size is not None:
            stats.bytes_sent += fixed_size
        elif size_method is not None:
            stats.bytes_sent += int(size_method(message))
        if self.options.measure_encoded:
            self._record_encoded(kind, size_method, fixed_size, message)

    def _record_encoded(self, kind, size_method, fixed_size, message) -> int:
        """Measured-size accounting for one message (measure mode only);
        returns the measured frame size."""
        stats = self.stats
        measured = encoded_size(message)
        stats.encoded_bytes += measured
        per_kind_encoded = stats.per_kind_encoded
        per_kind_encoded[kind] = per_kind_encoded.get(kind, 0) + measured
        if fixed_size is not None:
            estimate = fixed_size
        elif size_method is not None:
            estimate = int(size_method(message))
        else:
            estimate = 0
        per_kind_estimated = stats.per_kind_estimated
        per_kind_estimated[kind] = per_kind_estimated.get(kind, 0) + estimate
        return measured

    def _record_batch_overhead(self, inner_frame_bytes: int, count: int) -> None:
        """Extra measured bytes an ``MBatch`` envelope adds over its inner
        frames: the kind byte, the inner-message count and the outer length
        prefix (measure mode only)."""
        payload_len = 1 + uvarint_size(count) + inner_frame_bytes
        overhead = uvarint_size(payload_len) + 1 + uvarint_size(count)
        self.stats.encoded_batch_overhead += overhead

    def drift_report(self) -> List[Dict[str, object]]:
        """Per-kind estimate-vs-measured drift rows for this network's
        traffic (requires ``measure_encoded``; empty otherwise)."""
        stats = self.stats
        return drift_rows(
            stats.per_kind_estimated, stats.per_kind_encoded, stats.per_kind
        )

    def transmit(
        self,
        sender: int,
        destination: int,
        message: object,
        now: float,
        deliver: Callable[[float, int, int, object], None],
    ) -> Optional[float]:
        """Route one message.

        ``deliver(at, sender, destination, message)`` is invoked (typically
        it schedules a simulator event) unless the message is dropped or the
        destination has crashed.  Returns the delivery time, or ``None`` when
        the message will never arrive.
        """
        # Inline of :meth:`_count_message`: single-message transmits are the
        # bulk of the simulator's network traffic and the extra call frame
        # is measurable.
        stats = self.stats
        stats.messages_sent += 1
        message_type = message.__class__
        type_info = self._type_info.get(message_type)
        if type_info is None:
            type_info = self._resolve_type_info(message_type)
        kind, size_method, fixed_size = type_info
        per_kind = stats.per_kind
        per_kind[kind] = per_kind.get(kind, 0) + 1
        if fixed_size is not None:
            stats.bytes_sent += fixed_size
        elif size_method is not None:
            stats.bytes_sent += int(size_method(message))
        if self.options.measure_encoded:
            self._record_encoded(kind, size_method, fixed_size, message)
        if destination in self._crashed or self.should_drop():
            stats.messages_dropped += 1
            return None
        if self._faults_active:
            extra = self._fault_verdict(sender, destination, kind)
            if extra is None:
                stats.messages_dropped += 1
                return None
        else:
            extra = 0.0
        if self.options.jitter_ms:
            at = now + self.delay(sender, destination) + extra
        else:
            # Jitter-free deliveries (the default) read the cached base
            # delay directly, skipping two call frames per message.
            base = self._delay_cache.get((sender, destination))
            if base is None:
                base = self._base_delay(sender, destination)
            at = now + base + extra
        deliver(at, sender, destination, message)
        stats.messages_delivered += 1
        stats.deliveries += 1
        return at

    def transmit_batch(
        self,
        sender: int,
        destination: int,
        messages: Sequence[object],
        now: float,
        deliver: Callable[[float, int, int, object], None],
    ) -> Optional[float]:
        """Route several messages to one destination as one delivery.

        Stats, crash handling and loss injection are applied per inner
        message, in order, exactly as ``len(messages)`` calls to
        :meth:`transmit` would.  On a deterministic network (no jitter) all
        surviving messages share one delivery time, so they are delivered as
        a single :class:`repro.core.base.MBatch` — one simulator event
        instead of one per message.  With jitter enabled each message keeps
        its own per-transmission delay draw and its own delivery, preserving
        the unbatched behaviour bit for bit.  Returns the batch delivery
        time (``None`` when nothing survived or jitter forced the
        per-message path).
        """
        if not messages:
            return None
        stats = self.stats
        crashed = destination in self._crashed
        jittery = bool(self.options.jitter_ms)
        faulty = self._faults_active
        if not crashed and not jittery and not faulty and not self.options.drop_probability:
            # Fast path: every message survives and shares one delivery, so
            # the per-message stats work collapses to one ``per_kind`` update
            # per *run* of same-type inner messages (outboxes are dominated
            # by broadcast runs of a single kind).  Counter values are
            # identical to ``len(messages)`` calls of :meth:`transmit`.
            count = len(messages)
            per_kind = stats.per_kind
            type_info = self._type_info
            bytes_sent = 0
            index = 0
            while index < count:
                message = messages[index]
                message_type = message.__class__
                info = type_info.get(message_type)
                if info is None:
                    info = self._resolve_type_info(message_type)
                kind, size_method, fixed_size = info
                run_end = index + 1
                while run_end < count and messages[run_end].__class__ is message_type:
                    run_end += 1
                run_length = run_end - index
                per_kind[kind] = per_kind.get(kind, 0) + run_length
                if fixed_size is not None:
                    bytes_sent += fixed_size * run_length
                elif size_method is not None:
                    for position in range(index, run_end):
                        bytes_sent += int(size_method(messages[position]))
                index = run_end
            stats.messages_sent += count
            stats.bytes_sent += bytes_sent
            if self.options.measure_encoded:
                inner_frame_bytes = 0
                for message in messages:
                    info = type_info.get(message.__class__)
                    if info is None:
                        info = self._resolve_type_info(message.__class__)
                    inner_frame_bytes += self._record_encoded(
                        info[0], info[1], info[2], message
                    )
                if count > 1:
                    self._record_batch_overhead(inner_frame_bytes, count)
            at = now + self._base_delay(sender, destination)
            if count == 1:
                deliver(at, sender, destination, messages[0])
            else:
                deliver(at, sender, destination, MBatch(tuple(messages)))
                stats.batches_sent += 1
            stats.messages_delivered += count
            stats.deliveries += 1
            return at
        survivors: List[object] = []
        for message in messages:
            self._count_message(message)
            if crashed or self.should_drop():
                stats.messages_dropped += 1
                continue
            if faulty:
                # Per-message fault verdicts (a degraded link adds its own
                # delay per message), so an active-fault window falls back
                # to the per-message delivery path like jitter does.
                message_type = message.__class__
                info = self._type_info.get(message_type)
                if info is None:
                    info = self._resolve_type_info(message_type)
                extra = self._fault_verdict(sender, destination, info[0])
                if extra is None:
                    stats.messages_dropped += 1
                    continue
                deliver(
                    now + self.delay(sender, destination) + extra,
                    sender,
                    destination,
                    message,
                )
                stats.messages_delivered += 1
                stats.deliveries += 1
            elif jittery:
                deliver(now + self.delay(sender, destination), sender, destination, message)
                stats.messages_delivered += 1
                stats.deliveries += 1
            else:
                survivors.append(message)
        if not survivors:
            return None
        at = now + self._base_delay(sender, destination)
        if len(survivors) == 1:
            deliver(at, sender, destination, survivors[0])
        else:
            deliver(at, sender, destination, MBatch(tuple(survivors)))
            stats.batches_sent += 1
            if self.options.measure_encoded:
                self._record_batch_overhead(
                    sum(encoded_size(message) for message in survivors),
                    len(survivors),
                )
        stats.messages_delivered += len(survivors)
        stats.deliveries += 1
        return at
