"""Resource (CPU / NIC) model used by the throughput experiments.

The paper's maximum-throughput results (Figures 7-9) are determined by which
hardware resource saturates first at the busiest process:

* for leader-based FPaxos, the leader's outbound NIC (large payloads) or the
  leader's CPU (small payloads) is the bottleneck;
* for dependency-based leaderless protocols (EPaxos/Atlas/Janus*), the
  single-threaded execution mechanism that builds and traverses the
  dependency graph becomes the bottleneck, and its cost grows with the size
  of the strongly connected components (i.e. with contention);
* Tempo's execution mechanism is cheap (timestamp sorting) and parallel
  across partitions, so Tempo saturates on overall CPU.

This module models a machine as a CPU budget (``cpu_micros_per_second``,
scaled by the number of usable cores) plus inbound/outbound NIC budgets, and
answers "how many commands per second fit" given per-command costs.  The
per-command costs themselves are derived from the protocols' message
patterns in :mod:`repro.experiments.throughput_model`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class MachineSpec:
    """Hardware capacities of one machine (one site).

    Defaults approximate the paper's cluster machines: 8 hardware threads
    usable by the protocol and a 10 Gbit/s NIC (§6.2); the EC2 instances are
    similar (c5.2xlarge, 8 vCPUs, up to 10 Gbit/s).
    """

    cores: float = 8.0
    cpu_micros_per_core_per_second: float = 1_000_000.0
    nic_bandwidth_bytes_per_second: float = 10e9 / 8.0
    execution_threads: float = 1.0

    def cpu_budget(self) -> float:
        """Total CPU microseconds available per second."""
        return self.cores * self.cpu_micros_per_core_per_second

    def execution_budget(self) -> float:
        """CPU microseconds per second available to the (possibly
        single-threaded) execution component."""
        return self.execution_threads * self.cpu_micros_per_core_per_second


@dataclass(frozen=True)
class CommandCost:
    """Resource usage of a single command at one process."""

    cpu_micros: float
    execution_micros: float
    net_in_bytes: float
    net_out_bytes: float

    def scaled(self, factor: float) -> "CommandCost":
        """Scale every component (used for batching)."""
        return CommandCost(
            cpu_micros=self.cpu_micros * factor,
            execution_micros=self.execution_micros * factor,
            net_in_bytes=self.net_in_bytes * factor,
            net_out_bytes=self.net_out_bytes * factor,
        )


@dataclass(frozen=True)
class SaturationPoint:
    """Outcome of the saturation analysis at one process."""

    max_commands_per_second: float
    bottleneck: str
    utilization_at_saturation: Dict[str, float]


class ResourceModel:
    """Computes the saturation throughput of a process."""

    def __init__(self, machine: MachineSpec) -> None:
        self.machine = machine

    def saturation(self, cost: CommandCost) -> SaturationPoint:
        """Maximum commands/s sustainable given the per-command cost.

        The limit of each resource is ``budget / per-command usage``; the
        overall maximum is the smallest of them and the corresponding
        resource is reported as the bottleneck.
        """
        limits: Dict[str, float] = {}
        if cost.cpu_micros > 0:
            limits["cpu"] = self.machine.cpu_budget() / cost.cpu_micros
        if cost.execution_micros > 0:
            limits["execution"] = (
                self.machine.execution_budget() / cost.execution_micros
            )
        if cost.net_in_bytes > 0:
            limits["net_in"] = (
                self.machine.nic_bandwidth_bytes_per_second / cost.net_in_bytes
            )
        if cost.net_out_bytes > 0:
            limits["net_out"] = (
                self.machine.nic_bandwidth_bytes_per_second / cost.net_out_bytes
            )
        if not limits:
            raise ValueError("command cost is entirely zero; cannot saturate")
        bottleneck = min(limits, key=lambda name: limits[name])
        max_rate = limits[bottleneck]
        utilization = {
            name: min(1.0, max_rate / limit) for name, limit in limits.items()
        }
        return SaturationPoint(
            max_commands_per_second=max_rate,
            bottleneck=bottleneck,
            utilization_at_saturation=utilization,
        )

    def utilization(self, cost: CommandCost, rate: float) -> Dict[str, float]:
        """Fractional utilization of each resource at ``rate`` commands/s."""
        return {
            "cpu": min(1.0, rate * cost.cpu_micros / self.machine.cpu_budget()),
            "execution": min(
                1.0, rate * cost.execution_micros / self.machine.execution_budget()
            ),
            "net_in": min(
                1.0,
                rate * cost.net_in_bytes / self.machine.nic_bandwidth_bytes_per_second,
            ),
            "net_out": min(
                1.0,
                rate * cost.net_out_bytes / self.machine.nic_bandwidth_bytes_per_second,
            ),
        }
