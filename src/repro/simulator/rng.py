"""Deterministic random number utilities for simulations and workloads."""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

#: Named sub-stream for fault-injection randomness (link drop/jitter draws,
#: targeted message loss).  Splitting it off the network's main stream means
#: enabling a fault plan in one experiment cell can never shift the workload
#: or baseline-jitter randomness of another: a healthy run makes zero draws
#: from the fault stream, so it is bit-identical with and without an (empty)
#: fault plan installed.
FAULT_RNG_STREAM = 0xFA17


class SeededRng:
    """A thin wrapper over :class:`random.Random` with workload helpers.

    Every stochastic component of the repository (network jitter, workload
    key choice, zipfian sampling) draws from a :class:`SeededRng` so that
    experiments are reproducible given a seed.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def uniform(self) -> float:
        """Uniform draw in [0, 1)."""
        return self._random.random()

    def uniform_between(self, low: float, high: float) -> float:
        """Uniform draw in [low, high)."""
        if high < low:
            raise ValueError("high must be >= low")
        return low + (high - low) * self._random.random()

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def choice(self, items: Sequence):
        """Uniform choice among ``items``."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self._random.randrange(len(items))]

    def shuffle(self, items: List) -> List:
        """Return a shuffled copy of ``items``."""
        copy = list(items)
        self._random.shuffle(copy)
        return copy

    def exponential(self, mean: float) -> float:
        """Exponential draw with the given mean (used for think times)."""
        if mean <= 0:
            raise ValueError("mean must be positive")
        return self._random.expovariate(1.0 / mean)

    def fork(self, stream: int) -> "SeededRng":
        """Derive an independent generator for a sub-component."""
        return SeededRng(seed=(self.seed * 1_000_003 + stream) % (2**63))

    def fault_stream(self) -> "SeededRng":
        """The named fault-injection sub-stream of this generator.

        Derived from the seed alone (no draws are consumed), so building it
        never perturbs the parent stream.
        """
        return self.fork(FAULT_RNG_STREAM)


class ZipfSampler:
    """Zipfian sampler over ``{0, .., n-1}`` with exponent ``theta``.

    Used by the YCSB+T workload (§6.4): the paper evaluates ``zipf = 0.5``
    (low contention) and ``zipf = 0.7`` (moderate contention).  The sampler
    precomputes the cumulative distribution; sampling is O(log n).
    """

    def __init__(self, num_items: int, theta: float, rng: Optional[SeededRng] = None) -> None:
        if num_items < 1:
            raise ValueError("num_items must be >= 1")
        if theta < 0:
            raise ValueError("theta must be non-negative")
        self.num_items = num_items
        self.theta = theta
        self.rng = rng or SeededRng()
        weights = [1.0 / ((rank + 1) ** theta) for rank in range(num_items)]
        total = sum(weights)
        cumulative = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cumulative.append(acc)
        cumulative[-1] = 1.0
        self._cumulative = cumulative

    def sample(self) -> int:
        """Draw one item index; smaller indices are more popular."""
        draw = self.rng.uniform()
        lo, hi = 0, self.num_items - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cumulative[mid] < draw:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def sample_distinct(self, count: int) -> List[int]:
        """Draw ``count`` distinct item indices."""
        if count > self.num_items:
            raise ValueError("cannot draw more distinct items than exist")
        chosen: List[int] = []
        seen = set()
        while len(chosen) < count:
            item = self.sample()
            if item not in seen:
                seen.add(item)
                chosen.append(item)
        return chosen
