"""The discrete-event simulation loop.

A :class:`Simulation` owns a set of protocol processes (any
:class:`repro.core.base.ProcessBase` subclass), a :class:`Network`, optional
clients, and an event queue.  It repeatedly pops the earliest event, delivers
it, drains the outboxes of the affected processes into new network events,
and schedules periodic ticks.

Time is measured in milliseconds of simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.core.base import Envelope, ProcessBase
from repro.simulator.events import EventKind, EventQueue
from repro.simulator.network import Network


@dataclass
class SimulationOptions:
    """Tunables of the simulation loop."""

    tick_interval: float = 5.0
    max_time: float = 60_000.0
    max_events: int = 5_000_000

    def __post_init__(self) -> None:
        if self.tick_interval <= 0:
            raise ValueError("tick_interval must be positive")
        if self.max_time <= 0:
            raise ValueError("max_time must be positive")
        if self.max_events <= 0:
            raise ValueError("max_events must be positive")


@dataclass
class SimulationStats:
    """Counters exposed after a run."""

    events_processed: int = 0
    messages_delivered: int = 0
    ticks: int = 0
    end_time: float = 0.0
    per_process_messages: Dict[int, int] = field(default_factory=dict)


class Simulation:
    """Discrete-event simulation of a replicated deployment."""

    def __init__(
        self,
        processes: Iterable[ProcessBase],
        network: Network,
        options: Optional[SimulationOptions] = None,
    ) -> None:
        self.processes: Dict[int, ProcessBase] = {
            process.process_id: process for process in processes
        }
        self.network = network
        self.options = options or SimulationOptions()
        self.queue = EventQueue()
        self.now = 0.0
        self.stats = SimulationStats()
        #: Handlers for envelopes addressed to endpoints that are not
        #: processes (e.g. clients).  Keyed by endpoint id.
        self.external_endpoints: Dict[int, Callable[[int, object, float], None]] = {}
        self._stop_predicate: Optional[Callable[["Simulation"], bool]] = None
        for process_id in self.processes:
            self.queue.push(self.options.tick_interval, EventKind.TICK, target=process_id)

    # -- wiring ----------------------------------------------------------------

    def register_external(
        self, endpoint: int, handler: Callable[[int, object, float], None]
    ) -> None:
        """Register a non-process endpoint (typically a client).

        ``handler(sender, message, now)`` is called on delivery.
        """
        self.external_endpoints[endpoint] = handler

    def set_stop_predicate(self, predicate: Callable[["Simulation"], bool]) -> None:
        """Stop the run early once ``predicate(simulation)`` becomes true."""
        self._stop_predicate = predicate

    def schedule(
        self, delay: float, callback: Callable[[float], None]
    ) -> None:
        """Schedule an arbitrary callback ``delay`` ms from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.queue.push(self.now + delay, EventKind.CUSTOM, payload=callback)

    def submit_at(self, time: float, process_id: int, command) -> None:
        """Schedule a command submission at ``time`` on ``process_id``."""
        self.queue.push(time, EventKind.CLIENT, target=process_id, payload=command)

    def crash_at(self, time: float, process_id: int) -> None:
        """Schedule a crash of ``process_id`` at ``time``."""
        self.queue.push(time, EventKind.CRASH, target=process_id)

    # -- outbox routing -----------------------------------------------------------

    def route_envelopes(self, envelopes: List[Envelope]) -> None:
        """Turn outgoing envelopes into future MESSAGE events."""
        for envelope in envelopes:
            self.network.transmit(
                envelope.sender,
                envelope.destination,
                envelope.message,
                self.now,
                self._schedule_delivery,
            )

    def _schedule_delivery(
        self, at: float, sender: int, destination: int, message: object
    ) -> None:
        self.queue.push(
            at, EventKind.MESSAGE, target=destination, payload=message, sender=sender
        )

    def flush_outboxes(self) -> None:
        """Drain every process outbox into the network."""
        for process in self.processes.values():
            envelopes = process.drain_outbox()
            if envelopes:
                self.route_envelopes(envelopes)

    # -- main loop ----------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> SimulationStats:
        """Run the simulation until ``until`` (or the configured maximum)."""
        horizon = min(until if until is not None else self.options.max_time,
                      self.options.max_time)
        while self.queue and self.stats.events_processed < self.options.max_events:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > horizon:
                break
            event = self.queue.pop()
            assert event is not None
            self.now = event.time
            self.stats.events_processed += 1
            if event.kind is EventKind.MESSAGE:
                self._handle_message_event(event.sender, event.target, event.payload)
            elif event.kind is EventKind.TICK:
                self._handle_tick_event(event.target)
            elif event.kind is EventKind.CLIENT:
                self._handle_client_event(event.target, event.payload)
            elif event.kind is EventKind.CRASH:
                self._handle_crash_event(event.target)
            elif event.kind is EventKind.CUSTOM:
                event.payload(self.now)
                self.flush_outboxes()
            if self._stop_predicate is not None and self._stop_predicate(self):
                break
        self.stats.end_time = self.now
        return self.stats

    # -- event handlers --------------------------------------------------------------

    def _handle_message_event(self, sender: int, destination: int, message: object) -> None:
        self.stats.messages_delivered += 1
        process = self.processes.get(destination)
        if process is not None:
            self.stats.per_process_messages[destination] = (
                self.stats.per_process_messages.get(destination, 0) + 1
            )
            process.deliver(sender, message, self.now)
            self.flush_outboxes()
            return
        handler = self.external_endpoints.get(destination)
        if handler is not None:
            handler(sender, message, self.now)
            self.flush_outboxes()

    def _handle_tick_event(self, process_id: int) -> None:
        process = self.processes.get(process_id)
        if process is None:
            return
        self.stats.ticks += 1
        if process.alive:
            process.tick(self.now)
            self.flush_outboxes()
        self.queue.push(
            self.now + self.options.tick_interval, EventKind.TICK, target=process_id
        )

    def _handle_client_event(self, process_id: int, command) -> None:
        process = self.processes.get(process_id)
        if process is None or not process.alive:
            return
        process.submit(command, self.now)
        self.flush_outboxes()

    def _handle_crash_event(self, process_id: int) -> None:
        process = self.processes.get(process_id)
        if process is None:
            return
        process.crash()
        self.network.crash(process_id)
        for other in self.processes.values():
            other.set_alive_view(process_id, False)
