"""The discrete-event simulation loop.

A :class:`Simulation` owns a set of protocol processes (any
:class:`repro.core.base.ProcessBase` subclass), a :class:`Network`, optional
clients, and an event queue.  It repeatedly pops the earliest event, delivers
it, drains the outbox of the affected process into new network events, and
schedules periodic ticks.

Time is measured in milliseconds of simulated time.

Hot-path notes: the loop pops events straight off the queue's heap in
batches of identical timestamps, dispatches on the event kind inline, and
only drains the outbox of the process an event was delivered to — handlers
can only ever append to their own process's outbox (self-addressed messages
are delivered synchronously), so scanning every outbox after every event
would be pure overhead.  Draining an outbox coalesces every message bound
for the same destination into one ``MBatch`` delivery (see
``route_envelopes`` and ``docs/batching.md``), so a broadcast-heavy step
costs one heap push per destination instead of one per message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.base import Envelope, MBatch, ProcessBase
from repro.simulator.events import EventKind, EventQueue
from repro.simulator.network import Network

_MESSAGE = EventKind.MESSAGE
_TICK = EventKind.TICK


@dataclass
class SimulationOptions:
    """Tunables of the simulation loop."""

    tick_interval: float = 5.0
    max_time: float = 60_000.0
    max_events: int = 5_000_000

    def __post_init__(self) -> None:
        if self.tick_interval <= 0:
            raise ValueError("tick_interval must be positive")
        if self.max_time <= 0:
            raise ValueError("max_time must be positive")
        if self.max_events <= 0:
            raise ValueError("max_events must be positive")


@dataclass
class SimulationStats:
    """Counters exposed after a run."""

    events_processed: int = 0
    messages_delivered: int = 0
    ticks: int = 0
    end_time: float = 0.0
    per_process_messages: Dict[int, int] = field(default_factory=dict)


class Simulation:
    """Discrete-event simulation of a replicated deployment."""

    def __init__(
        self,
        processes: Iterable[ProcessBase],
        network: Network,
        options: Optional[SimulationOptions] = None,
    ) -> None:
        self.processes: Dict[int, ProcessBase] = {
            process.process_id: process for process in processes
        }
        self.network = network
        self.options = options or SimulationOptions()
        self.queue = EventQueue()
        self.now = 0.0
        self.stats = SimulationStats()
        #: Handlers for envelopes addressed to endpoints that are not
        #: processes (e.g. clients).  Keyed by endpoint id.
        self.external_endpoints: Dict[int, Callable[[int, object, float], None]] = {}
        self._stop_predicate: Optional[Callable[["Simulation"], bool]] = None
        for process_id in self.processes:
            self.queue.push(self.options.tick_interval, EventKind.TICK, target=process_id)

    # -- wiring ----------------------------------------------------------------

    def register_external(
        self, endpoint: int, handler: Callable[[int, object, float], None]
    ) -> None:
        """Register a non-process endpoint (typically a client).

        ``handler(sender, message, now)`` is called on delivery.
        """
        self.external_endpoints[endpoint] = handler

    def set_stop_predicate(self, predicate: Callable[["Simulation"], bool]) -> None:
        """Stop the run early once ``predicate(simulation)`` becomes true."""
        self._stop_predicate = predicate

    def schedule(
        self, delay: float, callback: Callable[[float], None]
    ) -> None:
        """Schedule an arbitrary callback ``delay`` ms from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.queue.push(self.now + delay, EventKind.CUSTOM, payload=callback)

    def submit_at(self, time: float, process_id: int, command) -> None:
        """Schedule a command submission at ``time`` on ``process_id``."""
        self.queue.push(time, EventKind.CLIENT, target=process_id, payload=command)

    def crash_at(self, time: float, process_id: int) -> None:
        """Schedule a crash of ``process_id`` at ``time``."""
        self.queue.push(time, EventKind.CRASH, target=process_id)

    # -- outbox routing -----------------------------------------------------------

    def route_envelopes(self, envelopes: List[Envelope]) -> None:
        """Turn outgoing envelopes into future MESSAGE events.

        All messages addressed to the same destination within one event-
        handling step are coalesced into a single :class:`MBatch` delivery
        (one simulator event), in their original send order.  Batches are
        formed in destination-first-seen order.  Note this is not exactly
        the unbatched event stream: when one step interleaves sends to two
        *equidistant* destinations (A, B, A), the unbatched schedule would
        deliver A's second message after B's, while the batch delivers
        both of A's together first.  Per-destination order is always
        preserved; the cross-destination reordering is accepted and is
        validated empirically by the byte-identical ``results/`` check.
        """
        network = self.network
        schedule_delivery = self._schedule_delivery
        now = self.now
        if len(envelopes) == 1:
            sender, destination, message = envelopes[0]
            network.transmit(sender, destination, message, now, schedule_delivery)
            return
        groups: Dict[Tuple[int, int], List[object]] = {}
        for sender, destination, message in envelopes:
            key = (sender, destination)
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = [message]
            else:
                bucket.append(message)
        for (sender, destination), messages in groups.items():
            if len(messages) == 1:
                network.transmit(sender, destination, messages[0], now, schedule_delivery)
            else:
                network.transmit_batch(sender, destination, messages, now, schedule_delivery)

    def _schedule_delivery(
        self, at: float, sender: int, destination: int, message: object
    ) -> None:
        # Hot path: push a plain tuple (same field order as Event, which is
        # itself a tuple) straight onto the heap, skipping the NamedTuple
        # constructor and the queue.push validation.
        queue = self.queue
        heappush(
            queue._heap,
            (at, next(queue._counter), _MESSAGE, destination, message, sender),
        )

    def _drain_process(self, process: ProcessBase) -> None:
        """Route the pending outbox of one process (the only one an event
        handler can have filled)."""
        if process.outbox:
            envelopes = process.outbox
            process.outbox = []
            self.route_envelopes(envelopes)

    def flush_outboxes(self) -> None:
        """Drain every process outbox into the network."""
        for process in self.processes.values():
            self._drain_process(process)

    # -- main loop ----------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> SimulationStats:
        """Run the simulation until ``until`` (or the configured maximum)."""
        horizon = min(until if until is not None else self.options.max_time,
                      self.options.max_time)
        heap = self.queue._heap
        stats = self.stats
        processes = self.processes
        external = self.external_endpoints
        max_events = self.options.max_events
        message_kind = EventKind.MESSAGE
        tick_kind = EventKind.TICK
        client_kind = EventKind.CLIENT
        crash_kind = EventKind.CRASH
        custom_kind = EventKind.CUSTOM
        per_process = stats.per_process_messages
        events_processed = stats.events_processed
        while heap and events_processed < max_events:
            if heap[0][0] > horizon:
                break
            time, _, kind, target, payload, sender = heappop(heap)
            self.now = time
            events_processed += 1
            if kind is message_kind:
                # Count logical messages, not delivery events: an MBatch is
                # one event carrying several messages.
                count = len(payload.messages) if type(payload) is MBatch else 1
                stats.messages_delivered += count
                process = processes.get(target)
                if process is not None:
                    per_process[target] = per_process.get(target, 0) + count
                    process.deliver(sender, payload, time)
                    if process.outbox:
                        envelopes = process.outbox
                        process.outbox = []
                        self.route_envelopes(envelopes)
                else:
                    handler = external.get(target)
                    if handler is not None:
                        if type(payload) is MBatch:
                            for message in payload.messages:
                                handler(sender, message, time)
                        else:
                            handler(sender, payload, time)
                        self.flush_outboxes()
            elif kind is tick_kind:
                self._handle_tick_event(target)
            elif kind is client_kind:
                self._handle_client_event(target, payload)
            elif kind is crash_kind:
                self._handle_crash_event(target)
            elif kind is custom_kind:
                payload(time)
                self.flush_outboxes()
            if self._stop_predicate is not None:
                stats.events_processed = events_processed
                if self._stop_predicate(self):
                    break
        stats.events_processed = events_processed
        stats.end_time = self.now
        return stats

    # -- event handlers --------------------------------------------------------------

    def _handle_tick_event(self, process_id: int) -> None:
        process = self.processes.get(process_id)
        if process is None:
            return
        self.stats.ticks += 1
        if process.alive:
            process.tick(self.now)
            self._drain_process(process)
        queue = self.queue
        heappush(
            queue._heap,
            (self.now + self.options.tick_interval, next(queue._counter), _TICK,
             process_id, None, -1),
        )

    def _handle_client_event(self, process_id: int, command) -> None:
        process = self.processes.get(process_id)
        if process is None or not process.alive:
            return
        process.submit(command, self.now)
        self._drain_process(process)

    def _handle_crash_event(self, process_id: int) -> None:
        process = self.processes.get(process_id)
        if process is None:
            return
        process.crash()
        self.network.crash(process_id)
        for other in self.processes.values():
            other.set_alive_view(process_id, False)
