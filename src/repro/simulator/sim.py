"""The discrete-event simulation loop.

A :class:`Simulation` owns a set of protocol processes (any
:class:`repro.core.base.ProcessBase` subclass), a :class:`Network`, optional
clients, and an event queue.  It repeatedly pops the earliest *timestamp
lane* (every event scheduled at that instant, in insertion order — see
:class:`repro.simulator.events.EventQueue`), delivers each event, drains the
outbox of the affected process into new network events, and schedules
periodic ticks.

Time is measured in milliseconds of simulated time.

Hot-path notes:

* the loop drains whole lanes via the public ``pop_lane`` API — one heap
  operation per distinct timestamp instead of one per event;
* MESSAGE events (the overwhelming majority) are dispatched inline; every
  other kind goes through a table indexed by the ``EventKind`` value;
* ticks are *fused*: one shared TICK event per interval walks every alive
  process, instead of one event per process per interval;
* the loop is split into a predicate-free fast variant and a predicated
  variant, so the common path never tests ``_stop_predicate``;
* only the outbox of the process an event was delivered to is drained —
  handlers can only ever append to their own process's outbox
  (self-addressed messages are delivered synchronously), so scanning every
  outbox after every event would be pure overhead.  Draining an outbox
  coalesces every message bound for the same destination into one ``MBatch``
  delivery (see ``route_envelopes`` and ``docs/batching.md``), so a
  broadcast-heavy step costs one scheduler call per destination instead of
  one per message.

See ``docs/event_loop.md`` for the ordering/determinism argument.
"""

from __future__ import annotations

import gc
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.base import Envelope, MBatch, ProcessBase
from repro.simulator.events import EventKind, EventQueue
from repro.simulator.network import Network

_MESSAGE = EventKind.MESSAGE
_TICK = EventKind.TICK


@dataclass
class SimulationOptions:
    """Tunables of the simulation loop."""

    tick_interval: float = 5.0
    max_time: float = 60_000.0
    max_events: int = 5_000_000

    def __post_init__(self) -> None:
        if self.tick_interval <= 0:
            raise ValueError("tick_interval must be positive")
        if self.max_time <= 0:
            raise ValueError("max_time must be positive")
        if self.max_events <= 0:
            raise ValueError("max_events must be positive")


@dataclass
class SimulationStats:
    """Counters exposed after a run.

    ``ticks`` counts per-process tick deliveries (P per interval), matching
    the pre-fusion accounting even though the simulator now processes one
    fused TICK event per interval.
    """

    events_processed: int = 0
    messages_delivered: int = 0
    ticks: int = 0
    end_time: float = 0.0
    #: Messages delivered per process id.  Process ids are dense small
    #: integers, so the hot-path accounting is a preallocated list indexed
    #: by process id; the mapping view below is derived from it.
    _per_process: List[int] = field(default_factory=list, repr=False)

    @property
    def per_process_messages(self) -> Dict[int, int]:
        """Messages delivered per process id (processes that received any)."""
        return {
            process_id: count
            for process_id, count in enumerate(self._per_process)
            if count
        }


class Simulation:
    """Discrete-event simulation of a replicated deployment."""

    def __init__(
        self,
        processes: Iterable[ProcessBase],
        network: Network,
        options: Optional[SimulationOptions] = None,
    ) -> None:
        self.processes: Dict[int, ProcessBase] = {
            process.process_id: process for process in processes
        }
        self.network = network
        self.options = options or SimulationOptions()
        self.queue = EventQueue()
        self.now = 0.0
        self.stats = SimulationStats()
        self.stats._per_process = [0] * (
            max(self.processes) + 1 if self.processes else 0
        )
        #: Handlers for envelopes addressed to endpoints that are not
        #: processes (e.g. clients).  Keyed by endpoint id.
        self.external_endpoints: Dict[int, Callable[[int, object, float], None]] = {}
        self._stop_predicate: Optional[Callable[["Simulation"], bool]] = None
        #: Dispatch table indexed by ``EventKind`` value; MESSAGE (slot 0)
        #: is inlined in the run loops and never dispatched through it.
        self._dispatch: Tuple[Optional[Callable[[int, object], None]], ...] = (
            None,
            self._handle_tick_event,
            self._handle_client_event,
            self._handle_crash_event,
            self._handle_custom_event,
            self._handle_fault_event,
        )
        # One fused TICK event per interval walks every process; nothing to
        # tick means no tick chain (and an immediately-quiescent queue).
        if self.processes:
            self.queue.push(self.options.tick_interval, _TICK)

    # -- wiring ----------------------------------------------------------------

    def register_external(
        self, endpoint: int, handler: Callable[[int, object, float], None]
    ) -> None:
        """Register a non-process endpoint (typically a client).

        ``handler(sender, message, now)`` is called on delivery.
        """
        self.external_endpoints[endpoint] = handler

    def set_stop_predicate(self, predicate: Callable[["Simulation"], bool]) -> None:
        """Stop the run early once ``predicate(simulation)`` becomes true."""
        self._stop_predicate = predicate

    def schedule(
        self, delay: float, callback: Callable[[float], None]
    ) -> None:
        """Schedule an arbitrary callback ``delay`` ms from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.queue.push(self.now + delay, EventKind.CUSTOM, payload=callback)

    def submit_at(self, time: float, process_id: int, command) -> None:
        """Schedule a command submission at ``time`` on ``process_id``."""
        self.queue.push(time, EventKind.CLIENT, target=process_id, payload=command)

    def crash_at(self, time: float, process_id: int) -> None:
        """Schedule a crash of ``process_id`` at ``time``."""
        self.queue.push(time, EventKind.CRASH, target=process_id)

    def fault_at(self, time: float, action: Callable[["Simulation"], None]) -> None:
        """Schedule a scripted fault action (``action(simulation)``) at
        ``time`` — partition/heal edges, link degradation windows, targeted
        loss windows, restarts.  The fault-plan injector's entry point."""
        self.queue.push(time, EventKind.FAULT, payload=action)

    def restart(self, process_id: int) -> None:
        """Restart a crashed process with its durable state.

        The paper assumes crash-stop; restart models the crash-*recovery*
        variant where a replica returns with the protocol state it held at
        the crash (as if persisted).  The network delivers to it again and
        every failure detector flips it back to alive.
        """
        process = self.processes.get(process_id)
        if process is None:
            return
        process.recover_process()
        self.network.restore(process_id)
        for other in self.processes.values():
            other.set_alive_view(process_id, True)

    # -- outbox routing -----------------------------------------------------------

    def route_envelopes(self, envelopes: List[Envelope]) -> None:
        """Turn outgoing envelopes into future MESSAGE events.

        All messages addressed to the same destination within one event-
        handling step are coalesced into a single :class:`MBatch` delivery
        (one simulator event), in their original send order.  Batches are
        formed in destination-first-seen order.  Note this is not exactly
        the unbatched event stream: when one step interleaves sends to two
        *equidistant* destinations (A, B, A), the unbatched schedule would
        deliver A's second message after B's, while the batch delivers
        both of A's together first.  Per-destination order is always
        preserved; the cross-destination reordering is accepted and is
        validated empirically by the byte-identical ``results/`` check.

        Deliveries are scheduled through the queue's first-class
        ``schedule_message`` API, whose signature is exactly the network's
        ``deliver`` callback.
        """
        network = self.network
        schedule_message = self.queue.schedule_message
        now = self.now
        if len(envelopes) == 1:
            sender, destination, message = envelopes[0]
            network.transmit(sender, destination, message, now, schedule_message)
            return
        groups: Dict[Tuple[int, int], List[object]] = {}
        for sender, destination, message in envelopes:
            key = (sender, destination)
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = [message]
            else:
                bucket.append(message)
        for (sender, destination), messages in groups.items():
            if len(messages) == 1:
                network.transmit(sender, destination, messages[0], now, schedule_message)
            else:
                network.transmit_batch(sender, destination, messages, now, schedule_message)

    def _drain_process(self, process: ProcessBase) -> None:
        """Route the pending outbox of one process (the only one an event
        handler can have filled)."""
        if process.outbox:
            envelopes = process.outbox
            process.outbox = []
            self.route_envelopes(envelopes)

    def flush_outboxes(self) -> None:
        """Drain every process outbox into the network."""
        for process in self.processes.values():
            self._drain_process(process)

    # -- main loop ----------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> SimulationStats:
        """Run the simulation until ``until`` (or the configured maximum)."""
        horizon = min(until if until is not None else self.options.max_time,
                      self.options.max_time)
        # The loop allocates millions of short-lived objects (events,
        # envelopes, messages); pausing the cyclic collector for the run
        # avoids thousands of pointless generational passes.  Refcounting
        # still frees everything promptly — the collector only exists for
        # reference cycles, which the protocols do not create per event.
        collector_was_enabled = gc.isenabled()
        if collector_was_enabled:
            gc.disable()
        try:
            if self._stop_predicate is None:
                self._run_fast(horizon)
            else:
                self._run_predicated(horizon)
        finally:
            if collector_was_enabled:
                gc.enable()
        stats = self.stats
        stats.end_time = self.now
        return stats

    def _run_fast(self, horizon: float) -> None:
        """The common run loop: no stop predicate to test per event."""
        queue = self.queue
        pop_lane = queue.pop_lane
        stats = self.stats
        processes = self.processes
        external = self.external_endpoints
        route_envelopes = self.route_envelopes
        dispatch = self._dispatch
        max_events = self.options.max_events
        message_kind = _MESSAGE
        per_process = stats._per_process
        events_processed = stats.events_processed
        while events_processed < max_events:
            popped = pop_lane(horizon)
            if popped is None:
                break
            time, lane = popped
            self.now = time
            overflow = None
            if len(lane) > max_events - events_processed:
                # Rare: the event budget ends mid-lane.  Trim the tail so the
                # cutoff is exact, and put it back afterwards.
                overflow = deque()
                budget = max_events - events_processed
                while len(lane) > budget:
                    overflow.appendleft(lane.pop())
            events_processed += len(lane)
            for event in lane:
                _, kind, target, payload, sender = event
                if kind is message_kind:
                    # Count logical messages, not delivery events: an MBatch
                    # is one event carrying several messages.
                    count = len(payload.messages) if type(payload) is MBatch else 1
                    stats.messages_delivered += count
                    process = processes.get(target)
                    if process is not None:
                        try:
                            per_process[target] += count
                        except IndexError:
                            # A process registered after construction (the
                            # dict-era API allowed it): grow the table.
                            per_process.extend(
                                [0] * (target + 1 - len(per_process))
                            )
                            per_process[target] += count
                        process.deliver(sender, payload, time)
                        if process.outbox:
                            envelopes = process.outbox
                            process.outbox = []
                            route_envelopes(envelopes)
                    else:
                        handler = external.get(target)
                        if handler is not None:
                            if type(payload) is MBatch:
                                for message in payload.messages:
                                    handler(sender, message, time)
                            else:
                                handler(sender, payload, time)
                            self.flush_outboxes()
                else:
                    dispatch[kind](target, payload)
            if overflow:
                queue.requeue_lane(time, overflow)
        stats.events_processed = events_processed

    def _run_predicated(self, horizon: float) -> None:
        """Run-loop variant testing the stop predicate after every event."""
        queue = self.queue
        stats = self.stats
        processes = self.processes
        external = self.external_endpoints
        dispatch = self._dispatch
        max_events = self.options.max_events
        message_kind = _MESSAGE
        predicate = self._stop_predicate
        per_process = stats._per_process
        events_processed = stats.events_processed
        while events_processed < max_events:
            popped = queue.pop_lane(horizon)
            if popped is None:
                break
            time, lane = popped
            self.now = time
            stop = False
            while lane:
                _, kind, target, payload, sender = lane.popleft()
                events_processed += 1
                if kind is message_kind:
                    count = len(payload.messages) if type(payload) is MBatch else 1
                    stats.messages_delivered += count
                    process = processes.get(target)
                    if process is not None:
                        try:
                            per_process[target] += count
                        except IndexError:
                            # A process registered after construction (the
                            # dict-era API allowed it): grow the table.
                            per_process.extend(
                                [0] * (target + 1 - len(per_process))
                            )
                            per_process[target] += count
                        process.deliver(sender, payload, time)
                        self._drain_process(process)
                    else:
                        handler = external.get(target)
                        if handler is not None:
                            if type(payload) is MBatch:
                                for message in payload.messages:
                                    handler(sender, message, time)
                            else:
                                handler(sender, payload, time)
                            self.flush_outboxes()
                else:
                    dispatch[kind](target, payload)
                stats.events_processed = events_processed
                if predicate(self) or events_processed >= max_events:
                    stop = True
                    break
            if lane:
                queue.requeue_lane(time, lane)
            if stop:
                break
        stats.events_processed = events_processed

    # -- event handlers --------------------------------------------------------------

    def _handle_tick_event(self, target: int, payload: object) -> None:
        """One fused tick: walk every process, then schedule the next tick.

        The walk order is the process-insertion order, which is exactly the
        order the pre-fusion per-process TICK events popped in; ``stats.ticks``
        still counts one tick per process per interval.

        A TICK pushed with an explicit ``target`` (the seed's per-process
        form, still valid through the public ``EventQueue.push``) keeps the
        seed semantics: tick that one process and perpetuate a chain for it
        alone, never spawning a second fused chain.
        """
        processes = self.processes
        if target >= 0:
            process = processes.get(target)
            if process is None:
                return
            self.stats.ticks += 1
            if process.alive:
                process.tick(self.now)
                self._drain_process(process)
            self.queue.push(self.now + self.options.tick_interval, _TICK, target=target)
            return
        self.queue.push(self.now + self.options.tick_interval, _TICK)
        self.stats.ticks += len(processes)
        now = self.now
        for process in processes.values():
            if process.alive:
                process.tick(now)
                if process.outbox:
                    envelopes = process.outbox
                    process.outbox = []
                    self.route_envelopes(envelopes)

    def _handle_client_event(self, process_id: int, command: object) -> None:
        process = self.processes.get(process_id)
        if process is None or not process.alive:
            return
        process.submit(command, self.now)
        self._drain_process(process)

    def _handle_crash_event(self, process_id: int, payload: object) -> None:
        process = self.processes.get(process_id)
        if process is None:
            return
        process.crash()
        self.network.crash(process_id)
        for other in self.processes.values():
            other.set_alive_view(process_id, False)

    def _handle_custom_event(self, target: int, callback) -> None:
        callback(self.now)
        self.flush_outboxes()

    def _handle_fault_event(self, target: int, action) -> None:
        """Apply one scripted fault action at its simulated time."""
        action(self)
        self.flush_outboxes()
