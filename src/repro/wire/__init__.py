"""Real wire format: per-kind binary codecs and framed byte transport.

Every protocol message (Tempo's in :mod:`repro.core.messages`, the
baselines' in :mod:`repro.protocols.dep_messages`) and the
:class:`repro.core.base.MBatch` transport envelope has a registered binary
codec with a ``decode(encode(m)) == m`` round-trip guarantee.  The
simulator uses :func:`encoded_size` for measured byte accounting
(``NetworkOptions.measure_encoded``), the asyncio runtime ships
:func:`encode_frame` frames through its channels and stream transports,
and the drift report compares the measured sizes against the historical
``size_bytes()`` model.  See ``docs/wire_format.md``.
"""

from repro.wire.codecs import (
    KIND_TO_TYPE,
    TYPE_TO_KIND,
    decode,
    decode_frame,
    encode,
    encode_frame,
    encoded_size,
    has_codec,
    registered_types,
)
from repro.wire.drift import DRIFT_THRESHOLD, drift_rows, drifted_kinds
from repro.wire.primitives import Reader, WireError, read_uvarint_prefix
from repro.wire.samples import sample_messages

__all__ = [
    "DRIFT_THRESHOLD",
    "KIND_TO_TYPE",
    "Reader",
    "TYPE_TO_KIND",
    "WireError",
    "decode",
    "decode_frame",
    "drift_rows",
    "drifted_kinds",
    "encode",
    "encode_frame",
    "encoded_size",
    "has_codec",
    "read_uvarint_prefix",
    "registered_types",
    "sample_messages",
]
