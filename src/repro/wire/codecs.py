"""Per-kind binary codecs for every protocol message.

Each message kind gets a real encode/decode pair — ``decode(encode(m)) ==
m`` for every registered kind — so byte accounting can be *measured* instead
of modeled and the runtime can ship frames over real transports.

Wire layout (see ``docs/wire_format.md`` for the per-kind field tables)::

    frame   := uvarint(len(payload)) payload
    payload := kind_byte body
    body    := fields in dataclass order, dot first

Integers are LEB128 varints: unsigned for structurally non-negative fields
(dot components, counts, lengths, process/partition identifiers, promise
timestamps) and zigzag-signed for protocol values that recovery or clients
could drive negative (timestamps, ballots, sequences, slots, client ids).
``Dot``s decode through :func:`repro.core.identifiers.intern_dot`, so the
wire path shares the interned per-source tables with the rest of the
system.  Collections are sorted on encode, which makes the encoding of a
message *canonical*: equal messages produce identical bytes.

The registry is keyed by message class — the same types the protocols'
``_dispatch`` tables use — plus the :class:`repro.core.base.MBatch`
transport envelope, which nests inner frames and may nest further batches.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Mapping, Optional, Tuple

from repro.core.base import MBatch
from repro.core.commands import Command, KeyOp, OpKind
from repro.core.identifiers import Dot, intern_dot
from repro.core.messages import (
    ClientReply,
    ClientSubmit,
    MBump,
    MCommit,
    MCommitRequest,
    MConsensus,
    MConsensusAck,
    MDeliveryAck,
    MExecutedClock,
    MPayload,
    MPromiseResync,
    MPromises,
    MPropose,
    MProposeAck,
    MRec,
    MRecAck,
    MRecNAck,
    MStable,
    MStableRequest,
    MSubmit,
)
from repro.core.phases import Phase
from repro.core.promises import Promise, PromiseRangeWire
from repro.protocols.dep_messages import (
    MAccept,
    MAccepted,
    MCaesarCommit,
    MCaesarPropose,
    MCaesarProposeAck,
    MCaesarRetry,
    MCaesarRetryAck,
    MDecided,
    MDepAccept,
    MDepAcceptAck,
    MDepCommit,
    MForward,
    MJanusDeps,
    MPreAccept,
    MPreAcceptAck,
)
from repro.wire.primitives import (
    Reader,
    WireError,
    read_uvarint_prefix,
    uvarint_size,
    write_optional_string,
    write_string,
    write_svarint,
    write_uvarint,
)

# -- field codecs ---------------------------------------------------------------

#: Stable byte value per :class:`Phase` member (wire order, never reordered).
_PHASE_TO_BYTE: Dict[Phase, int] = {
    Phase.START: 0,
    Phase.PAYLOAD: 1,
    Phase.PROPOSE: 2,
    Phase.RECOVER_R: 3,
    Phase.RECOVER_P: 4,
    Phase.COMMIT: 5,
    Phase.EXECUTE: 6,
}
_BYTE_TO_PHASE: Dict[int, Phase] = {byte: phase for phase, byte in _PHASE_TO_BYTE.items()}


def _write_dot(buf: bytearray, dot: Dot) -> None:
    write_uvarint(buf, dot.source)
    write_uvarint(buf, dot.sequence)


def _read_dot(reader: Reader) -> Dot:
    source = reader.read_uvarint()
    sequence = reader.read_uvarint()
    if sequence < 1:
        raise WireError(f"dot sequence must be >= 1, got {sequence}")
    return intern_dot(source, sequence)


def _write_dot_set(buf: bytearray, dots: FrozenSet[Dot]) -> None:
    write_uvarint(buf, len(dots))
    for dot in sorted(dots):
        _write_dot(buf, dot)


def _read_dot_set(reader: Reader) -> FrozenSet[Dot]:
    count = reader.read_uvarint()
    return frozenset(_read_dot(reader) for _ in range(count))


def _write_command(buf: bytearray, command: Command) -> None:
    _write_dot(buf, command.dot)
    write_uvarint(buf, len(command.ops))
    for op in command.ops:
        write_string(buf, op.key)
        buf.append(1 if op.kind is OpKind.WRITE else 0)
        write_optional_string(buf, op.value)
    # The modeled application payload really rides the wire: size-many
    # opaque bytes (zeros here; the simulator never inspects payloads).
    write_uvarint(buf, command.payload_size)
    buf += bytes(command.payload_size)
    if command.client_id is None:
        buf.append(0)
    else:
        buf.append(1)
        write_svarint(buf, command.client_id)


def _read_command(reader: Reader) -> Command:
    dot = _read_dot(reader)
    num_ops = reader.read_uvarint()
    if num_ops == 0:
        raise WireError("command with zero operations")
    ops = []
    for _ in range(num_ops):
        key = reader.read_string()
        kind_byte = reader.read_byte()
        if kind_byte > 1:
            raise WireError(f"invalid op-kind byte {kind_byte}")
        value = reader.read_optional_string()
        ops.append(
            KeyOp(key=key, kind=OpKind.WRITE if kind_byte else OpKind.READ, value=value)
        )
    payload_size = reader.read_uvarint()
    reader.skip(payload_size)
    client_flag = reader.read_byte()
    if client_flag > 1:
        raise WireError(f"invalid client-id flag {client_flag}")
    client_id = reader.read_svarint() if client_flag else None
    return Command(
        dot=dot, ops=tuple(ops), payload_size=payload_size, client_id=client_id
    )


def _write_quorums(buf: bytearray, quorums: Mapping[int, Tuple[int, ...]]) -> None:
    write_uvarint(buf, len(quorums))
    for partition in sorted(quorums):
        write_uvarint(buf, partition)
        members = quorums[partition]
        write_uvarint(buf, len(members))
        for member in members:
            write_uvarint(buf, member)


def _read_quorums(reader: Reader) -> Dict[int, Tuple[int, ...]]:
    count = reader.read_uvarint()
    quorums: Dict[int, Tuple[int, ...]] = {}
    for _ in range(count):
        partition = reader.read_uvarint()
        members = reader.read_uvarint()
        quorums[partition] = tuple(reader.read_uvarint() for _ in range(members))
    return quorums


def _write_promise_set(buf: bytearray, promises: FrozenSet[Promise]) -> None:
    write_uvarint(buf, len(promises))
    for promise in sorted(promises):
        write_uvarint(buf, promise.process)
        write_uvarint(buf, promise.timestamp)


def _read_promise_set(reader: Reader) -> FrozenSet[Promise]:
    count = reader.read_uvarint()
    promises = []
    for _ in range(count):
        process = reader.read_uvarint()
        timestamp = reader.read_uvarint()
        if timestamp < 1:
            raise WireError(f"promise timestamp must be >= 1, got {timestamp}")
        promises.append(Promise(process, timestamp))
    return frozenset(promises)


def _write_range_wire(buf: bytearray, wire: PromiseRangeWire) -> None:
    write_uvarint(buf, len(wire))
    for process in sorted(wire):
        spans = wire[process]
        write_uvarint(buf, process)
        write_uvarint(buf, len(spans))
        for lo, hi in spans:
            if hi < lo or lo < 1:
                raise WireError(f"invalid promise range ({lo}, {hi})")
            write_uvarint(buf, lo)
            write_uvarint(buf, hi - lo)


def _read_range_wire(reader: Reader) -> Dict[int, Tuple[Tuple[int, int], ...]]:
    count = reader.read_uvarint()
    wire: Dict[int, Tuple[Tuple[int, int], ...]] = {}
    for _ in range(count):
        process = reader.read_uvarint()
        num_spans = reader.read_uvarint()
        spans = []
        for _ in range(num_spans):
            lo = reader.read_uvarint()
            if lo < 1:
                raise WireError(f"promise range starts at {lo}, must be >= 1")
            width = reader.read_uvarint()
            spans.append((lo, lo + width))
        wire[process] = tuple(spans)
    return wire


def _write_attached_map(
    buf: bytearray, attached: Mapping[Dot, FrozenSet[Promise]]
) -> None:
    write_uvarint(buf, len(attached))
    for dot in sorted(attached):
        _write_dot(buf, dot)
        _write_promise_set(buf, attached[dot])


def _read_attached_map(reader: Reader) -> Dict[Dot, FrozenSet[Promise]]:
    count = reader.read_uvarint()
    attached: Dict[Dot, FrozenSet[Promise]] = {}
    for _ in range(count):
        dot = _read_dot(reader)
        attached[dot] = _read_promise_set(reader)
    return attached


def _write_result(buf: bytearray, result: Optional[Dict[str, Optional[str]]]) -> None:
    if result is None:
        buf.append(0)
        return
    buf.append(1)
    write_uvarint(buf, len(result))
    for key in sorted(result):
        write_string(buf, key)
        write_optional_string(buf, result[key])


def _read_result(reader: Reader) -> Optional[Dict[str, Optional[str]]]:
    flag = reader.read_byte()
    if flag == 0:
        return None
    if flag != 1:
        raise WireError(f"invalid result flag {flag}")
    count = reader.read_uvarint()
    result: Dict[str, Optional[str]] = {}
    for _ in range(count):
        key = reader.read_string()
        result[key] = reader.read_optional_string()
    return result


def _write_phase(buf: bytearray, phase: Phase) -> None:
    buf.append(_PHASE_TO_BYTE[phase])


def _read_phase(reader: Reader) -> Phase:
    byte = reader.read_byte()
    phase = _BYTE_TO_PHASE.get(byte)
    if phase is None:
        raise WireError(f"unknown phase byte {byte}")
    return phase


def _write_ts_pair(buf: bytearray, timestamp: Tuple[int, int]) -> None:
    write_svarint(buf, timestamp[0])
    write_svarint(buf, timestamp[1])


def _read_ts_pair(reader: Reader) -> Tuple[int, int]:
    return (reader.read_svarint(), reader.read_svarint())


# -- per-kind body codecs ---------------------------------------------------------
#
# Every body starts with the message's dot, then the remaining dataclass
# fields in declaration order.


def _enc_msubmit(buf, m: MSubmit) -> None:
    _write_dot(buf, m.dot)
    _write_command(buf, m.command)
    _write_quorums(buf, m.quorums)


def _dec_msubmit(r: Reader) -> MSubmit:
    return MSubmit(_read_dot(r), _read_command(r), _read_quorums(r))


def _enc_mpropose(buf, m: MPropose) -> None:
    _write_dot(buf, m.dot)
    _write_command(buf, m.command)
    _write_quorums(buf, m.quorums)
    write_svarint(buf, m.timestamp)


def _dec_mpropose(r: Reader) -> MPropose:
    return MPropose(_read_dot(r), _read_command(r), _read_quorums(r), r.read_svarint())


def _enc_mproposeack(buf, m: MProposeAck) -> None:
    _write_dot(buf, m.dot)
    write_svarint(buf, m.timestamp)
    _write_promise_set(buf, m.attached)
    _write_range_wire(buf, m.detached)


def _dec_mproposeack(r: Reader) -> MProposeAck:
    return MProposeAck(
        _read_dot(r), r.read_svarint(), _read_promise_set(r), _read_range_wire(r)
    )


def _enc_mpayload(buf, m: MPayload) -> None:
    _write_dot(buf, m.dot)
    _write_command(buf, m.command)
    _write_quorums(buf, m.quorums)


def _dec_mpayload(r: Reader) -> MPayload:
    return MPayload(_read_dot(r), _read_command(r), _read_quorums(r))


def _enc_mcommit(buf, m: MCommit) -> None:
    _write_dot(buf, m.dot)
    write_svarint(buf, m.timestamp)
    write_uvarint(buf, m.partition)
    _write_promise_set(buf, m.attached)
    _write_range_wire(buf, m.detached)


def _dec_mcommit(r: Reader) -> MCommit:
    return MCommit(
        _read_dot(r),
        r.read_svarint(),
        r.read_uvarint(),
        _read_promise_set(r),
        _read_range_wire(r),
    )


def _enc_mconsensus(buf, m: MConsensus) -> None:
    _write_dot(buf, m.dot)
    write_svarint(buf, m.timestamp)
    write_svarint(buf, m.ballot)


def _dec_mconsensus(r: Reader) -> MConsensus:
    return MConsensus(_read_dot(r), r.read_svarint(), r.read_svarint())


def _enc_mconsensusack(buf, m: MConsensusAck) -> None:
    _write_dot(buf, m.dot)
    write_svarint(buf, m.ballot)


def _dec_mconsensusack(r: Reader) -> MConsensusAck:
    return MConsensusAck(_read_dot(r), r.read_svarint())


def _enc_mbump(buf, m: MBump) -> None:
    _write_dot(buf, m.dot)
    write_svarint(buf, m.timestamp)


def _dec_mbump(r: Reader) -> MBump:
    return MBump(_read_dot(r), r.read_svarint())


def _enc_mpromises(buf, m: MPromises) -> None:
    _write_dot(buf, m.dot)
    _write_range_wire(buf, m.detached)
    _write_attached_map(buf, m.attached)
    _write_dot_set(buf, m.committed)


def _dec_mpromises(r: Reader) -> MPromises:
    return MPromises(
        _read_dot(r), _read_range_wire(r), _read_attached_map(r), _read_dot_set(r)
    )


def _enc_mstable(buf, m: MStable) -> None:
    _write_dot(buf, m.dot)
    write_uvarint(buf, m.partition)


def _dec_mstable(r: Reader) -> MStable:
    return MStable(_read_dot(r), r.read_uvarint())


def _enc_mrec(buf, m: MRec) -> None:
    _write_dot(buf, m.dot)
    write_svarint(buf, m.ballot)


def _dec_mrec(r: Reader) -> MRec:
    return MRec(_read_dot(r), r.read_svarint())


def _enc_mrecack(buf, m: MRecAck) -> None:
    _write_dot(buf, m.dot)
    write_svarint(buf, m.timestamp)
    _write_phase(buf, m.phase)
    write_svarint(buf, m.accepted_ballot)
    write_svarint(buf, m.ballot)


def _dec_mrecack(r: Reader) -> MRecAck:
    return MRecAck(
        _read_dot(r), r.read_svarint(), _read_phase(r), r.read_svarint(), r.read_svarint()
    )


def _enc_mrecnack(buf, m: MRecNAck) -> None:
    _write_dot(buf, m.dot)
    write_svarint(buf, m.ballot)


def _dec_mrecnack(r: Reader) -> MRecNAck:
    return MRecNAck(_read_dot(r), r.read_svarint())


def _enc_mcommitrequest(buf, m: MCommitRequest) -> None:
    _write_dot(buf, m.dot)


def _dec_mcommitrequest(r: Reader) -> MCommitRequest:
    return MCommitRequest(_read_dot(r))


def _enc_mpromiseresync(buf, m: MPromiseResync) -> None:
    _write_dot(buf, m.dot)
    write_uvarint(buf, m.frontier)


def _dec_mpromiseresync(r: Reader) -> MPromiseResync:
    return MPromiseResync(_read_dot(r), frontier=r.read_uvarint())


def _enc_mexecutedclock(buf, m: MExecutedClock) -> None:
    _write_dot(buf, m.dot)
    write_uvarint(buf, len(m.clock))
    for source in sorted(m.clock):
        write_uvarint(buf, source)
        write_uvarint(buf, m.clock[source])


def _dec_mexecutedclock(r: Reader) -> MExecutedClock:
    dot = _read_dot(r)
    count = r.read_uvarint()
    clock = {}
    for _ in range(count):
        source = r.read_uvarint()
        clock[source] = r.read_uvarint()
    return MExecutedClock(dot, clock=clock)


def _enc_mdeliveryack(buf, m: MDeliveryAck) -> None:
    _write_dot(buf, m.dot)
    write_uvarint(buf, m.kind_id)
    write_uvarint(buf, m.epoch)
    write_uvarint(buf, m.frontier)


def _dec_mdeliveryack(r: Reader) -> MDeliveryAck:
    return MDeliveryAck(
        _read_dot(r),
        kind_id=r.read_uvarint(),
        epoch=r.read_uvarint(),
        frontier=r.read_uvarint(),
    )


def _enc_mstablerequest(buf, m: MStableRequest) -> None:
    _write_dot(buf, m.dot)
    write_uvarint(buf, m.partition)


def _dec_mstablerequest(r: Reader) -> MStableRequest:
    return MStableRequest(_read_dot(r), r.read_uvarint())


def _enc_clientsubmit(buf, m: ClientSubmit) -> None:
    _write_dot(buf, m.dot)
    _write_command(buf, m.command)


def _dec_clientsubmit(r: Reader) -> ClientSubmit:
    return ClientSubmit(_read_dot(r), _read_command(r))


def _enc_clientreply(buf, m: ClientReply) -> None:
    _write_dot(buf, m.dot)
    _write_result(buf, m.result)


def _dec_clientreply(r: Reader) -> ClientReply:
    return ClientReply(_read_dot(r), _read_result(r))


def _enc_mpreaccept(buf, m: MPreAccept) -> None:
    _write_dot(buf, m.dot)
    _write_command(buf, m.command)
    _write_dot_set(buf, m.dependencies)
    write_svarint(buf, m.sequence)


def _dec_mpreaccept(r: Reader) -> MPreAccept:
    return MPreAccept(_read_dot(r), _read_command(r), _read_dot_set(r), r.read_svarint())


def _enc_mpreacceptack(buf, m: MPreAcceptAck) -> None:
    _write_dot(buf, m.dot)
    _write_dot_set(buf, m.dependencies)
    write_svarint(buf, m.sequence)


def _dec_mpreacceptack(r: Reader) -> MPreAcceptAck:
    return MPreAcceptAck(_read_dot(r), _read_dot_set(r), r.read_svarint())


def _enc_mdepaccept(buf, m: MDepAccept) -> None:
    _write_dot(buf, m.dot)
    _write_command(buf, m.command)
    _write_dot_set(buf, m.dependencies)
    write_svarint(buf, m.sequence)
    write_svarint(buf, m.ballot)


def _dec_mdepaccept(r: Reader) -> MDepAccept:
    return MDepAccept(
        _read_dot(r), _read_command(r), _read_dot_set(r), r.read_svarint(), r.read_svarint()
    )


def _enc_mdepacceptack(buf, m: MDepAcceptAck) -> None:
    _write_dot(buf, m.dot)
    write_svarint(buf, m.ballot)


def _dec_mdepacceptack(r: Reader) -> MDepAcceptAck:
    return MDepAcceptAck(_read_dot(r), r.read_svarint())


def _enc_mdepcommit(buf, m: MDepCommit) -> None:
    _write_dot(buf, m.dot)
    _write_command(buf, m.command)
    _write_dot_set(buf, m.dependencies)
    write_svarint(buf, m.sequence)
    write_uvarint(buf, m.shard)


def _dec_mdepcommit(r: Reader) -> MDepCommit:
    return MDepCommit(
        _read_dot(r), _read_command(r), _read_dot_set(r), r.read_svarint(), r.read_uvarint()
    )


def _enc_mcaesarpropose(buf, m: MCaesarPropose) -> None:
    _write_dot(buf, m.dot)
    _write_command(buf, m.command)
    _write_ts_pair(buf, m.timestamp)


def _dec_mcaesarpropose(r: Reader) -> MCaesarPropose:
    return MCaesarPropose(_read_dot(r), _read_command(r), _read_ts_pair(r))


def _enc_mcaesarproposeack(buf, m: MCaesarProposeAck) -> None:
    _write_dot(buf, m.dot)
    _write_ts_pair(buf, m.timestamp)
    _write_dot_set(buf, m.dependencies)
    buf.append(1 if m.accepted else 0)


def _dec_mcaesarproposeack(r: Reader) -> MCaesarProposeAck:
    return MCaesarProposeAck(
        _read_dot(r), _read_ts_pair(r), _read_dot_set(r), r.read_bool()
    )


def _enc_mcaesarretry(buf, m: MCaesarRetry) -> None:
    _write_dot(buf, m.dot)
    _write_command(buf, m.command)
    _write_ts_pair(buf, m.timestamp)
    _write_dot_set(buf, m.dependencies)


def _dec_mcaesarretry(r: Reader) -> MCaesarRetry:
    return MCaesarRetry(_read_dot(r), _read_command(r), _read_ts_pair(r), _read_dot_set(r))


def _enc_mcaesarretryack(buf, m: MCaesarRetryAck) -> None:
    _write_dot(buf, m.dot)
    _write_ts_pair(buf, m.timestamp)
    _write_dot_set(buf, m.dependencies)


def _dec_mcaesarretryack(r: Reader) -> MCaesarRetryAck:
    return MCaesarRetryAck(_read_dot(r), _read_ts_pair(r), _read_dot_set(r))


def _enc_mcaesarcommit(buf, m: MCaesarCommit) -> None:
    _write_dot(buf, m.dot)
    _write_command(buf, m.command)
    _write_ts_pair(buf, m.timestamp)
    _write_dot_set(buf, m.dependencies)


def _dec_mcaesarcommit(r: Reader) -> MCaesarCommit:
    return MCaesarCommit(_read_dot(r), _read_command(r), _read_ts_pair(r), _read_dot_set(r))


def _enc_mforward(buf, m: MForward) -> None:
    _write_dot(buf, m.dot)
    _write_command(buf, m.command)


def _dec_mforward(r: Reader) -> MForward:
    return MForward(_read_dot(r), _read_command(r))


def _enc_maccept(buf, m: MAccept) -> None:
    _write_dot(buf, m.dot)
    _write_command(buf, m.command)
    write_svarint(buf, m.slot)
    write_svarint(buf, m.ballot)


def _dec_maccept(r: Reader) -> MAccept:
    return MAccept(_read_dot(r), _read_command(r), r.read_svarint(), r.read_svarint())


def _enc_maccepted(buf, m: MAccepted) -> None:
    _write_dot(buf, m.dot)
    write_svarint(buf, m.slot)
    write_svarint(buf, m.ballot)


def _dec_maccepted(r: Reader) -> MAccepted:
    return MAccepted(_read_dot(r), r.read_svarint(), r.read_svarint())


def _enc_mdecided(buf, m: MDecided) -> None:
    _write_dot(buf, m.dot)
    _write_command(buf, m.command)
    write_svarint(buf, m.slot)


def _dec_mdecided(r: Reader) -> MDecided:
    return MDecided(_read_dot(r), _read_command(r), r.read_svarint())


def _enc_mjanusdeps(buf, m: MJanusDeps) -> None:
    _write_dot(buf, m.dot)
    write_uvarint(buf, m.shard)
    _write_dot_set(buf, m.dependencies)


def _dec_mjanusdeps(r: Reader) -> MJanusDeps:
    return MJanusDeps(_read_dot(r), r.read_uvarint(), _read_dot_set(r))


def _enc_mbatch(buf, m: MBatch) -> None:
    write_uvarint(buf, len(m.messages))
    for inner in m.messages:
        _encode_frame_into(buf, inner)


def _dec_mbatch(r: Reader) -> MBatch:
    count = r.read_uvarint()
    return MBatch(tuple(_decode_frame_from(r) for _ in range(count)))


# -- registry ---------------------------------------------------------------------

#: Stable kind-byte assignments; append-only, never reorder (the byte is the
#: on-wire dispatch key).
_REGISTRY_SPEC: Tuple[Tuple[int, type, Callable, Callable], ...] = (
    (0, MBatch, _enc_mbatch, _dec_mbatch),
    (1, MSubmit, _enc_msubmit, _dec_msubmit),
    (2, MPropose, _enc_mpropose, _dec_mpropose),
    (3, MProposeAck, _enc_mproposeack, _dec_mproposeack),
    (4, MPayload, _enc_mpayload, _dec_mpayload),
    (5, MCommit, _enc_mcommit, _dec_mcommit),
    (6, MConsensus, _enc_mconsensus, _dec_mconsensus),
    (7, MConsensusAck, _enc_mconsensusack, _dec_mconsensusack),
    (8, MBump, _enc_mbump, _dec_mbump),
    (9, MPromises, _enc_mpromises, _dec_mpromises),
    (10, MStable, _enc_mstable, _dec_mstable),
    (11, MRec, _enc_mrec, _dec_mrec),
    (12, MRecAck, _enc_mrecack, _dec_mrecack),
    (13, MRecNAck, _enc_mrecnack, _dec_mrecnack),
    (14, MCommitRequest, _enc_mcommitrequest, _dec_mcommitrequest),
    (15, ClientSubmit, _enc_clientsubmit, _dec_clientsubmit),
    (16, ClientReply, _enc_clientreply, _dec_clientreply),
    (17, MPreAccept, _enc_mpreaccept, _dec_mpreaccept),
    (18, MPreAcceptAck, _enc_mpreacceptack, _dec_mpreacceptack),
    (19, MDepAccept, _enc_mdepaccept, _dec_mdepaccept),
    (20, MDepAcceptAck, _enc_mdepacceptack, _dec_mdepacceptack),
    (21, MDepCommit, _enc_mdepcommit, _dec_mdepcommit),
    (22, MCaesarPropose, _enc_mcaesarpropose, _dec_mcaesarpropose),
    (23, MCaesarProposeAck, _enc_mcaesarproposeack, _dec_mcaesarproposeack),
    (24, MCaesarRetry, _enc_mcaesarretry, _dec_mcaesarretry),
    (25, MCaesarRetryAck, _enc_mcaesarretryack, _dec_mcaesarretryack),
    (26, MCaesarCommit, _enc_mcaesarcommit, _dec_mcaesarcommit),
    (27, MForward, _enc_mforward, _dec_mforward),
    (28, MAccept, _enc_maccept, _dec_maccept),
    (29, MAccepted, _enc_maccepted, _dec_maccepted),
    (30, MDecided, _enc_mdecided, _dec_mdecided),
    (31, MJanusDeps, _enc_mjanusdeps, _dec_mjanusdeps),
    (32, MPromiseResync, _enc_mpromiseresync, _dec_mpromiseresync),
    (33, MExecutedClock, _enc_mexecutedclock, _dec_mexecutedclock),
    (34, MDeliveryAck, _enc_mdeliveryack, _dec_mdeliveryack),
    (35, MStableRequest, _enc_mstablerequest, _dec_mstablerequest),
)

#: Message class -> (kind byte, body encoder); the class keys mirror the
#: protocols' type-keyed ``_dispatch`` tables.
_ENCODERS: Dict[type, Tuple[int, Callable]] = {}
#: Kind byte -> body decoder.
_DECODERS: Dict[int, Callable[[Reader], object]] = {}
#: Kind byte -> message class (introspection/tests).
KIND_TO_TYPE: Dict[int, type] = {}
#: Message class -> kind byte.
TYPE_TO_KIND: Dict[type, int] = {}

for _kind_id, _cls, _enc, _dec in _REGISTRY_SPEC:
    if not 0 <= _kind_id <= 0xFF:
        raise RuntimeError(f"kind byte {_kind_id} out of range")
    if _kind_id in _DECODERS or _cls in _ENCODERS:
        raise RuntimeError(f"duplicate codec registration: {_kind_id} / {_cls.__name__}")
    _ENCODERS[_cls] = (_kind_id, _enc)
    _DECODERS[_kind_id] = _dec
    KIND_TO_TYPE[_kind_id] = _cls
    TYPE_TO_KIND[_cls] = _kind_id


def registered_types() -> Tuple[type, ...]:
    """Every message class with a codec, in kind-byte order."""
    return tuple(KIND_TO_TYPE[kind] for kind in sorted(KIND_TO_TYPE))


def has_codec(message_type: type) -> bool:
    """Whether ``message_type`` has a registered codec."""
    return message_type in _ENCODERS


# -- public encode/decode -----------------------------------------------------------


def encode(message: object) -> bytes:
    """Encode one message as ``kind_byte + body`` (no length prefix)."""
    entry = _ENCODERS.get(message.__class__)
    if entry is None:
        raise WireError(f"no codec registered for {message.__class__.__name__}")
    kind_id, encoder = entry
    buf = bytearray((kind_id,))
    encoder(buf, message)
    return bytes(buf)


def decode(data: bytes) -> object:
    """Decode one ``kind_byte + body`` payload; rejects trailing garbage."""
    reader = Reader(data)
    message = _decode_payload(reader)
    reader.expect_end("payload")
    return message


def _decode_payload(reader: Reader) -> object:
    kind_id = reader.read_byte()
    decoder = _DECODERS.get(kind_id)
    if decoder is None:
        raise WireError(f"unknown message kind byte {kind_id}")
    return decoder(reader)


def _encode_frame_into(buf: bytearray, message: object) -> None:
    entry = _ENCODERS.get(message.__class__)
    if entry is None:
        raise WireError(f"no codec registered for {message.__class__.__name__}")
    kind_id, encoder = entry
    body = bytearray((kind_id,))
    encoder(body, message)
    write_uvarint(buf, len(body))
    buf += body


def _decode_frame_from(reader: Reader) -> object:
    length = reader.read_uvarint()
    payload = reader.sub_reader(length)
    message = _decode_payload(payload)
    payload.expect_end("frame")
    return message


def encode_frame(message: object) -> bytes:
    """Encode one message as a length-prefixed frame (the stream unit)."""
    buf = bytearray()
    _encode_frame_into(buf, message)
    return bytes(buf)


def decode_frame(data: bytes, offset: int = 0) -> Tuple[object, int]:
    """Decode one frame at ``offset``; return ``(message, next_offset)``."""
    reader = Reader(data, offset)
    message = _decode_frame_from(reader)
    return message, reader.position


def encoded_size(message: object) -> int:
    """Measured wire size of ``message``: the full frame, prefix included."""
    payload = encode(message)
    return uvarint_size(len(payload)) + len(payload)


__all__ = [
    "KIND_TO_TYPE",
    "TYPE_TO_KIND",
    "decode",
    "decode_frame",
    "encode",
    "encode_frame",
    "encoded_size",
    "has_codec",
    "read_uvarint_prefix",
    "registered_types",
]
