"""Declared-vs-measured drift report.

Epoch 1 shipped ``Message.size_bytes()`` as a byte *model* (24-byte header
plus field estimates) while the wire codecs produced the *measured* frame
size; the two disagreed for most kinds and this report tracked the gap.
Since the epoch-2 re-baseline, ``size_bytes()`` computes the exact encoded
frame size (it mirrors the ``repro.wire`` codecs byte-for-byte), the golden
``results/*.txt`` files are frozen against the measured sizes, and the
report's job inverted: ``results/wire_drift.txt`` must show zero drift for
every kind, and any row beyond :data:`DRIFT_THRESHOLD` — or any nonzero
drift, per the tests — means the declared size and the codec have fallen
out of sync (e.g. a codec change without the matching ``size_bytes()``
update).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

#: Relative drift above which an estimate counts as wrong (satellite rule:
#: "measured and size_bytes() disagree by >25%").
DRIFT_THRESHOLD = 0.25


def drift_rows(
    estimated: Mapping[str, int],
    measured: Mapping[str, int],
    counts: Optional[Mapping[str, int]] = None,
) -> List[Dict[str, object]]:
    """Per-kind drift table from total estimated/measured byte counters.

    ``estimated`` and ``measured`` map kind name to total bytes (over the
    same set of messages); ``counts`` optionally maps kind name to the
    number of messages, turning the totals into per-message columns.
    Rows are sorted by descending relative drift.
    """
    rows: List[Dict[str, object]] = []
    for kind in sorted(set(estimated) | set(measured)):
        estimate = int(estimated.get(kind, 0))
        measure = int(measured.get(kind, 0))
        count = int(counts.get(kind, 1)) if counts else 1
        if count <= 0:
            count = 1
        drift = abs(measure - estimate) / estimate if estimate else float(measure > 0)
        rows.append(
            {
                "kind": kind,
                "estimate_bytes": round(estimate / count, 1) if counts else estimate,
                "measured_bytes": round(measure / count, 1) if counts else measure,
                "drift_pct": round(100.0 * drift, 1),
                "drifted": drift > DRIFT_THRESHOLD,
                # Kept for golden-format stability: since epoch 2 the
                # declared size IS the measured size, so this column must
                # equal ``measured_bytes`` on every row.
                "corrected_estimate": round(measure / count, 1) if counts else measure,
            }
        )
    rows.sort(key=lambda row: (-float(row["drift_pct"]), str(row["kind"])))
    return rows


def drifted_kinds(rows: List[Dict[str, object]]) -> List[str]:
    """Kind names whose estimate drifts beyond the threshold."""
    return [str(row["kind"]) for row in rows if row["drifted"]]
