"""Estimate-vs-measured drift report.

``Message.size_bytes()`` is the historical byte *model* (24-byte header plus
field estimates) that the throughput/resource figures were calibrated
against; the wire codecs produce the *measured* frame size.  The two
disagree for most kinds — varint packing beats the flat header model by a
wide margin — but the golden ``results/*.txt`` files were frozen against
the model, so the corrections land here as a report instead of silently
rewriting the accounting: each row carries the measured size as the
``corrected`` estimate, and kinds drifting beyond :data:`DRIFT_THRESHOLD`
are flagged (and listed in ``docs/wire_format.md``).  The epoch-2
re-baseline (ROADMAP) is where corrected estimates become the default.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

#: Relative drift above which an estimate counts as wrong (satellite rule:
#: "measured and size_bytes() disagree by >25%").
DRIFT_THRESHOLD = 0.25


def drift_rows(
    estimated: Mapping[str, int],
    measured: Mapping[str, int],
    counts: Optional[Mapping[str, int]] = None,
) -> List[Dict[str, object]]:
    """Per-kind drift table from total estimated/measured byte counters.

    ``estimated`` and ``measured`` map kind name to total bytes (over the
    same set of messages); ``counts`` optionally maps kind name to the
    number of messages, turning the totals into per-message columns.
    Rows are sorted by descending relative drift.
    """
    rows: List[Dict[str, object]] = []
    for kind in sorted(set(estimated) | set(measured)):
        estimate = int(estimated.get(kind, 0))
        measure = int(measured.get(kind, 0))
        count = int(counts.get(kind, 1)) if counts else 1
        if count <= 0:
            count = 1
        drift = abs(measure - estimate) / estimate if estimate else float(measure > 0)
        rows.append(
            {
                "kind": kind,
                "estimate_bytes": round(estimate / count, 1) if counts else estimate,
                "measured_bytes": round(measure / count, 1) if counts else measure,
                "drift_pct": round(100.0 * drift, 1),
                "drifted": drift > DRIFT_THRESHOLD,
                # The fix satellite: the corrected estimate IS the measured
                # size; it replaces size_bytes() at the epoch-2 re-baseline.
                "corrected_estimate": round(measure / count, 1) if counts else measure,
            }
        )
    rows.sort(key=lambda row: (-float(row["drift_pct"]), str(row["kind"])))
    return rows


def drifted_kinds(rows: List[Dict[str, object]]) -> List[str]:
    """Kind names whose estimate drifts beyond the threshold."""
    return [str(row["kind"]) for row in rows if row["drifted"]]
