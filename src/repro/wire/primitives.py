"""Low-level wire primitives: varints, strings and a bounds-checked reader.

All multi-byte integers use LEB128 *unsigned varints* (the fantoch/protobuf
encoding: seven payload bits per byte, high bit = continuation).  Fields
that may legitimately be negative (ballots carried through recovery,
client identifiers) use the *zigzag* signed variant, which maps small
magnitudes of either sign onto small unsigned varints.

Decoding never trusts its input: every read is bounds-checked and raises
:class:`WireError` on truncation, oversized varints or malformed UTF-8, so
a corrupt frame can never crash the caller with an ``IndexError`` or poison
protocol state with a half-decoded message.
"""

from __future__ import annotations

from typing import Optional, Tuple

#: Hard cap on a single varint's width (10 bytes encode up to 70 bits,
#: enough for any 64-bit value); anything longer is corruption.
_MAX_VARINT_BYTES = 10


class WireError(ValueError):
    """Raised on any malformed, truncated or unencodable wire data."""


# -- encoding -----------------------------------------------------------------


def write_uvarint(buf: bytearray, value: int) -> None:
    """Append ``value`` as an unsigned LEB128 varint."""
    if value < 0:
        raise WireError(f"cannot encode negative value {value} as uvarint")
    while value >= 0x80:
        buf.append((value & 0x7F) | 0x80)
        value >>= 7
    buf.append(value)


def write_svarint(buf: bytearray, value: int) -> None:
    """Append ``value`` as a zigzag-encoded signed varint."""
    zigzag = (value << 1) ^ (value >> 63) if -(1 << 63) <= value < (1 << 63) else None
    if zigzag is None:
        raise WireError(f"signed value {value} exceeds 64 bits")
    write_uvarint(buf, zigzag & ((1 << 64) - 1))


def write_string(buf: bytearray, value: str) -> None:
    """Append a length-prefixed UTF-8 string."""
    data = value.encode("utf-8")
    write_uvarint(buf, len(data))
    buf += data


def write_optional_string(buf: bytearray, value: Optional[str]) -> None:
    """Append a presence byte followed by the string when present."""
    if value is None:
        buf.append(0)
    else:
        buf.append(1)
        write_string(buf, value)


def uvarint_size(value: int) -> int:
    """Encoded width of ``value`` as an unsigned varint, in bytes."""
    if value < 0:
        raise WireError(f"cannot encode negative value {value} as uvarint")
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size


# -- decoding -----------------------------------------------------------------


class Reader:
    """Bounds-checked sequential reader over one immutable byte buffer."""

    __slots__ = ("_data", "_pos", "_end")

    def __init__(self, data: bytes, start: int = 0, end: Optional[int] = None) -> None:
        self._data = data
        self._pos = start
        self._end = len(data) if end is None else end
        if not 0 <= self._pos <= self._end <= len(data):
            raise WireError("reader bounds outside the buffer")

    @property
    def position(self) -> int:
        return self._pos

    def remaining(self) -> int:
        return self._end - self._pos

    def at_end(self) -> bool:
        return self._pos >= self._end

    def expect_end(self, context: str) -> None:
        """Fail unless the reader consumed its window exactly."""
        if self._pos != self._end:
            raise WireError(
                f"{context}: {self._end - self._pos} trailing bytes after decode"
            )

    def read_byte(self) -> int:
        if self._pos >= self._end:
            raise WireError("truncated frame: expected one more byte")
        value = self._data[self._pos]
        self._pos += 1
        return value

    def read_bytes(self, count: int) -> bytes:
        if count < 0:
            raise WireError(f"negative byte count {count}")
        if self._pos + count > self._end:
            raise WireError(
                f"truncated frame: wanted {count} bytes, "
                f"{self._end - self._pos} available"
            )
        value = self._data[self._pos : self._pos + count]
        self._pos += count
        return value

    def skip(self, count: int) -> None:
        if count < 0 or self._pos + count > self._end:
            raise WireError(
                f"truncated frame: wanted {count} bytes, "
                f"{self._end - self._pos} available"
            )
        self._pos += count

    def sub_reader(self, length: int) -> "Reader":
        """Consume ``length`` bytes and return a reader bounded to them."""
        if length < 0 or self._pos + length > self._end:
            raise WireError(
                f"truncated frame: declared {length} bytes, "
                f"{self._end - self._pos} available"
            )
        sub = Reader(self._data, self._pos, self._pos + length)
        self._pos += length
        return sub

    def read_uvarint(self) -> int:
        value = 0
        shift = 0
        for _ in range(_MAX_VARINT_BYTES):
            byte = self.read_byte()
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
        raise WireError("varint longer than 10 bytes")

    def read_svarint(self) -> int:
        zigzag = self.read_uvarint()
        return (zigzag >> 1) ^ -(zigzag & 1)

    def read_string(self) -> str:
        length = self.read_uvarint()
        data = self.read_bytes(length)
        try:
            return data.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireError(f"malformed UTF-8 string: {exc}") from exc

    def read_optional_string(self) -> Optional[str]:
        flag = self.read_byte()
        if flag == 0:
            return None
        if flag != 1:
            raise WireError(f"invalid optional-string flag {flag}")
        return self.read_string()

    def read_bool(self) -> bool:
        flag = self.read_byte()
        if flag > 1:
            raise WireError(f"invalid bool byte {flag}")
        return bool(flag)


def read_uvarint_prefix(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Read one unsigned varint at ``offset``; return ``(value, next_offset)``.

    Convenience for framing layers that need the length prefix before
    constructing a :class:`Reader` over the payload.
    """
    reader = Reader(data, offset)
    value = reader.read_uvarint()
    return value, reader.position
