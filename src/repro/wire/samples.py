"""Canonical sample messages, one per registered wire kind.

Shared by the round-trip tests, the codec microbenchmark and the drift
report: the samples are deliberately *representative* of the traffic the
fig5/fig6 experiments generate (100-byte payloads, single-partition fast
quorums, a couple of dependencies / piggybacked promises), so measuring
their encoded size against ``size_bytes()`` says something about the byte
accounting of the real runs.

Everything here is deterministic — same instances, same bytes, every call —
which is what lets ``results/wire_drift.txt`` be a committed golden file.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.base import MBatch
from repro.core.commands import Command
from repro.core.identifiers import Dot, intern_dot
from repro.core.messages import (
    ClientReply,
    ClientSubmit,
    MBump,
    MCommit,
    MCommitRequest,
    MConsensus,
    MConsensusAck,
    MDeliveryAck,
    MExecutedClock,
    MPayload,
    MPromiseResync,
    MPromises,
    MPropose,
    MProposeAck,
    MRec,
    MRecAck,
    MRecNAck,
    MStable,
    MStableRequest,
    MSubmit,
)
from repro.core.phases import Phase
from repro.core.promises import Promise
from repro.protocols.dep_messages import (
    MAccept,
    MAccepted,
    MCaesarCommit,
    MCaesarPropose,
    MCaesarProposeAck,
    MCaesarRetry,
    MCaesarRetryAck,
    MDecided,
    MDepAccept,
    MDepAcceptAck,
    MDepCommit,
    MForward,
    MJanusDeps,
    MPreAccept,
    MPreAcceptAck,
)


def _dot(source: int = 2, sequence: int = 37) -> Dot:
    return intern_dot(source, sequence)


def _command(payload_size: int = 100) -> Command:
    return Command.write(_dot(), ["key-0"], payload_size=payload_size, client_id=7)


def sample_messages(payload_size: int = 100) -> Dict[str, object]:
    """One representative instance per registered kind, keyed by kind name."""
    dot = _dot()
    command = _command(payload_size)
    quorums: Dict[int, Tuple[int, ...]] = {0: (0, 2, 3)}
    deps = frozenset({intern_dot(0, 11), intern_dot(1, 29)})
    attached = frozenset({Promise(2, 41)})
    detached = {2: ((38, 40),)}
    samples = {
        "MSubmit": MSubmit(dot, command, quorums),
        "MPropose": MPropose(dot, command, quorums, 41),
        "MProposeAck": MProposeAck(dot, 41, attached, detached),
        "MPayload": MPayload(dot, command, quorums),
        "MCommit": MCommit(dot, 41, 0, attached, detached),
        "MConsensus": MConsensus(dot, 41, 3),
        "MConsensusAck": MConsensusAck(dot, 3),
        "MBump": MBump(dot, 41),
        "MPromises": MPromises(
            dot,
            detached={2: ((38, 44), (46, 47))},
            attached={intern_dot(2, 36): frozenset({Promise(2, 37)})},
            committed=frozenset({intern_dot(2, 36)}),
        ),
        "MStable": MStable(dot, 0),
        "MRec": MRec(dot, 5),
        "MRecAck": MRecAck(dot, 41, Phase.PROPOSE, 0, 5),
        "MRecNAck": MRecNAck(dot, 5),
        "MCommitRequest": MCommitRequest(dot),
        "MPromiseResync": MPromiseResync(dot, frontier=17),
        "MDeliveryAck": MDeliveryAck(dot, kind_id=5, epoch=1, frontier=41),
        "MStableRequest": MStableRequest(dot, 0),
        "MExecutedClock": MExecutedClock(dot, clock={0: 12, 1: 9, 2: 36}),
        "ClientSubmit": ClientSubmit(dot, command),
        "ClientReply": ClientReply(dot, result={"key-0": str(dot)}),
        "MPreAccept": MPreAccept(dot, command, deps, 4),
        "MPreAcceptAck": MPreAcceptAck(dot, deps, 4),
        "MDepAccept": MDepAccept(dot, command, deps, 4, 3),
        "MDepAcceptAck": MDepAcceptAck(dot, 3),
        "MDepCommit": MDepCommit(dot, command, deps, 4, 0),
        "MCaesarPropose": MCaesarPropose(dot, command, (41, 2)),
        "MCaesarProposeAck": MCaesarProposeAck(dot, (41, 2), deps, True),
        "MCaesarRetry": MCaesarRetry(dot, command, (53, 2), deps),
        "MCaesarRetryAck": MCaesarRetryAck(dot, (53, 2), deps),
        "MCaesarCommit": MCaesarCommit(dot, command, (53, 2), deps),
        "MForward": MForward(dot, command),
        "MAccept": MAccept(dot, command, 37, 3),
        "MAccepted": MAccepted(dot, 37, 3),
        "MDecided": MDecided(dot, command, 37),
        "MJanusDeps": MJanusDeps(dot, 0, deps),
    }
    samples["MBatch"] = MBatch(
        (samples["MCommit"], samples["MStable"], samples["MConsensusAck"])
    )
    return samples
