"""Workload generators used by the evaluation (§6.2, §6.4)."""

from repro.workloads.micro import MicroWorkload
from repro.workloads.ycsbt import YcsbTWorkload, YCSB_WORKLOADS
from repro.workloads.batching import Batcher, BatchingModel

__all__ = [
    "Batcher",
    "BatchingModel",
    "MicroWorkload",
    "YCSB_WORKLOADS",
    "YcsbTWorkload",
]
