"""Batching of client commands (§6.3, Figure 8).

The paper batches commands at a site: a batch is flushed after 5 ms or once
105 commands are buffered, whichever comes first; the batch is then
submitted as a single multi-partition command.  :class:`Batcher` reproduces
the buffering logic (used by tests and the asyncio runtime), while
:class:`BatchingModel` captures the effect batching has on the per-command
resource cost, which is what the Figure 8 throughput model needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.core.commands import Command


@dataclass
class Batcher:
    """Buffers commands and flushes them by size or by age."""

    max_size: int = 105
    max_delay_ms: float = 5.0
    _buffer: List[Command] = field(default_factory=list)
    _oldest: Optional[float] = None
    flushed_batches: int = 0
    flushed_commands: int = 0

    def __post_init__(self) -> None:
        if self.max_size < 1:
            raise ValueError("max_size must be >= 1")
        if self.max_delay_ms <= 0:
            raise ValueError("max_delay_ms must be positive")

    def add(self, command: Command, now: float) -> Optional[List[Command]]:
        """Add a command; return a full batch if the size trigger fired."""
        if not self._buffer:
            self._oldest = now
        self._buffer.append(command)
        if len(self._buffer) >= self.max_size:
            return self.flush(now)
        return None

    def poll(self, now: float) -> Optional[List[Command]]:
        """Return a batch if the age trigger fired."""
        if self._buffer and self._oldest is not None:
            if now - self._oldest >= self.max_delay_ms:
                return self.flush(now)
        return None

    def flush(self, now: float) -> Optional[List[Command]]:
        """Flush whatever is buffered."""
        if not self._buffer:
            return None
        batch, self._buffer = self._buffer, []
        self._oldest = None
        self.flushed_batches += 1
        self.flushed_commands += len(batch)
        return batch

    def pending(self) -> int:
        return len(self._buffer)

    def average_batch_size(self) -> float:
        if self.flushed_batches == 0:
            return 0.0
        return self.flushed_commands / self.flushed_batches


@dataclass(frozen=True)
class BatchingModel:
    """Analytical effect of batching on per-command costs (Figure 8).

    With a batch of ``b`` commands, protocol-level messages are sent once
    per batch instead of once per command, so per-command *protocol* CPU and
    per-command message *header* bytes shrink by a factor ``b``; payload
    bytes are unaffected (every command's payload still crosses the wire),
    and so is the per-command execution (state-machine application) cost.
    """

    enabled: bool = True
    expected_batch_size: float = 105.0

    def effective_batch(self, offered_rate_per_site: float = float("inf")) -> float:
        """Average batch size.

        With the 5 ms / 105-command flush policy the batch size is capped
        both by 105 and by how many commands arrive in 5 ms.
        """
        if not self.enabled:
            return 1.0
        arrivals_in_window = offered_rate_per_site * 0.005
        if arrivals_in_window == float("inf"):
            return self.expected_batch_size
        return max(1.0, min(self.expected_batch_size, arrivals_in_window))

    def amortization_factor(self, offered_rate_per_site: float = float("inf")) -> float:
        """Divisor applied to per-command protocol overheads."""
        return self.effective_batch(offered_rate_per_site)
