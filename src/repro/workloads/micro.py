"""Conflict-rate microbenchmark (§6.2, full-replication experiments).

Each command carries a key of 8 bytes and a payload of 100 bytes (4 KB in
the load experiments).  To generate a conflict rate ``rho``, a client picks
the shared key ``key-0`` with probability ``rho`` and a key private to the
client otherwise, so that two commands conflict exactly when both chose the
shared key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.simulator.rng import SeededRng


@dataclass
class MicroWorkload:
    """Per-client microbenchmark key generator.

    Attributes:
        client_id: identifier of the client this generator belongs to.
        conflict_rate: probability of choosing the shared (hot) key.
        payload_size: command payload size in bytes.
        keys_per_command: number of keys per command (1 in the paper's
            full-replication microbenchmark).
        read_ratio: fraction of read-only commands (0 for Tempo-style
            workloads; used by the Janus*/EPaxos read/write experiments).
    """

    client_id: int
    conflict_rate: float = 0.02
    payload_size: int = 100
    keys_per_command: int = 1
    read_ratio: float = 0.0
    shared_key: str = "key-0"
    rng: Optional[SeededRng] = None
    _counter: int = field(default=0)

    def __post_init__(self) -> None:
        if not 0.0 <= self.conflict_rate <= 1.0:
            raise ValueError("conflict_rate must be in [0, 1]")
        if not 0.0 <= self.read_ratio <= 1.0:
            raise ValueError("read_ratio must be in [0, 1]")
        if self.keys_per_command < 1:
            raise ValueError("keys_per_command must be >= 1")
        if self.payload_size < 0:
            raise ValueError("payload_size must be non-negative")
        if self.rng is None:
            self.rng = SeededRng(seed=self.client_id + 1)

    def next_keys(self) -> List[str]:
        """Keys accessed by the next command."""
        keys: List[str] = []
        for _ in range(self.keys_per_command):
            if self.rng.uniform() < self.conflict_rate:
                keys.append(self.shared_key)
            else:
                self._counter += 1
                keys.append(f"key-c{self.client_id}-{self._counter}")
        # A command never lists the same key twice.
        return list(dict.fromkeys(keys))

    def next_is_read(self) -> bool:
        """Whether the next command is a read (per ``read_ratio``)."""
        if self.read_ratio <= 0.0:
            return False
        return self.rng.uniform() < self.read_ratio

    def generated(self) -> int:
        """Number of private keys handed out so far."""
        return self._counter
