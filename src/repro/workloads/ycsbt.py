"""YCSB+T workload for the partial-replication experiments (§6.4).

Clients submit transactions that access two keys picked at random following
the YCSB access pattern (a zipfian distribution over the key space).  The
paper uses three YCSB mixes for Janus*:

* workload C — read-only (w = 0 %), the best case for Janus*;
* workload B — read-heavy (w = 5 % writes);
* workload A — update-heavy (w = 50 % writes);

and two contention levels, ``zipf = 0.5`` and ``zipf = 0.7``.  Tempo does
not distinguish reads from writes, so a single Tempo workload covers all
mixes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.kvstore.sharding import ShardMap
from repro.simulator.rng import SeededRng, ZipfSampler

#: Named YCSB mixes: write ratio per workload letter.
YCSB_WORKLOADS: Dict[str, float] = {
    "A": 0.50,
    "B": 0.05,
    "C": 0.00,
}


@dataclass
class YcsbTWorkload:
    """Two-key zipfian transactions over a sharded key space."""

    client_id: int
    shard_map: ShardMap
    zipf: float = 0.5
    write_ratio: float = 0.05
    keys_per_transaction: int = 2
    keys_per_shard: int = 10_000
    payload_size: int = 100
    rng: Optional[SeededRng] = None
    _sampler: Optional[ZipfSampler] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ValueError("write_ratio must be in [0, 1]")
        if self.keys_per_transaction < 1:
            raise ValueError("keys_per_transaction must be >= 1")
        if self.rng is None:
            self.rng = SeededRng(seed=self.client_id + 1)
        total_keys = min(
            self.shard_map.total_keys(),
            self.keys_per_shard * self.shard_map.num_shards,
        )
        self._sampler = ZipfSampler(total_keys, self.zipf, rng=self.rng)

    @classmethod
    def from_workload_letter(
        cls, client_id: int, shard_map: ShardMap, letter: str, zipf: float = 0.5, **kwargs
    ) -> "YcsbTWorkload":
        """Build the workload for a YCSB letter (A, B or C)."""
        try:
            write_ratio = YCSB_WORKLOADS[letter.upper()]
        except KeyError as exc:
            raise KeyError(f"unknown YCSB workload {letter!r}") from exc
        return cls(
            client_id=client_id,
            shard_map=shard_map,
            zipf=zipf,
            write_ratio=write_ratio,
            **kwargs,
        )

    def next_keys(self) -> List[str]:
        """Keys accessed by the next transaction (popularity-ranked)."""
        assert self._sampler is not None
        indices = self._sampler.sample_distinct(self.keys_per_transaction)
        return [f"user{index}" for index in indices]

    def next_is_read(self) -> bool:
        """Whether the next transaction is read-only."""
        assert self.rng is not None
        return self.rng.uniform() >= self.write_ratio

    def shards_of(self, keys: List[str]) -> List[int]:
        """Shards accessed by a set of keys."""
        return self.shard_map.shards_of(keys)
