"""Shared pytest fixtures and helpers for the Tempo reproduction test suite."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import pytest

from repro.core.commands import Command, Partitioner
from repro.core.config import ProtocolConfig
from repro.core.process import TempoProcess
from repro.kvstore.store import KeyValueStore
from repro.simulator.inline import InlineNetwork


class TempoCluster:
    """A small helper wrapping a set of Tempo processes plus an inline
    network, used throughout the unit tests."""

    def __init__(
        self,
        num_processes: int = 3,
        faults: int = 1,
        num_partitions: int = 1,
        partitioner: Optional[Partitioner] = None,
        watermark_gc: bool = False,
    ) -> None:
        self.config = ProtocolConfig(
            num_processes=num_processes,
            faults=faults,
            num_partitions=num_partitions,
        )
        self.partitioner = partitioner or Partitioner(num_partitions)
        self.stores: Dict[int, KeyValueStore] = {}
        self.processes: List[TempoProcess] = []
        for process_id in range(self.config.total_processes()):
            store = KeyValueStore(self.config.partition_of_process(process_id))
            self.stores[process_id] = store
            process = TempoProcess(
                process_id,
                self.config,
                partitioner=self.partitioner,
                apply_fn=store.apply,
                # Unit tests inspect per-command records (phases, committed
                # timestamps) after settling; watermark GC — deliberately —
                # drops exactly that state once a command is globally
                # executed, so the shared cluster keeps it off.  The GC path
                # has its own tests (tests/test_core/test_gc.py) and runs in
                # every experiment-level suite.
                watermark_gc=watermark_gc,
            )
            self.processes.append(process)
        self.network = InlineNetwork(self.processes)

    def process(self, process_id: int) -> TempoProcess:
        return self.network.processes[process_id]

    def submit(self, process_id: int, keys: Sequence[str], now: float = 0.0) -> Command:
        process = self.process(process_id)
        command = process.new_command(keys)
        process.submit(command, now)
        return command

    def run(self, now: float = 0.0) -> None:
        self.network.run(now)

    def settle(self, now: float = 0.0, rounds: int = 10) -> None:
        self.network.settle(now, rounds)

    def executed_everywhere(self, dot) -> bool:
        relevant = [
            process
            for process in self.processes
            if process.partition in self._partitions_of_dot(dot)
        ]
        return all(dot in process.executed_dots() for process in relevant)

    def _partitions_of_dot(self, dot) -> set:
        for process in self.processes:
            record = process._info.get(dot)
            if record is not None and record.quorums:
                return set(record.quorums)
        return set(range(self.config.num_partitions))


@pytest.fixture
def cluster_3() -> TempoCluster:
    """Three processes, one partition, f = 1."""
    return TempoCluster(num_processes=3, faults=1)


@pytest.fixture
def cluster_5_f1() -> TempoCluster:
    """Five processes, one partition, f = 1."""
    return TempoCluster(num_processes=5, faults=1)


@pytest.fixture
def cluster_5_f2() -> TempoCluster:
    """Five processes, one partition, f = 2."""
    return TempoCluster(num_processes=5, faults=2)


@pytest.fixture
def cluster_2x3():
    """Two partitions, three processes each, f = 1, with explicit keys.

    Keys ``p0-*`` map to partition 0 and ``p1-*`` to partition 1.
    """
    partitioner = Partitioner(
        num_partitions=2,
        explicit={},
    )

    class _PrefixPartitioner(Partitioner):
        def __init__(self) -> None:
            super().__init__(num_partitions=2)

        def partition_of(self, key: str) -> int:
            return 1 if key.startswith("p1") else 0

    return TempoCluster(
        num_processes=3, faults=1, num_partitions=2, partitioner=_PrefixPartitioner()
    )
