"""Tests for the AST lint suite: repo-wide cleanliness plus seeded offenders.

The seeded tests build a miniature ``repro``-shaped tree under ``tmp_path``
and point each check's ``root`` at it, proving the checks actually fire (a
lint that can never fail enforces nothing) and that the sanctioned locations
(``repro/wire/``, ``simulator/events.py``, ``simulator/rng.py``,
``runtime/``) are exempt.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

from repro.analysis.lint import (
    ALL_CHECKS,
    determinism_findings,
    hot_class_slots_findings,
    run_all,
    scheduler_internal_findings,
    struct_import_findings,
)


def _tree(tmp_path: Path, files: dict) -> Path:
    root = tmp_path / "repro"
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return root


class TestRepoWide:
    def test_source_tree_is_clean(self):
        findings = [str(finding) for finding in run_all()]
        assert not findings, "\n".join(findings)

    def test_module_entry_point_exits_zero(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis.lint"],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "lint: OK" in result.stdout

    def test_every_check_is_registered(self):
        assert len(ALL_CHECKS) == 6
        assert [name for name, _ in ALL_CHECKS] == [
            "struct-outside-wire",
            "scheduler-internals",
            "missing-slots",
            "codec-exhaustiveness",
            "dispatch-completeness",
            "nondeterminism",
        ]


class TestStructGate:
    def test_import_outside_wire_is_flagged(self, tmp_path):
        root = _tree(tmp_path, {"core/codec.py": "import struct\n"})
        findings = struct_import_findings(root)
        assert [finding.code for finding in findings] == ["struct-outside-wire"]
        assert findings[0].line == 1

    def test_from_import_is_flagged(self, tmp_path):
        root = _tree(tmp_path, {"core/codec.py": "from struct import pack\n"})
        assert struct_import_findings(root)

    def test_wire_package_is_exempt(self, tmp_path):
        root = _tree(tmp_path, {"wire/codecs.py": "import struct\n"})
        assert not struct_import_findings(root)

    def test_unrelated_imports_pass(self, tmp_path):
        root = _tree(tmp_path, {"core/x.py": "import json\nimport io\n"})
        assert not struct_import_findings(root)


class TestSchedulerGate:
    def test_private_lane_access_is_flagged(self, tmp_path):
        root = _tree(tmp_path, {"simulator/loop.py": "n = events._lanes\n"})
        findings = scheduler_internal_findings(root)
        assert [finding.code for finding in findings] == ["scheduler-internals"]

    def test_any_private_reach_through_queue_is_flagged(self, tmp_path):
        # The historical pattern the public API replaced: queue._heap.
        root = _tree(tmp_path, {"simulator/loop.py": "x = queue._heap\n"})
        assert scheduler_internal_findings(root)

    def test_events_py_itself_is_exempt(self, tmp_path):
        root = _tree(
            tmp_path, {"simulator/events.py": "x = self._lanes\ny = queue._heap\n"}
        )
        assert not scheduler_internal_findings(root)

    def test_other_private_attributes_pass(self, tmp_path):
        root = _tree(tmp_path, {"simulator/loop.py": "x = process._info\n"})
        assert not scheduler_internal_findings(root)


class TestDeterminismGate:
    def test_import_random_is_flagged(self, tmp_path):
        root = _tree(tmp_path, {"core/x.py": "import random\n"})
        findings = determinism_findings(root)
        assert [finding.code for finding in findings] == ["nondeterminism"]

    def test_from_random_import_is_flagged(self, tmp_path):
        root = _tree(tmp_path, {"core/x.py": "from random import choice\n"})
        assert determinism_findings(root)

    def test_wall_clock_read_is_flagged(self, tmp_path):
        root = _tree(tmp_path, {"core/x.py": "import time\nt = time.time()\n"})
        findings = determinism_findings(root)
        assert findings and findings[0].line == 2

    def test_aliased_wall_clock_read_is_flagged(self, tmp_path):
        # Alias-aware: a grep for "time.time" misses this.
        root = _tree(
            tmp_path, {"core/x.py": "import time as clock\nt = clock.monotonic()\n"}
        )
        assert determinism_findings(root)

    def test_from_time_import_is_flagged(self, tmp_path):
        root = _tree(tmp_path, {"core/x.py": "from time import perf_counter\n"})
        assert determinism_findings(root)

    def test_import_time_alone_passes(self, tmp_path):
        # Importing the module is fine (e.g. for time.sleep in tooling);
        # only wall-clock reads are nondeterministic.
        root = _tree(tmp_path, {"core/x.py": "import time\ntime.sleep(0)\n"})
        assert not determinism_findings(root)

    def test_rng_module_is_exempt(self, tmp_path):
        root = _tree(tmp_path, {"simulator/rng.py": "import random\n"})
        assert not determinism_findings(root)

    def test_runtime_package_is_exempt(self, tmp_path):
        root = _tree(
            tmp_path, {"runtime/loop.py": "import time\nt = time.monotonic()\n"}
        )
        assert not determinism_findings(root)


class TestSlotsGate:
    def test_registered_class_without_slots_is_flagged(self, tmp_path):
        root = _tree(tmp_path, {"core/info.py": "class CommandInfo:\n    pass\n"})
        findings = [
            finding
            for finding in hot_class_slots_findings(root)
            if "CommandInfo" in finding.message and "not found" not in finding.message
        ]
        assert [finding.code for finding in findings] == ["missing-slots"]

    def test_dunder_slots_declaration_passes(self, tmp_path):
        root = _tree(
            tmp_path,
            {"core/info.py": "class CommandInfo:\n    __slots__ = ('x',)\n"},
        )
        assert not [
            finding
            for finding in hot_class_slots_findings(root)
            if "CommandInfo" in finding.message and "not found" not in finding.message
        ]

    def test_dataclass_slots_true_passes(self, tmp_path):
        root = _tree(
            tmp_path,
            {
                "core/info.py": (
                    "from dataclasses import dataclass\n"
                    "@dataclass(slots=True)\n"
                    "class CommandInfo:\n"
                    "    x: int = 0\n"
                )
            },
        )
        assert not [
            finding
            for finding in hot_class_slots_findings(root)
            if "CommandInfo" in finding.message and "not found" not in finding.message
        ]

    def test_missing_registered_file_is_flagged(self, tmp_path):
        root = _tree(tmp_path, {"core/info.py": "class CommandInfo:\n    __slots__ = ()\n"})
        findings = hot_class_slots_findings(root)
        # Every other registered hot class is absent from the tiny tree.
        assert any("not found" in finding.message for finding in findings)
