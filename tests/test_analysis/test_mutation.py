"""Mutation self-test: the analyzer must catch a real historical bug.

The mutation re-introduces the even-``r`` majority-index regression in
:meth:`repro.core.promises.PromiseSet.stable_timestamp` (PR 1): picking the
``r//2``-th sorted frontier instead of the ``(r-1)//2``-th.  For even ``r``
the resulting "stable" timestamp is backed by only ``r/2`` promisers — one
short of the strict majority Theorem 1 requires.

Both analysis pillars must detect it, and both must be clean without it:

* the **small-model explorer**'s per-state stability-safety check flags the
  first reachable state where a process trusts a sub-majority frontier —
  within a few dozen states of the ``r=4`` model;
* the **trace checker** flags the execution-order corruption the bug
  licenses.  Crash-free the sub-majority is coincidentally sufficient at
  ``f=1`` (any fast quorum still intersects the ``r/2`` backers), so the
  trace-level damage needs the recovery path: a crashed coordinator's
  command is recovered with a timestamp *below* the premature stable bound.
  The test replays that §B.1 race as a deterministic message schedule
  against one replica; under the mutation the replica executes a later
  timestamp first and the checker reports ``timestamp-order``.
"""

from __future__ import annotations

import pytest

import repro.core.promises as promises_mod
from repro.analysis.smallmodel import explore_tempo
from repro.analysis.trace import ExecutionTraceRecorder
from repro.core.commands import Command, KeyOp, OpKind, Partitioner
from repro.core.config import ProtocolConfig
from repro.core.identifiers import intern_dot
from repro.core.messages import MCommit, MPayload, MPromises, MPropose
from repro.core.process import TempoProcess
from repro.core.promises import Promise


def _buggy_stable_timestamp(self, processes):
    # PR 1's regression, cache-free: sorted index r//2 instead of (r-1)//2.
    frontiers = sorted(self._frontier.get(process, 0) for process in processes)
    return frontiers[len(frontiers) // 2] if frontiers else 0


@pytest.fixture
def mutated(monkeypatch):
    monkeypatch.setattr(
        promises_mod.PromiseSet, "stable_timestamp", _buggy_stable_timestamp
    )


def _command(source, sequence, key="k"):
    return Command(
        dot=intern_dot(source, sequence),
        ops=(KeyOp(key, OpKind.WRITE, "v"),),
        payload_size=8,
        client_id=None,
    )


def _replay_recovery_race():
    """Replay the §B.1 recovery race against replica 3 of an ``r=4`` cluster.

    History (all messages protocol-legal):

    * ``b`` (dot 0.1) was proposed by process 0 to fast quorum {0,1,2};
      process 1 acked with timestamp 1, then 0 crashed before its commit
      broadcast reached anyone but itself.
    * ``a`` (dot 2.1) is proposed by process 2 to fast quorum {2,1,3};
      process 1 (clock already at 2 from other traffic) proposes 3, so
      ``a`` commits at timestamp 3.  Process 1's promise 1 stays attached
      to the unresolved ``b``, so its frontier at replica 3 is stuck at 0 —
      only processes 2 and 3 back timestamps up to 3 (``r/2`` of 4).
    * Recovery eventually commits ``b`` at its original timestamp 1.

    Returns ``(process, report)`` for the trace recorded at replica 3.
    """
    config = ProtocolConfig(num_processes=4, faults=1)
    process = TempoProcess(3, config, partitioner=Partitioner(1))
    recorder = ExecutionTraceRecorder().attach([process])
    b = _command(0, 1)
    a = _command(2, 1)
    # a's proposal round: replica 3 is a fast-quorum member.
    process.deliver(2, MPropose(a.dot, a, {0: (2, 1, 3)}, 2), 0.0)
    process.drain_outbox()
    # a commits at 3 = max(2 from 2, 3 from 1, 2 from 3).  Process 1's
    # attached promise sits at 3 with a hole at 1 (attached to b).
    process.deliver(
        2,
        MCommit(
            a.dot,
            timestamp=3,
            partition=0,
            attached=frozenset({Promise(1, 3), Promise(2, 2), Promise(3, 2)}),
            detached={1: ((2, 2),), 2: ((1, 1),)},
        ),
        1.0,
    )
    process.drain_outbox()
    # Process 2 bumped its clock to 3 on commit; its periodic broadcast
    # closes its frontier up to 3.
    process.deliver(
        2,
        MPromises(
            intern_dot(2, 2), detached={2: ((3, 3),)}, attached={}, committed=frozenset()
        ),
        2.0,
    )
    process.drain_outbox()
    # Recovery outcome for b: payload re-broadcast, then commit at the
    # original fast-path timestamp 1 (below the premature stable bound).
    process.deliver(1, MPayload(b.dot, b, {0: (0, 1, 2)}), 3.0)
    process.deliver(
        1,
        MCommit(
            b.dot,
            timestamp=1,
            partition=0,
            attached=frozenset({Promise(0, 1), Promise(1, 1)}),
            detached={},
        ),
        3.0,
    )
    process.drain_outbox()
    process.tick(10.0)
    process.drain_outbox()
    return process, recorder.check()


class TestExplorerDetection:
    def test_explorer_flags_the_mutation_within_a_few_states(self, mutated):
        result = explore_tempo(
            num_processes=4,
            num_commands=2,
            stop_at_first_violation=True,
            max_states=50_000,
        )
        assert not result.ok
        codes = {violation.code for violation in result.violations}
        assert "stability-safety" in codes
        assert result.stop_reason == "first-violation"
        # The per-state Theorem 1 check catches it almost immediately —
        # no final-state divergence search needed.
        assert result.states_explored < 1_000

    def test_explorer_is_clean_on_the_same_model_without_the_mutation(self):
        # Same r=4 state space, same per-state check, correct code: nothing
        # but the (expected) budget marker within the same prefix of states.
        result = explore_tempo(num_processes=4, num_commands=2, max_states=800)
        codes = [violation.code for violation in result.violations]
        assert codes == ["state-budget"]


class TestTraceCheckerDetection:
    def test_trace_checker_flags_the_recovery_race(self, mutated):
        process, report = _replay_recovery_race()
        # Premature stability: a@3 executed while b@1 was still in flight.
        executed = [dot for dot, _ in process.executed]
        assert [str(dot) for dot in executed] == ["2.1", "0.1"]
        assert not report.ok
        codes = {violation.code for violation in report.violations}
        assert "timestamp-order" in codes

    def test_trace_checker_is_clean_on_the_same_schedule_unmutated(self):
        process, report = _replay_recovery_race()
        report.raise_if_violations()
        # Correct stability holds a@3 back until b@1 resolves.
        executed = [str(dot) for dot, _ in process.executed]
        assert executed[0] == "0.1"
