"""Exhaustive small-model gates: bounded Tempo and Caesar schedules.

Each test enumerates EVERY delivery-order interleaving of its bounded
schedule (``complete`` asserts the DFS ran to closure, not to a budget) and
must come back violation-free.  The models are sized for a per-commit test
run; the CI ``analysis`` job drives the larger ones (default-config Tempo at
~121k states, the two-command crash model at ~35k) through
``python -m repro.analysis.smallmodel``.
"""

from __future__ import annotations

from repro.analysis.smallmodel import explore_caesar, explore_tempo, main
from repro.core.gc import GcTracker


class TestTempoModels:
    def test_two_conflicting_commands_exhaustive(self):
        # r=3, two conflicting commands, ack_broadcast off (the commit
        # fan-out shrinks the lattice to pytest size: ~15k states).
        result = explore_tempo(num_commands=2, ack_broadcast=False)
        assert result.complete, result.summary()
        assert result.ok, result.summary()
        assert result.states_explored > 5_000
        assert result.final_states > 1_000

    def test_coordinator_crash_recovery_exhaustive(self):
        # The coordinator of the only command may crash at every depth;
        # survivors must recover (Algorithm 4) and — when the crash raced a
        # partial commit broadcast — learn the outcome via MCommitRequest
        # (§B.1): committed peers ignore MRec, so without the periodic
        # re-request a stalled recovery would never terminate.
        result = explore_tempo(
            num_commands=1, crash_coordinator=True, ack_broadcast=False
        )
        assert result.complete, result.summary()
        assert result.ok, result.summary()
        # Crash branches at every depth: deeper than the crash-free run.
        assert result.final_states > result.states_explored // 4

    def test_lost_commit_broadcast_exhaustive(self):
        # One in-flight MCommit may vanish at any depth (fair-lossy links);
        # nobody crashes, so the FULL liveness invariant stands: the
        # receiver that missed the commit learns the identifier through
        # promise broadcasts and the hint watchdog / MCommitRequest
        # machinery re-delivers the outcome — every command still executes
        # at every replica, in one agreed order.
        result = explore_tempo(
            num_commands=1, lose_commit=True, ack_broadcast=False
        )
        assert result.complete, result.summary()
        assert result.ok, result.summary()
        # The loss transition genuinely branched the schedule.
        baseline = explore_tempo(num_commands=1, ack_broadcast=False)
        assert result.states_explored > baseline.states_explored

    def test_two_keys_do_not_interfere(self):
        # Commands on distinct keys still share the timestamp lattice.
        result = explore_tempo(num_commands=2, num_keys=2, ack_broadcast=False)
        assert result.complete and result.ok, result.summary()


class TestEpoch2Models:
    """The epoch-2 state machines (MCommit elision, watermark GC) under the
    exhaustive model, plus a mutation proving the GC safety invariant has
    teeth: no committed command may be collected before it is globally
    executed."""

    def test_elision_and_gc_exhaustive(self):
        # Both epoch-2 features on (explicitly — they are also the
        # defaults): every interleaving closes clean, with the GC safety
        # invariant asserted in every reachable state and every settle
        # round.
        result = explore_tempo(
            num_commands=2,
            ack_broadcast=False,
            commit_elision=True,
            watermark_gc=True,
        )
        assert result.complete, result.summary()
        assert result.ok, result.summary()

    def test_elision_off_matches_epoch1_commit_path(self):
        result = explore_tempo(
            num_commands=2, ack_broadcast=False, commit_elision=False
        )
        assert result.complete and result.ok, result.summary()

    def test_gc_off_matches_epoch1_state_machine(self):
        result = explore_tempo(
            num_commands=2, ack_broadcast=False, watermark_gc=False
        )
        assert result.complete and result.ok, result.summary()

    def test_elision_under_coordinator_crash(self):
        # Elided commits + recovery: the self-committing fast-quorum
        # members must still propagate the outcome to everyone when the
        # coordinator dies mid-broadcast.
        result = explore_tempo(
            num_commands=1,
            crash_coordinator=True,
            ack_broadcast=False,
            commit_elision=True,
            watermark_gc=True,
        )
        assert result.complete, result.summary()
        assert result.ok, result.summary()

    def test_premature_collection_is_caught(self, monkeypatch):
        # Mutation: advance the watermark straight to the LOCAL frontier,
        # skipping the min-over-peers step.  Under the coordinator-crash
        # model there are schedules where the crashed replica never
        # executed the command the survivors now collect, so the
        # exhaustive gate must report the GC safety violation.
        def premature_advance(self):
            newly = []
            for source, frontier in self._frontier.items():
                old = self._watermark.get(source, 0)
                if frontier > old:
                    self._watermark[source] = frontier
                    newly.append((source, old + 1, frontier))
                    self.collected_count += frontier - old
            self._stale.clear()
            return newly

        monkeypatch.setattr(GcTracker, "advance", premature_advance)
        result = explore_tempo(
            num_commands=1,
            crash_coordinator=True,
            ack_broadcast=False,
            stop_at_first_violation=True,
        )
        assert not result.ok
        codes = {violation.code for violation in result.violations}
        assert "gc-before-global-execution" in codes, result.summary()

    def test_caesar_gc_off_matches_epoch1(self):
        result = explore_caesar(num_commands=2, watermark_gc=False)
        assert result.complete and result.ok, result.summary()


class TestGeneralisedLossModels:
    """PR 10 satellite: the loss transition generalised beyond MCommit,
    and the two-partition topology that makes cross-shard MStable loss
    expressible in the model."""

    def test_lose_kinds_generalises_lose_commit(self):
        # ``lose_commit`` is now an alias for ``lose_kinds=["MCommit"]``:
        # both spellings explore the identical lattice.
        alias = explore_tempo(num_commands=1, lose_commit=True, ack_broadcast=False)
        named = explore_tempo(
            num_commands=1, lose_kinds=["MCommit"], ack_broadcast=False
        )
        assert named.complete and named.ok, named.summary()
        assert named.states_explored == alias.states_explored
        assert named.final_states == alias.final_states

    def test_two_partition_mstable_loss_bounded_sweep(self):
        # The 6-process two-partition topology is too large to close in a
        # unit test (the CI analysis job sweeps a deeper prefix), so this
        # is a *bounded* soundness gate: within the state budget, losing a
        # cross-partition MStable at any depth must produce no protocol
        # violation — the cross-shard MStableRequest watchdog re-solicits
        # the lost notification during settle.
        result = explore_tempo(
            num_commands=1,
            lose_kinds=["MStable"],
            num_partitions=2,
            ack_broadcast=False,
            commit_elision=False,
            watermark_gc=False,
            max_states=5_000,
        )
        assert not result.complete and result.stop_reason == "max_states"
        codes = {violation.code for violation in result.violations}
        assert codes == {"state-budget"}, result.summary()
        assert result.final_states > 1_000, result.summary()
        assert "p=2" in result.protocol

    def test_cli_bounded_mode_tolerates_clean_truncation(self):
        argv = [
            "--commands",
            "1",
            "--partitions",
            "2",
            "--lose-kind",
            "MStable",
            "--no-ack-broadcast",
            "--no-commit-elision",
            "--no-watermark-gc",
            "--max-states",
            "300",
        ]
        # Truncated clean prefix: failure without --bounded, success with.
        assert main(argv) == 1
        assert main(argv + ["--bounded"]) == 0


class TestCaesarModel:
    def test_two_conflicting_commands_exhaustive(self):
        # Caesar commits purely through messages: the model closes in under
        # a hundred states but covers every propose/ack/commit interleaving
        # of two conflicting commands, including the wait-condition path.
        result = explore_caesar(num_commands=2)
        assert result.complete, result.summary()
        assert result.ok, result.summary()
        assert result.states_explored > 20


class TestBudgetAndReporting:
    def test_budget_truncation_is_reported_loudly(self):
        result = explore_tempo(num_commands=2, max_states=50)
        assert not result.complete
        assert result.stop_reason == "max_states"
        codes = [violation.code for violation in result.violations]
        assert codes == ["state-budget"]
        assert "stopped early" in result.summary()

    def test_summary_reports_state_counts(self):
        result = explore_caesar(num_commands=1)
        summary = result.summary()
        assert "states explored" in summary
        assert str(result.states_explored) in summary
