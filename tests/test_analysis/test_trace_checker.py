"""Unit tests for the execution-trace consistency checker.

Each invariant of :mod:`repro.analysis.consistency` is exercised with a
hand-built trace: a minimal clean trace, then one trace per violation code
(execute-twice, order-divergence, timestamp-order, timestamp-divergence,
real-time-order) plus the edge cases that must NOT trip the checker
(single-dot overlaps, cross-partition comparisons, unreplied windows).
"""

from __future__ import annotations

from repro.analysis.trace import ExecutionTraceRecorder, TraceEvent
from repro.core.identifiers import intern_dot


def _event(
    process_id,
    dot,
    keys=("k",),
    timestamp=None,
    partition=0,
    time=0.0,
    write_keys=None,
):
    # write_keys=None is the conservative default: every key is a write.
    return TraceEvent(
        process_id=process_id,
        partition=partition,
        dot=dot,
        keys=tuple(keys),
        timestamp=timestamp,
        time=time,
        write_keys=write_keys if write_keys is None else tuple(write_keys),
    )


def _recorder(events, partitions=None):
    recorder = ExecutionTraceRecorder()
    for event in events:
        recorder.events_by_process.setdefault(event.process_id, []).append(event)
        recorder.partitions.setdefault(event.process_id, event.partition)
    if partitions:
        recorder.partitions.update(partitions)
    return recorder


D1 = intern_dot(0, 1)
D2 = intern_dot(1, 1)
D3 = intern_dot(2, 1)


class TestCleanTraces:
    def test_empty_trace_is_ok(self):
        report = _recorder([]).check()
        assert report.ok
        assert report.events == 0

    def test_agreeing_replicas_are_ok(self):
        events = []
        for process_id in (0, 1, 2):
            events.append(_event(process_id, D1, timestamp=1))
            events.append(_event(process_id, D2, timestamp=2))
        report = _recorder(events).check()
        assert report.ok
        assert report.events == 6
        assert report.commands == 2

    def test_summary_mentions_counts(self):
        report = _recorder([_event(0, D1)]).check()
        assert "1 executions" in report.summary()
        assert report.ok


class TestAtMostOnce:
    def test_duplicate_execution_is_flagged(self):
        report = _recorder([_event(0, D1), _event(0, D1)]).check()
        codes = [violation.code for violation in report.violations]
        assert "execute-twice" in codes

    def test_same_dot_on_two_replicas_is_fine(self):
        report = _recorder([_event(0, D1), _event(1, D1)]).check()
        assert report.ok


class TestOrderAgreement:
    def test_divergent_per_key_order_is_flagged(self):
        events = [
            _event(0, D1),
            _event(0, D2),
            _event(1, D2),
            _event(1, D1),
        ]
        report = _recorder(events).check()
        codes = [violation.code for violation in report.violations]
        assert "order-divergence" in codes

    def test_single_common_dot_is_not_compared(self):
        # Run-end cutoffs leave suffixes unexecuted; one shared identifier
        # carries no order information.
        events = [_event(0, D1), _event(0, D2), _event(1, D2)]
        report = _recorder(events).check()
        assert report.ok

    def test_replicas_of_different_partitions_are_not_compared(self):
        events = [
            _event(0, D1, partition=0),
            _event(0, D2, partition=0),
            _event(1, D2, partition=1),
            _event(1, D1, partition=1),
        ]
        report = _recorder(events).check()
        assert report.ok

    def test_disjoint_keys_are_not_compared(self):
        events = [
            _event(0, D1, keys=("a",)),
            _event(0, D2, keys=("a",)),
            _event(1, D2, keys=("b",)),
            _event(1, D1, keys=("b",)),
        ]
        report = _recorder(events).check()
        assert report.ok


class TestConflictAwareness:
    """Read-read pairs are not conflicts (§3.3) and carry no order
    obligation — the read/write-aware dependency protocols record no edge
    between two reads, so their replicas may interleave them freely (the
    trace checker caught exactly this as a false positive on Janus* under
    the YCSB+T workload of fig9)."""

    def test_swapped_reads_are_not_a_divergence(self):
        events = [
            _event(0, D1, write_keys=()),
            _event(0, D2, write_keys=()),
            _event(1, D2, write_keys=()),
            _event(1, D1, write_keys=()),
        ]
        report = _recorder(events).check()
        assert report.ok

    def test_swapped_read_write_pair_is_flagged(self):
        events = [
            _event(0, D1, write_keys=()),
            _event(0, D2, write_keys=("k",)),
            _event(1, D2, write_keys=("k",)),
            _event(1, D1, write_keys=()),
        ]
        report = _recorder(events).check()
        codes = [violation.code for violation in report.violations]
        assert "order-divergence" in codes

    def test_read_between_swapped_positions_of_agreeing_writes(self):
        # Writes agree (D1 then D3) but the read D2 sees 0 writes on one
        # replica and 2 on the other: a read-write inversion.
        events = [
            _event(0, D1, write_keys=("k",)),
            _event(0, D3, write_keys=("k",)),
            _event(0, D2, write_keys=()),
            _event(1, D2, write_keys=()),
            _event(1, D1, write_keys=("k",)),
            _event(1, D3, write_keys=("k",)),
        ]
        report = _recorder(events).check()
        codes = [violation.code for violation in report.violations]
        assert "order-divergence" in codes

    def test_read_timestamps_may_interleave(self):
        # Two reads out of timestamp order: not a conflict, not a violation.
        events = [
            _event(0, D1, timestamp=5, write_keys=()),
            _event(0, D2, timestamp=3, write_keys=()),
        ]
        report = _recorder(events).check()
        assert report.ok

    def test_read_executed_after_write_with_smaller_timestamp_is_flagged(self):
        events = [
            _event(0, D1, timestamp=5, write_keys=("k",)),
            _event(0, D2, timestamp=3, write_keys=()),
        ]
        report = _recorder(events).check()
        codes = [violation.code for violation in report.violations]
        assert "timestamp-order" in codes

    def test_real_time_order_ignores_read_read_pairs(self):
        recorder = _recorder(
            [
                _event(0, D2, write_keys=(), time=10.0),
                _event(0, D1, write_keys=(), time=11.0),
            ]
        )
        recorder.note_submit(D1, ("k",), 0.0)
        recorder.note_reply(D1, 1.0)
        # D2 submitted after D1's reply but executed first: fine for reads.
        recorder.note_submit(D2, ("k",), 5.0)
        recorder.note_reply(D2, 6.0)
        assert recorder.check().ok

    def test_real_time_order_still_applies_to_writes(self):
        recorder = _recorder(
            [
                _event(0, D2, write_keys=("k",), time=10.0),
                _event(0, D1, write_keys=("k",), time=11.0),
            ]
        )
        recorder.note_submit(D1, ("k",), 0.0)
        recorder.note_reply(D1, 1.0)
        recorder.note_submit(D2, ("k",), 5.0)
        recorder.note_reply(D2, 6.0)
        report = recorder.check()
        codes = [violation.code for violation in report.violations]
        assert "real-time-order" in codes


class TestTimestampInvariants:
    def test_timestamp_inversion_is_flagged(self):
        # The footprint of premature stability: a smaller committed
        # timestamp executed after a larger one on the same replica.
        events = [_event(0, D1, timestamp=5), _event(0, D2, timestamp=3)]
        report = _recorder(events).check()
        codes = [violation.code for violation in report.violations]
        assert "timestamp-order" in codes

    def test_equal_timestamp_lower_dot_is_flagged(self):
        # Ties break by identifier: (3, D1) must execute before (3, D2).
        events = [_event(0, D2, timestamp=3), _event(0, D1, timestamp=3)]
        report = _recorder(events).check()
        codes = [violation.code for violation in report.violations]
        assert "timestamp-order" in codes

    def test_untimestamped_events_skip_the_check(self):
        # Dependency-ordered protocols carry no agreed timestamp.
        events = [_event(0, D1, timestamp=None), _event(0, D2, timestamp=None)]
        report = _recorder(events).check()
        assert report.ok

    def test_timestamp_divergence_is_flagged(self):
        events = [_event(0, D1, timestamp=4), _event(1, D1, timestamp=7)]
        report = _recorder(events).check()
        codes = [violation.code for violation in report.violations]
        assert "timestamp-divergence" in codes

    def test_caesar_tuple_timestamps_are_supported(self):
        events = [
            _event(0, D1, timestamp=(1, 0)),
            _event(0, D2, timestamp=(2, 1)),
            _event(1, D1, timestamp=(1, 0)),
            _event(1, D2, timestamp=(2, 1)),
        ]
        report = _recorder(events).check()
        assert report.ok


class TestRealTimeOrder:
    def test_inverted_real_time_order_is_flagged(self):
        # D1 completed at its client before D2 was submitted, yet the
        # replica executed D2 first.
        recorder = _recorder([_event(0, D2), _event(0, D1)])
        recorder.note_submit(D1, ["k"], 0.0)
        recorder.note_reply(D1, 1.0)
        recorder.note_submit(D2, ["k"], 2.0)
        recorder.note_reply(D2, 3.0)
        report = recorder.check()
        codes = [violation.code for violation in report.violations]
        assert "real-time-order" in codes

    def test_concurrent_commands_may_execute_either_way(self):
        # Overlapping windows: no real-time constraint.
        recorder = _recorder([_event(0, D2), _event(0, D1)])
        recorder.note_submit(D1, ["k"], 0.0)
        recorder.note_reply(D1, 5.0)
        recorder.note_submit(D2, ["k"], 2.0)
        recorder.note_reply(D2, 3.0)
        assert recorder.check().ok

    def test_unreplied_window_is_no_constraint(self):
        # A command with no recorded reply (run-end cutoff) cannot have
        # happened-before anything.
        recorder = _recorder([_event(0, D2), _event(0, D1)])
        recorder.note_submit(D1, ["k"], 0.0)
        recorder.note_submit(D2, ["k"], 2.0)
        recorder.note_reply(D2, 3.0)
        assert recorder.check().ok

    def test_reply_at_time_zero_counts(self):
        # replied_at=0.0 is falsy but is a real reply time; the checker
        # must not confuse it with "no reply recorded".
        recorder = _recorder([_event(0, D2), _event(0, D1)])
        recorder.note_submit(D1, ["k"], -1.0)
        recorder.note_reply(D1, 0.0)
        recorder.note_submit(D2, ["k"], 1.0)
        recorder.note_reply(D2, 2.0)
        report = recorder.check()
        codes = [violation.code for violation in report.violations]
        assert "real-time-order" in codes


class TestRecorderWiring:
    def test_attach_records_live_executions(self):
        from repro.core.commands import Partitioner
        from repro.core.config import ProtocolConfig
        from repro.core.process import TempoProcess
        from repro.simulator.inline import InlineNetwork

        config = ProtocolConfig(num_processes=3, faults=1)
        processes = [
            TempoProcess(process_id, config, partitioner=Partitioner(1))
            for process_id in range(3)
        ]
        recorder = ExecutionTraceRecorder().attach(processes)
        network = InlineNetwork(processes)
        command = processes[0].new_command(["k"])
        processes[0].submit(command, 0.0)
        network.step(0.0)
        network.settle(rounds=20)
        assert recorder.event_count() == 3
        report = recorder.check()
        report.raise_if_violations()
        # Tempo events carry the committed (integer) timestamp.
        for events in recorder.events_by_process.values():
            assert events[0].timestamp is not None

    def test_raise_if_violations_raises(self):
        import pytest

        report = _recorder([_event(0, D1), _event(0, D1)]).check()
        with pytest.raises(AssertionError, match="execute-twice"):
            report.raise_if_violations()
