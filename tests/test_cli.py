"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.protocol == "tempo"
        assert args.sites == 5
        assert args.workload == "micro"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--protocol", "raft"])

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "fig8"])
        assert args.name == "fig8"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestCommands:
    def test_protocols_lists_all(self, capsys):
        assert main(["protocols"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == {"tempo", "atlas", "epaxos", "caesar", "fpaxos", "janus"}

    def test_throughput_command(self, capsys):
        assert main(["throughput", "--protocol", "atlas", "--conflict", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "atlas" in out and "execution" in out

    def test_figure_table1(self, capsys):
        assert main(["figure", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "fast_path" in out

    def test_figure_fig8(self, capsys):
        assert main(["figure", "fig8"]) == 0
        out = capsys.readouterr().out
        assert "batching" in out

    def test_figure_fig9(self, capsys):
        assert main(["figure", "fig9"]) == 0
        out = capsys.readouterr().out
        assert "tempo_kops" in out

    def test_run_small_experiment(self, capsys):
        code = main(
            [
                "run",
                "--protocol", "tempo",
                "--sites", "3",
                "--clients", "2",
                "--duration", "1200",
                "--warmup", "200",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-site latency" in out
        assert "throughput" in out
