"""Tests for the experiment configuration, clients and the runner."""

from __future__ import annotations

import pytest

from repro.cluster.client import ClosedLoopClient
from repro.cluster.config import ExperimentConfig
from repro.cluster.runner import run_experiment
from repro.core.commands import Command
from repro.core.identifiers import Dot
from repro.core.messages import ClientReply
from repro.workloads.micro import MicroWorkload
from repro.simulator.rng import SeededRng


class TestExperimentConfig:
    def test_defaults_are_the_paper_deployment(self):
        config = ExperimentConfig()
        assert config.num_sites == 5
        assert list(config.site_names()) == [
            "ireland", "n-california", "singapore", "canada", "sao-paulo",
        ]
        assert config.total_clients() == 80

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(num_sites=0)
        with pytest.raises(ValueError):
            ExperimentConfig(clients_per_site=0)
        with pytest.raises(ValueError):
            ExperimentConfig(warmup_ms=5000.0, duration_ms=1000.0)
        with pytest.raises(ValueError):
            ExperimentConfig(workload="tpcc")
        with pytest.raises(ValueError):
            ExperimentConfig(num_sites=6)

    def test_three_site_partial_replication_config(self):
        config = ExperimentConfig(
            num_sites=3, num_shards=4, workload="ycsbt",
            sites=("ireland", "n-california", "singapore"),
        )
        assert config.num_shards == 4
        assert len(config.site_names()) == 3


class TestClosedLoopClient:
    def _client(self, stop_at=1000.0, warmup=0.0):
        submissions = []

        def submit(client, keys, is_read, now):
            command = Command.write(Dot(0, len(submissions) + 1), keys, client_id=client.client_id)
            submissions.append((command, now))
            return command

        workload = MicroWorkload(client_id=0, conflict_rate=0.0, rng=SeededRng(1))
        client = ClosedLoopClient(
            client_id=0, site="ireland", site_rank=0, workload=workload,
            submit=submit, stop_at=stop_at, warmup_ms=warmup,
        )
        return client, submissions

    def test_start_submits_first_command(self):
        client, submissions = self._client()
        client.start(0.0)
        assert len(submissions) == 1
        assert client.outstanding() == 1

    def test_reply_records_latency_and_resubmits(self):
        client, submissions = self._client()
        client.start(0.0)
        command, _ = submissions[0]
        client.on_reply(0, ClientReply(command.dot), 120.0)
        assert client.completed == 1
        assert client.mean_latency() == 120.0
        assert len(submissions) == 2

    def test_warmup_samples_are_excluded(self):
        client, submissions = self._client(warmup=500.0)
        client.start(0.0)
        command, _ = submissions[0]
        client.on_reply(0, ClientReply(command.dot), 100.0)
        assert client.completed == 1
        assert len(client.latency) == 0
        assert len(client.all_latency) == 1

    def test_no_submission_after_stop(self):
        client, submissions = self._client(stop_at=100.0)
        client.start(0.0)
        command, _ = submissions[0]
        client.on_reply(0, ClientReply(command.dot), 150.0)
        assert len(submissions) == 1
        assert not client.active

    def test_unknown_reply_is_ignored(self):
        client, submissions = self._client()
        client.start(0.0)
        client.on_reply(0, ClientReply(Dot(9, 9)), 50.0)
        assert client.completed == 0


class TestRunner:
    def test_small_tempo_experiment_produces_latency_and_throughput(self):
        config = ExperimentConfig(
            protocol="tempo", num_sites=3, clients_per_site=2,
            duration_ms=1_200.0, warmup_ms=200.0,
            sites=("ireland", "n-california", "singapore"),
        )
        result = run_experiment(config)
        assert result.completed > 0
        assert result.mean_latency() > 0
        assert result.throughput_ops > 0
        assert set(result.per_site_latency) == {"ireland", "n-california", "singapore"}

    def test_fpaxos_experiment_is_unfair_across_sites(self):
        config = ExperimentConfig(
            protocol="fpaxos", num_sites=3, clients_per_site=2,
            duration_ms=1_200.0, warmup_ms=200.0,
            sites=("ireland", "n-california", "singapore"),
        )
        result = run_experiment(config)
        means = result.site_mean_latency()
        assert means["ireland"] < means["singapore"]

    def test_partial_replication_experiment_with_janus(self):
        config = ExperimentConfig(
            protocol="janus", num_sites=3, num_shards=2, clients_per_site=2,
            workload="ycsbt", zipf=0.5, write_ratio=0.5, keys_per_shard=50,
            duration_ms=1_200.0, warmup_ms=200.0,
            sites=("ireland", "n-california", "singapore"),
        )
        result = run_experiment(config)
        assert result.completed > 0

    def test_deterministic_given_a_seed(self):
        config = ExperimentConfig(
            protocol="atlas", num_sites=3, clients_per_site=2,
            duration_ms=1_000.0, warmup_ms=200.0, seed=7,
            sites=("ireland", "n-california", "singapore"),
        )
        first = run_experiment(config)
        second = run_experiment(config)
        assert first.completed == second.completed
        assert first.mean_latency() == pytest.approx(second.mean_latency())

    def test_submitted_is_at_least_completed(self):
        config = ExperimentConfig(
            protocol="caesar", num_sites=3, clients_per_site=2,
            duration_ms=1_000.0, warmup_ms=200.0,
            sites=("ireland", "n-california", "singapore"),
        )
        result = run_experiment(config)
        assert result.submitted >= result.completed
