"""Cluster-level contracts of the declarative fault-plan machinery.

Three guarantees pin the refactor:

* the legacy ``crash_site_rank``/``crash_at_ms`` knobs and the explicit
  one-event :class:`FaultPlan` they compile to produce *identical* runs
  (same crash event at the same queue position), so every committed crash
  golden stays byte-stable;
* an empty fault plan is a no-op: the run is bit-identical to one with no
  fault machinery at all — healthy traffic never touches the fault RNG
  stream and installing an injector consumes nothing;
* the legacy knobs and an explicit plan are mutually exclusive.
"""

from __future__ import annotations

import pytest

from repro.cluster.config import ExperimentConfig
from repro.cluster.runner import run_experiment
from repro.faults import Crash, FaultPlan

SITES = ("ireland", "n-california", "singapore")


def small_config(**overrides) -> ExperimentConfig:
    options = dict(
        protocol="tempo",
        num_sites=3,
        clients_per_site=2,
        duration_ms=1_200.0,
        warmup_ms=200.0,
        seed=7,
        sites=SITES,
    )
    options.update(overrides)
    return ExperimentConfig(**options)


def run_fingerprint(result):
    """Everything observable about a run, for bit-identity comparison."""
    return (
        result.completed,
        result.submitted,
        result.throughput_ops,
        result.latency.samples(),
        {site: h.samples() for site, h in result.per_site_latency.items()},
        sorted(result.stats.items()),
    )


class TestLegacyCrashShim:
    def test_legacy_knobs_compile_to_a_one_event_plan(self):
        config = small_config(crash_site_rank=0, crash_at_ms=800.0)
        plan = config.compiled_fault_plan()
        assert plan is not None
        assert tuple(plan) == (Crash(at_ms=800.0, site_rank=0, shard=0),)

    def test_legacy_knobs_and_explicit_plan_run_identically(self):
        legacy = run_experiment(small_config(crash_site_rank=0, crash_at_ms=800.0))
        explicit = run_experiment(
            small_config(fault_plan=FaultPlan([Crash(at_ms=800.0, site_rank=0)]))
        )
        assert run_fingerprint(legacy) == run_fingerprint(explicit)

    def test_legacy_knobs_are_mutually_exclusive_with_a_plan(self):
        with pytest.raises(ValueError):
            small_config(
                crash_site_rank=0,
                crash_at_ms=800.0,
                fault_plan=FaultPlan([Crash(at_ms=800.0, site_rank=0)]),
            )

    def test_plan_is_validated_against_the_deployment(self):
        with pytest.raises(ValueError):
            small_config(fault_plan=FaultPlan([Crash(at_ms=800.0, site_rank=9)]))


class TestFaultRngDeterminism:
    def test_empty_plan_run_is_bit_identical_to_a_healthy_run(self):
        # Satellite 2 of the fault-injection campaign: the dedicated fault
        # RNG stream means merely *installing* the machinery perturbs
        # nothing — a run with an empty plan produces the exact same
        # latency samples as one that never heard of fault plans.
        healthy = run_experiment(small_config())
        with_empty_plan = run_experiment(small_config(fault_plan=FaultPlan([])))
        assert run_fingerprint(healthy) == run_fingerprint(with_empty_plan)

    def test_faulty_runs_are_deterministic_given_a_seed(self):
        config = small_config(
            fault_plan=FaultPlan(
                [Crash(at_ms=800.0, site_rank=1)]
            )
        )
        assert run_fingerprint(run_experiment(config)) == run_fingerprint(
            run_experiment(config)
        )
