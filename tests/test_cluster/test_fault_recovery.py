"""Recovery under sustained message loss (fault-injection satellite).

Two adversarial shapes that the paper's happy-path figures never exercise:

* a flaky-link window dropping a fraction of *all* cross-site traffic for
  most of the run, and
* a fast-quorum member partitioned away and healed late.

In both, Tempo must converge after the fault clears — every alive replica
drains its pending set and executes everything it committed — and it must
get there with *bounded* retransmission: the MCommitRequest watchdog and
the stability-resync machinery are periodic and debounced, so the message
overhead stays a small multiple of a healthy twin's, not a storm.
"""

from __future__ import annotations

from repro.cluster.config import ExperimentConfig
from repro.cluster.runner import run_experiment
from repro.faults import FaultPlan, FlakyLink, Partition

SITES = ("ireland", "n-california", "singapore")

# A faulty run may legitimately re-request commits it lost, but the
# periodic/debounced watchdogs cap the overhead: allow a small multiple of
# the healthy twin's count (plus slack for near-zero healthy baselines).
RETRANSMISSION_MULTIPLE = 3.0
RETRANSMISSION_SLACK = 50.0


def tempo_config(**overrides) -> ExperimentConfig:
    options = dict(
        protocol="tempo",
        num_sites=3,
        clients_per_site=2,
        duration_ms=2_500.0,
        warmup_ms=200.0,
        seed=3,
        sites=SITES,
        record_execution_trace=True,  # every run here is trace-certified
    )
    options.update(overrides)
    return ExperimentConfig(**options)


def stuck_commands(result) -> int:
    """Commands an alive replica left pending or committed-but-unexecuted."""
    alive = [process for process in result.deployment.processes if process.alive]
    return sum(
        len(process.pending_dots())
        + len(set(process.committed_dots()) - set(process.executed_dots()))
        for process in alive
    )


def assert_bounded_retransmission(faulty, healthy, kind: str) -> None:
    faulty_count = faulty.stats.get(f"sent:{kind}", 0.0)
    healthy_count = healthy.stats.get(f"sent:{kind}", 0.0)
    bound = healthy_count * RETRANSMISSION_MULTIPLE + RETRANSMISSION_SLACK
    assert faulty_count <= bound, (
        f"{kind} storm: faulty run sent {faulty_count:.0f}, "
        f"healthy twin sent {healthy_count:.0f} (bound {bound:.0f})"
    )


class TestSustainedLossRecovery:
    def test_flaky_all_links_drop_window_converges(self):
        plan = FaultPlan(
            [
                FlakyLink(
                    at_ms=600.0,
                    until_ms=1_800.0,
                    extra_delay_ms=20.0,
                    jitter_ms=10.0,
                    drop_probability=0.05,
                )
            ]
        )
        healthy = run_experiment(tempo_config())
        faulty = run_experiment(tempo_config(fault_plan=plan))
        assert faulty.completed > 0
        assert stuck_commands(faulty) == 0
        assert_bounded_retransmission(faulty, healthy, "MCommitRequest")

    def test_partitioned_then_healed_fast_quorum_member_converges(self):
        # With r=3, f=1 every site sits in the fast quorums: isolating
        # site 0 for 600 ms stalls its promise frontier and strands the
        # commits that raced the partition.  After the heal, recovery
        # (MRec re-attempts), the MCommitRequest watchdog and the
        # stability-resync broadcast must drain everything on all three
        # replicas — nobody crashed, so all of them count.
        plan = FaultPlan(
            [Partition(at_ms=800.0, heal_at_ms=1_400.0, groups=[(0,), (1, 2)])]
        )
        healthy = run_experiment(tempo_config())
        faulty = run_experiment(tempo_config(fault_plan=plan))
        alive = [p for p in faulty.deployment.processes if p.alive]
        assert len(alive) == 3
        assert stuck_commands(faulty) == 0
        # Survivors agree on one execution order.
        assert len({tuple(p.executed_dots()) for p in alive}) == 1
        assert_bounded_retransmission(faulty, healthy, "MCommitRequest")
        # The stability resync is a last-resort watchdog: it fires at most
        # a handful of times, never per-command.
        resyncs = faulty.stats.get("sent:MPromiseResync", 0.0)
        assert resyncs <= 30.0, f"MPromiseResync storm: {resyncs:.0f} sends"

    def test_combined_partition_and_flaky_tail(self):
        # The two shapes stacked: partition + heal, then a lossy window
        # over the healed links.  Still converges, still trace-certified.
        plan = FaultPlan(
            [
                Partition(at_ms=600.0, heal_at_ms=1_100.0, groups=[(0,), (1, 2)]),
                FlakyLink(
                    at_ms=1_200.0,
                    until_ms=1_700.0,
                    site_a=0,
                    drop_probability=0.1,
                ),
            ]
        )
        faulty = run_experiment(tempo_config(fault_plan=plan))
        assert faulty.completed > 0
        assert stuck_commands(faulty) == 0
