"""The reliable-delivery layer end to end (PR 10 tentpole).

Three properties the layer must hold simultaneously:

* **Healthy runs pay nothing.**  Arming the retransmit buffer must not
  perturb a run that never loses a message: the cluster runner only
  installs it for loss-capable fault plans, acks ride the same
  deterministic lanes as everything else, and a plan whose lossy window
  never fires leaves completions, latency samples and per-shard execution
  orders bit-identical to the no-plan twin.
* **Loss is healed with bounded traffic.**  Sustained targeted loss of
  the critical kinds converges via a handful of backed-off re-sends per
  entry — a small multiple of the healthy twin's traffic, never a storm —
  and without leaning on the MPromiseResync last resort.
* **The baselines are covered too.**  Atlas/EPaxos commit broadcasts are
  tracked through the same buffer, so their formerly stranded loss and
  restart cells drain.
"""

from __future__ import annotations

from repro.cluster.config import ExperimentConfig
from repro.cluster.runner import run_experiment
from repro.faults import Crash, FaultPlan, FlakyLink, Restart, TargetedLoss

from test_fault_recovery import (
    assert_bounded_retransmission,
    stuck_commands,
    tempo_config,
)


def baseline_config(protocol: str, **overrides) -> ExperimentConfig:
    options = dict(
        protocol=protocol,
        num_sites=3,
        clients_per_site=2,
        duration_ms=2_000.0,
        warmup_ms=200.0,
        seed=3,
        record_execution_trace=True,
    )
    options.update(overrides)
    return ExperimentConfig(**options)


def shard_orders(result):
    """Shard -> list of each alive replica's executed-dot order."""
    orders = {}
    for process in result.deployment.processes:
        if process.alive:
            orders.setdefault(process.partition, []).append(
                tuple(process.executed_dots())
            )
    return orders


def agreed_per_shard(result) -> bool:
    """Tempo-only invariant: one execution order per shard."""
    return all(len(set(orders)) == 1 for orders in shard_orders(result).values())


class TestHealthyTwinBitIdentity:
    def test_armed_but_never_fired_plan_is_bit_identical(self):
        # The lossy window opens at 9 s; the run ends around 6.5 s, so the
        # reliability layer is armed for the whole run yet no fault ever
        # fires and no message is ever dropped.  Everything observable
        # must match the no-plan twin exactly.
        never_fires = FaultPlan(
            [FlakyLink(at_ms=9_000.0, until_ms=9_500.0, drop_probability=0.01)]
        )
        plain = run_experiment(tempo_config())
        armed = run_experiment(tempo_config(fault_plan=never_fires))
        assert armed.stats.get("retransmit_tracked", 0.0) > 0.0
        assert armed.completed == plain.completed
        assert armed.submitted == plain.submitted
        assert armed.latency.samples() == plain.latency.samples()
        assert shard_orders(armed) == shard_orders(plain)
        # No loss -> every tracked entry acked on first delivery: zero
        # re-sends, zero expiries, nothing left pending.
        assert armed.stats.get("retransmit_resends", 0.0) == 0.0
        assert armed.stats.get("retransmit_expired", 0.0) == 0.0
        assert armed.stats.get("retransmit_pending", 0.0) == 0.0

    def test_crash_only_plans_never_arm_the_layer(self):
        # Crash-only plans keep the goldens byte-identical by never
        # installing the buffer (a crashed process cannot be helped by
        # retransmission anyway — nobody acks from the grave).
        plan = FaultPlan([Crash(at_ms=1_200.0, site_rank=1)])
        result = run_experiment(tempo_config(fault_plan=plan))
        assert "retransmit_tracked" not in result.stats
        for process in result.deployment.processes:
            assert process.reliability is None


class TestBoundedRetransmissionUnderLoss:
    def test_sustained_mstable_loss_converges_without_storms(self):
        # Two shards and two-key commands: every command needs the
        # cross-partition MStable exchange the plan is black-holing.
        sharded = dict(num_shards=2, keys_per_command=2)
        plan = FaultPlan(
            [
                TargetedLoss(
                    at_ms=400.0,
                    until_ms=1_600.0,
                    kind="MStable",
                    probability=0.5,
                    cross_shard_only=True,
                )
            ]
        )
        healthy = run_experiment(tempo_config(**sharded))
        faulty = run_experiment(tempo_config(fault_plan=plan, **sharded))
        assert stuck_commands(faulty) == 0
        assert agreed_per_shard(faulty)
        # The ack-driven buffer heals the window; the MStable re-send
        # count stays a small multiple of the healthy twin's traffic.
        assert_bounded_retransmission(faulty, healthy, "MStable")
        # ...and the layer, not the last-resort promise resync, does the
        # healing: the watchdog cadence is unchanged.
        resyncs = faulty.stats.get("sent:MPromiseResync", 0.0)
        assert resyncs <= 30.0, f"MPromiseResync storm: {resyncs:.0f} sends"
        assert faulty.stats.get("retransmit_resends", 0.0) > 0.0
        assert faulty.stats.get("retransmit_acked", 0.0) > 0.0

    def test_sustained_commit_loss_converges_for_every_protocol(self):
        for protocol in ("tempo", "atlas", "epaxos"):
            kind = "MCommit" if protocol == "tempo" else "MDepCommit"
            plan = FaultPlan(
                [
                    TargetedLoss(
                        at_ms=400.0,
                        until_ms=1_400.0,
                        kind=kind,
                        probability=0.3,
                    )
                ]
            )
            healthy = run_experiment(baseline_config(protocol))
            faulty = run_experiment(baseline_config(protocol, fault_plan=plan))
            assert stuck_commands(faulty) == 0, protocol
            if protocol == "tempo":
                assert agreed_per_shard(faulty)
            assert_bounded_retransmission(faulty, healthy, kind)

    def test_expiry_budget_is_respected_against_a_black_hole(self):
        # Drop *every* MStable for most of the run: entries toward the
        # black-holed window exhaust their budget and expire rather than
        # retrying forever.
        plan = FaultPlan(
            [
                TargetedLoss(
                    at_ms=300.0,
                    until_ms=6_000.0,
                    kind="MStable",
                    probability=1.0,
                )
            ]
        )
        faulty = run_experiment(tempo_config(fault_plan=plan))
        resends = faulty.stats.get("retransmit_resends", 0.0)
        tracked = faulty.stats.get("retransmit_tracked", 0.0)
        assert tracked > 0.0
        # Budget: at most max_attempts re-sends per tracked entry.
        assert resends <= tracked * 5.0


class TestRestartCatchUp:
    def test_baseline_restart_drains_via_retransmission(self):
        # A non-coordinator replica crashes and restarts: the baselines
        # previously stranded the commits that raced the outage.  The
        # retransmit buffer re-offers them (the restarted peer's fresh
        # epoch invalidates its stale acks) and the coordinator
        # re-solicits unfinished preaccept/accept rounds.
        for protocol in ("atlas", "epaxos"):
            plan = FaultPlan(
                [
                    Crash(at_ms=800.0, site_rank=1),
                    Restart(at_ms=1_200.0, site_rank=1),
                ]
            )
            result = run_experiment(baseline_config(protocol, fault_plan=plan))
            assert stuck_commands(result) == 0, protocol
            assert result.stats.get("retransmit_tracked", 0.0) > 0.0
