"""Tests for the process base class, promise garbage collection and state
compaction."""

from __future__ import annotations

from repro.core.base import Envelope, ProcessBase
from repro.core.commands import Command, Partitioner
from repro.core.config import ProtocolConfig
from repro.core.identifiers import Dot
from repro.core.phases import Phase
from repro.core.process import TempoProcess
from repro.core.promises import Promise, PromiseTracker
from repro.simulator.inline import InlineNetwork


class Recorder(ProcessBase):
    def __init__(self, process_id, config):
        super().__init__(process_id, config)
        self.handled = []

    def submit(self, command, now=0.0):
        self.send([self.process_id], command, now)

    def on_message(self, sender, message, now):
        self.handled.append((sender, message))


class TestProcessBase:
    def _config(self):
        return ProtocolConfig(num_processes=3, faults=1)

    def test_self_addressed_messages_are_delivered_immediately(self):
        process = Recorder(0, self._config())
        process.send([0, 1], "msg", 0.0)
        assert process.handled == [(0, "msg")]
        assert process.outbox == [Envelope(0, 1, "msg")]

    def test_drain_outbox_clears_it(self):
        process = Recorder(0, self._config())
        process.send([1, 2], "msg", 0.0)
        assert len(process.drain_outbox()) == 2
        assert process.drain_outbox() == []

    def test_crashed_process_ignores_deliveries(self):
        process = Recorder(0, self._config())
        process.crash()
        process.deliver(1, "msg", 0.0)
        assert process.handled == []
        process.recover_process()
        process.deliver(1, "msg", 0.0)
        assert process.handled == [(1, "msg")]

    def test_message_counts_track_kinds(self):
        process = Recorder(0, self._config())
        process.deliver(1, "a", 0.0)
        process.deliver(1, "b", 0.0)
        assert process.message_counts["str"] == 2

    def test_leader_of_partition_skips_suspected_processes(self):
        process = Recorder(2, self._config())
        assert process.leader_of_partition() == 0
        process.set_alive_view(0, False)
        assert process.leader_of_partition() == 1

    def test_execution_listener_and_record(self):
        process = Recorder(0, self._config())
        seen = []
        process.add_execution_listener(lambda pid, dot, cmd, now: seen.append(dot))
        command = Command.write(Dot(0, 1), ["k"])
        process.record_execution(command.dot, command, 1.0)
        assert seen == [Dot(0, 1)]
        assert process.executed_dots() == [Dot(0, 1)]


class TestPromiseGarbageCollection:
    def test_acked_detached_promises_are_dropped(self):
        tracker = PromiseTracker(0)
        tracker.add_detached([1, 2, 3, 4])
        tracker.snapshot(drain=True)  # everything broadcast once
        dropped = tracker.garbage_collect(3, executed_dots=[])
        assert dropped == 3
        assert tracker.detached() == {Promise(0, 4)}

    def test_pending_promises_are_never_dropped(self):
        tracker = PromiseTracker(0)
        tracker.add_detached([1, 2])
        # Not broadcast yet: still pending, must survive collection.
        dropped = tracker.garbage_collect(5, executed_dots=[])
        assert dropped == 0
        assert tracker.has_pending()

    def test_attached_promises_of_executed_commands_are_dropped(self):
        tracker = PromiseTracker(0)
        tracker.add_attached(Dot(1, 1), 2)
        tracker.snapshot(drain=True)
        dropped = tracker.garbage_collect(5, executed_dots=[Dot(1, 1)])
        assert dropped == 1
        assert tracker.attached_for(Dot(1, 1)) == frozenset()

    def test_attached_promises_above_the_threshold_are_kept(self):
        tracker = PromiseTracker(0)
        tracker.add_attached(Dot(1, 1), 9)
        tracker.snapshot(drain=True)
        dropped = tracker.garbage_collect(5, executed_dots=[Dot(1, 1)])
        assert dropped == 0
        assert tracker.attached_for(Dot(1, 1)) == {Promise(0, 9)}


class TestTempoCompaction:
    def _cluster(self):
        config = ProtocolConfig(num_processes=3, faults=1)
        partitioner = Partitioner(1)
        # Watermark GC off: these tests exercise the epoch-1 ``compact()``
        # path, which only applies when collection has not already removed
        # the records (see tests/test_core/test_gc.py for the epoch-2 path).
        processes = [
            TempoProcess(
                process_id, config, partitioner=partitioner, watermark_gc=False
            )
            for process_id in range(3)
        ]
        return processes, InlineNetwork(processes)

    def test_compact_drops_payloads_of_executed_commands(self):
        processes, network = self._cluster()
        commands = []
        for index in range(5):
            process = processes[index % 3]
            command = process.new_command(["hot"])
            process.submit(command, 0.0)
            commands.append(command)
        network.settle(rounds=15)
        target = processes[0]
        compacted = target.compact()
        assert compacted > 0
        for command in commands:
            record = target._info[command.dot]
            assert record.phase is Phase.EXECUTE
            assert record.command is None

    def test_compact_is_idempotent(self):
        processes, network = self._cluster()
        command = processes[0].new_command(["x"])
        processes[0].submit(command, 0.0)
        network.settle()
        assert processes[0].compact() >= 1
        assert processes[0].compact() == 0

    def test_compact_never_touches_pending_commands(self):
        processes, network = self._cluster()
        command = processes[0].new_command(["x"])
        processes[0].submit(command, 0.0)
        # No delivery: the command is still pending at the coordinator.
        assert processes[0].compact() == 0
        record = processes[0]._info[command.dot]
        assert record.command is not None

    def test_duplicate_messages_after_compaction_are_still_ignored(self):
        processes, network = self._cluster()
        command = processes[0].new_command(["x"])
        processes[0].submit(command, 0.0)
        network.settle()
        for process in processes:
            process.compact()
        # Replay the original commit: phases are retained, so the replica
        # neither crashes nor re-executes.
        from repro.core.messages import MCommit

        before = len(processes[1].executed_dots())
        processes[1].deliver(0, MCommit(command.dot, timestamp=1, partition=0), 0.0)
        assert len(processes[1].executed_dots()) == before
