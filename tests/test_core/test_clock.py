"""Unit and property tests for the logical clock."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.clock import LogicalClock


class TestProposal:
    def test_proposal_is_at_least_clock_plus_one(self):
        clock = LogicalClock(value=5)
        result = clock.proposal(0)
        assert result.timestamp == 6
        assert clock.value == 6

    def test_proposal_respects_minimum(self):
        clock = LogicalClock(value=5)
        result = clock.proposal(10)
        assert result.timestamp == 10
        assert clock.value == 10

    def test_proposal_generates_detached_promises_for_skipped_values(self):
        clock = LogicalClock(value=1)
        result = clock.proposal(6)
        assert result.detached == (2, 3, 4, 5)

    def test_proposal_without_skip_has_no_detached_promises(self):
        clock = LogicalClock(value=5)
        result = clock.proposal(6)
        assert result.detached == ()

    def test_table1_example_b_and_c(self):
        # Process B at clock 6 receiving proposal 6 proposes 7 (Table 1).
        clock_b = LogicalClock(value=6)
        assert clock_b.proposal(6).timestamp == 7
        # Process C at clock 10 proposes 11.
        clock_c = LogicalClock(value=10)
        assert clock_c.proposal(6).timestamp == 11

    def test_table1_example_d_detached_promises(self):
        # Process C bumps its clock from 1 to 6, generating promises 2..5.
        clock_c = LogicalClock(value=1)
        result = clock_c.proposal(6)
        assert result.timestamp == 6
        assert result.detached == (2, 3, 4, 5)

    def test_rejects_negative_minimum(self):
        with pytest.raises(ValueError):
            LogicalClock().proposal(-1)


class TestBump:
    def test_bump_advances_clock(self):
        clock = LogicalClock(value=3)
        result = clock.bump(7)
        assert clock.value == 7
        assert result.detached == (4, 5, 6, 7)

    def test_bump_never_goes_backwards(self):
        clock = LogicalClock(value=9)
        result = clock.bump(4)
        assert clock.value == 9
        assert result.detached == ()

    def test_bump_to_current_value_is_noop(self):
        clock = LogicalClock(value=5)
        assert clock.bump(5).detached == ()

    def test_rejects_negative_timestamp(self):
        with pytest.raises(ValueError):
            LogicalClock().bump(-2)


class TestClockInvariants:
    def test_rejects_negative_initial_value(self):
        with pytest.raises(ValueError):
            LogicalClock(value=-1)

    def test_history_records_operations(self):
        clock = LogicalClock()
        clock.proposal(3)
        clock.bump(5)
        assert clock.history() == (("proposal", 3), ("bump", 5))

    @given(st.lists(st.tuples(st.booleans(), st.integers(min_value=0, max_value=1000)), max_size=50))
    def test_clock_is_monotone_and_promises_cover_all_skipped_values(self, operations):
        clock = LogicalClock()
        covered = set()
        previous = 0
        for is_proposal, argument in operations:
            if is_proposal:
                result = clock.proposal(argument)
                covered.update(result.detached)
                covered.add(result.timestamp)
            else:
                result = clock.bump(argument)
                covered.update(result.detached)
            assert clock.value >= previous
            previous = clock.value
        # Every timestamp up to the clock is either covered by a promise or
        # was never skipped (i.e. belongs to a proposal).  Together the
        # proposal timestamps and detached promises must cover 1..clock.
        assert covered == set(range(1, clock.value + 1)) or clock.value == 0

    @given(st.integers(min_value=0, max_value=100), st.integers(min_value=0, max_value=200))
    def test_proposal_always_exceeds_previous_clock(self, start, minimum):
        clock = LogicalClock(value=start)
        result = clock.proposal(minimum)
        assert result.timestamp > start
        assert result.timestamp >= minimum
