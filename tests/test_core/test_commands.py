"""Unit tests for commands, conflicts and partition mapping."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.commands import Command, KeyGenerator, KeyOp, OpKind, Partitioner
from repro.core.identifiers import Dot


class TestCommandConstruction:
    def test_write_command_touches_all_keys(self):
        command = Command.write(Dot(0, 1), ["a", "b"])
        assert command.keys == {"a", "b"}
        assert command.has_write()
        assert not command.is_read_only()

    def test_read_command_is_read_only(self):
        command = Command.read(Dot(0, 1), ["a"])
        assert command.is_read_only()
        assert not command.has_write()

    def test_rejects_empty_key_set(self):
        with pytest.raises(ValueError):
            Command(dot=Dot(0, 1), ops=())

    def test_rejects_negative_payload(self):
        with pytest.raises(ValueError):
            Command.write(Dot(0, 1), ["a"], payload_size=-1)

    def test_payload_size_defaults_to_100_bytes(self):
        assert Command.write(Dot(0, 1), ["a"]).payload_size == 100


class TestConflicts:
    def test_commands_sharing_a_key_conflict(self):
        first = Command.write(Dot(0, 1), ["x", "y"])
        second = Command.write(Dot(1, 1), ["y", "z"])
        assert first.conflicts_with(second)
        assert second.conflicts_with(first)

    def test_disjoint_commands_do_not_conflict(self):
        first = Command.write(Dot(0, 1), ["x"])
        second = Command.write(Dot(1, 1), ["y"])
        assert not first.conflicts_with(second)

    def test_two_reads_do_not_interfere(self):
        first = Command.read(Dot(0, 1), ["x"])
        second = Command.read(Dot(1, 1), ["x"])
        assert first.conflicts_with(second)
        assert not first.interferes_with(second)

    def test_read_and_write_interfere(self):
        read = Command.read(Dot(0, 1), ["x"])
        write = Command.write(Dot(1, 1), ["x"])
        assert read.interferes_with(write)
        assert write.interferes_with(read)

    def test_interference_requires_shared_key(self):
        read = Command.read(Dot(0, 1), ["x"])
        write = Command.write(Dot(1, 1), ["y"])
        assert not read.interferes_with(write)


class TestPartitioner:
    def test_single_partition_maps_everything_to_zero(self):
        partitioner = Partitioner(1)
        assert partitioner.partition_of("anything") == 0

    def test_explicit_mapping_wins(self):
        partitioner = Partitioner(4, explicit={"a": 3})
        assert partitioner.partition_of("a") == 3

    def test_hashing_is_stable(self):
        partitioner = Partitioner(8)
        assert partitioner.partition_of("key-42") == partitioner.partition_of("key-42")

    def test_partitions_within_range(self):
        partitioner = Partitioner(5)
        for index in range(200):
            assert 0 <= partitioner.partition_of(f"key-{index}") < 5

    def test_rejects_invalid_explicit_mapping(self):
        with pytest.raises(ValueError):
            Partitioner(2, explicit={"a": 7})

    def test_rejects_zero_partitions(self):
        with pytest.raises(ValueError):
            Partitioner(0)

    def test_assign_pins_a_key(self):
        partitioner = Partitioner(3)
        partitioner.assign("hot", 2)
        assert partitioner.partition_of("hot") == 2

    def test_command_partitions(self):
        partitioner = Partitioner(2, explicit={"a": 0, "b": 1})
        command = Command.write(Dot(0, 1), ["a", "b"])
        assert command.partitions(partitioner) == {0, 1}

    @given(st.text(min_size=1, max_size=20), st.integers(min_value=1, max_value=16))
    def test_every_key_lands_in_exactly_one_partition(self, key, partitions):
        partitioner = Partitioner(partitions)
        partition = partitioner.partition_of(key)
        assert 0 <= partition < partitions
        assert partitioner.partition_of(key) == partition


class TestKeyGenerator:
    def test_hot_key_when_draw_below_conflict_rate(self):
        generator = KeyGenerator(client_id=1, conflict_rate=0.5)
        assert generator.next_key(0.1) == "key-0"

    def test_private_key_when_draw_above_conflict_rate(self):
        generator = KeyGenerator(client_id=1, conflict_rate=0.5)
        key = generator.next_key(0.9)
        assert key.startswith("key-c1-")

    def test_private_keys_are_unique(self):
        generator = KeyGenerator(client_id=2, conflict_rate=0.0)
        keys = {generator.next_key(0.5) for _ in range(50)}
        assert len(keys) == 50

    def test_rejects_invalid_conflict_rate(self):
        with pytest.raises(ValueError):
            KeyGenerator(client_id=0, conflict_rate=1.5)


class TestKeyOp:
    def test_write_op(self):
        op = KeyOp("k", OpKind.WRITE, "v")
        assert op.is_write() and not op.is_read()

    def test_read_op(self):
        op = KeyOp("k", OpKind.READ)
        assert op.is_read() and not op.is_write()
