"""Unit tests for the protocol configuration and deployment helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.config import Deployment, ProtocolConfig


class TestQuorumSizes:
    @pytest.mark.parametrize(
        "r,f,fast,slow,recovery",
        [
            (3, 1, 2, 2, 2),
            (5, 1, 3, 2, 4),
            (5, 2, 4, 3, 3),
            (7, 1, 4, 2, 6),
            (7, 3, 6, 4, 4),
        ],
    )
    def test_quorum_sizes_match_paper(self, r, f, fast, slow, recovery):
        config = ProtocolConfig(num_processes=r, faults=f)
        assert config.fast_quorum_size == fast
        assert config.slow_quorum_size == slow
        assert config.recovery_quorum_size == recovery

    @pytest.mark.parametrize("r,expected", [(3, 2), (5, 3), (7, 4)])
    def test_majority(self, r, expected):
        assert ProtocolConfig(num_processes=r, faults=1).majority == expected

    def test_epaxos_and_caesar_quorums_for_five_processes(self):
        config = ProtocolConfig(num_processes=5, faults=1)
        assert config.epaxos_fast_quorum_size == 3
        assert config.caesar_fast_quorum_size == 4

    def test_rejects_f_above_flexible_paxos_bound(self):
        with pytest.raises(ValueError):
            ProtocolConfig(num_processes=5, faults=3)

    def test_rejects_zero_faults(self):
        with pytest.raises(ValueError):
            ProtocolConfig(num_processes=5, faults=0)

    @given(st.integers(min_value=3, max_value=15), st.integers(min_value=1, max_value=7))
    def test_fast_quorum_always_at_least_majority(self, r, f):
        if f > (r - 1) // 2:
            return
        config = ProtocolConfig(num_processes=r, faults=f)
        assert config.fast_quorum_size >= config.majority
        assert config.slow_quorum_size <= config.recovery_quorum_size


class TestProcessLayout:
    def test_processes_of_partition(self):
        config = ProtocolConfig(num_processes=3, faults=1, num_partitions=2)
        assert config.processes_of_partition(0) == [0, 1, 2]
        assert config.processes_of_partition(1) == [3, 4, 5]

    def test_partition_of_process_inverse(self):
        config = ProtocolConfig(num_processes=3, faults=1, num_partitions=4)
        for partition in range(4):
            for process in config.processes_of_partition(partition):
                assert config.partition_of_process(process) == partition

    def test_rank_and_site(self):
        config = ProtocolConfig(num_processes=3, faults=1, num_partitions=2)
        assert config.rank_in_partition(4) == 1
        assert config.site_of_process(4) == 1

    def test_colocated_processes(self):
        config = ProtocolConfig(num_processes=3, faults=1, num_partitions=3)
        assert config.colocated_processes(1) == [1, 4, 7]

    def test_total_processes(self):
        config = ProtocolConfig(num_processes=5, faults=2, num_partitions=6)
        assert config.total_processes() == 30

    def test_out_of_range_lookups_raise(self):
        config = ProtocolConfig(num_processes=3, faults=1)
        with pytest.raises(ValueError):
            config.processes_of_partition(1)
        with pytest.raises(ValueError):
            config.partition_of_process(3)


class TestDeployment:
    def test_default_sites_are_the_paper_regions(self):
        deployment = Deployment(ProtocolConfig(num_processes=5, faults=1))
        assert deployment.sites() == [
            "ireland",
            "n-california",
            "singapore",
            "canada",
            "sao-paulo",
        ]

    def test_site_of_process(self):
        deployment = Deployment(ProtocolConfig(num_processes=3, faults=1, num_partitions=2))
        assert deployment.site_of(0) == "ireland"
        assert deployment.site_of(4) == "n-california"

    def test_processes_at_site(self):
        deployment = Deployment(ProtocolConfig(num_processes=3, faults=1, num_partitions=2))
        assert deployment.processes_at_site("ireland") == [0, 3]

    def test_unknown_site_raises(self):
        deployment = Deployment(ProtocolConfig(num_processes=3, faults=1))
        with pytest.raises(KeyError):
            deployment.processes_at_site("mars")

    def test_requires_enough_site_names(self):
        with pytest.raises(ValueError):
            Deployment(ProtocolConfig(num_processes=3, faults=1), site_names=("a", "b"))

    def test_latency_table_covers_all_sites(self):
        deployment = Deployment(ProtocolConfig(num_processes=5, faults=1))
        table = deployment.site_latency_table()
        for site in deployment.sites():
            assert site in table
