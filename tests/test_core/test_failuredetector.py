"""Tests for the failure detector and leader election oracles (§B.1)."""

from __future__ import annotations

import pytest

from repro.core.config import ProtocolConfig
from repro.core.failuredetector import (
    HeartbeatFailureDetector,
    OmegaLeaderElection,
    PartitionCoveringDetector,
    wire_failure_detector,
)
from repro.core.process import TempoProcess
from repro.core.commands import Partitioner


class TestHeartbeatFailureDetector:
    def test_recent_heartbeat_is_not_suspected(self):
        detector = HeartbeatFailureDetector(timeout_ms=100.0)
        detector.heartbeat(1, 50.0)
        assert not detector.is_suspected(1, 100.0)

    def test_silence_beyond_timeout_is_suspected(self):
        detector = HeartbeatFailureDetector(timeout_ms=100.0)
        detector.heartbeat(1, 0.0)
        assert detector.is_suspected(1, 150.0)

    def test_unknown_process_gets_a_grace_period(self):
        detector = HeartbeatFailureDetector(timeout_ms=100.0)
        assert not detector.is_suspected(7, 50.0)
        assert detector.is_suspected(7, 150.0)

    def test_forced_down_overrides_heartbeats(self):
        detector = HeartbeatFailureDetector(timeout_ms=100.0)
        detector.heartbeat(1, 10.0)
        detector.force_down(1)
        assert detector.is_suspected(1, 20.0)
        detector.force_up(1)
        assert not detector.is_suspected(1, 20.0)

    def test_suspicion_clears_after_new_heartbeat(self):
        detector = HeartbeatFailureDetector(timeout_ms=100.0)
        detector.heartbeat(1, 0.0)
        assert detector.is_suspected(1, 200.0)
        detector.heartbeat(1, 210.0)
        assert not detector.is_suspected(1, 250.0)

    def test_old_heartbeats_do_not_go_backwards(self):
        detector = HeartbeatFailureDetector(timeout_ms=100.0)
        detector.heartbeat(1, 100.0)
        detector.heartbeat(1, 50.0)
        assert not detector.is_suspected(1, 190.0)

    def test_alive_filters_suspected_processes(self):
        detector = HeartbeatFailureDetector(timeout_ms=100.0)
        detector.heartbeat(0, 190.0)
        detector.heartbeat(1, 10.0)
        assert detector.alive([0, 1, 2], 200.0) == [0]


class TestOmegaLeaderElection:
    def test_lowest_unsuspected_member_is_leader(self):
        config = ProtocolConfig(num_processes=3, faults=1)
        omega = OmegaLeaderElection(config, 0)
        for process in range(3):
            omega.detector.heartbeat(process, 0.0)
        assert omega.leader(50.0) == 0
        omega.detector.force_down(0)
        assert omega.leader(50.0) == 1
        assert omega.is_leader(1, 50.0)

    def test_no_leader_when_all_suspected(self):
        config = ProtocolConfig(num_processes=3, faults=1)
        omega = OmegaLeaderElection(config, 0)
        for process in range(3):
            omega.detector.force_down(process)
        assert omega.leader(0.0) is None

    def test_second_partition_members(self):
        config = ProtocolConfig(num_processes=3, faults=1, num_partitions=2)
        omega = OmegaLeaderElection(config, 1)
        for process in omega.members():
            omega.detector.heartbeat(process, 0.0)
        assert omega.members() == [3, 4, 5]
        assert omega.leader(10.0) == 3


class TestPartitionCoveringDetector:
    def test_prefers_the_colocated_replica(self):
        config = ProtocolConfig(num_processes=3, faults=1, num_partitions=2)
        detector = PartitionCoveringDetector(config)
        for process in range(6):
            detector.detector.heartbeat(process, 0.0)
        cover = detector.cover(1, [0, 1], 10.0)
        assert cover == {0: 1, 1: 4}

    def test_falls_back_to_closest_alive_replica(self):
        config = ProtocolConfig(num_processes=3, faults=1, num_partitions=2)
        detector = PartitionCoveringDetector(config)
        for process in range(6):
            detector.detector.heartbeat(process, 0.0)
        detector.detector.force_down(4)
        cover = detector.cover(1, [1], 10.0)
        assert cover[1] in (3, 5)

    def test_raises_when_a_partition_is_fully_down(self):
        config = ProtocolConfig(num_processes=3, faults=1, num_partitions=2)
        detector = PartitionCoveringDetector(config)
        for process in (3, 4, 5):
            detector.detector.force_down(process)
        with pytest.raises(RuntimeError):
            detector.cover(0, [1], 10.0)


class TestWiring:
    def test_wire_failure_detector_updates_alive_views(self):
        config = ProtocolConfig(num_processes=3, faults=1)
        partitioner = Partitioner(1)
        processes = [
            TempoProcess(process_id, config, partitioner=partitioner)
            for process_id in range(3)
        ]
        detector = HeartbeatFailureDetector(timeout_ms=100.0)
        detector.heartbeat(0, 500.0)
        detector.heartbeat(1, 500.0)
        detector.heartbeat(2, 100.0)  # stale -> suspected at t=500
        wire_failure_detector(processes, detector, 500.0)
        assert processes[0].believes_alive(1)
        assert not processes[0].believes_alive(2)
        assert processes[1].leader_of_partition() == 0
