"""Epoch-2 watermark GC: the tracker, and collection end to end.

Covers the three layers of the globally-executed watermark scheme
(:mod:`repro.core.gc`):

1. ``GcTracker`` unit semantics — contiguous frontier, dirty-gated
   announcements, monotone clock merge, minimum-over-peers watermark;
2. Tempo integration — executed records (and their satellite bookkeeping)
   are actually dropped once globally executed, late duplicates are
   suppressed by the O(1) predicate, and a crashed peer stalls collection
   instead of unsafely excluding it from the minimum;
3. dependency-protocol integration (Atlas, Caesar) — per-key archives and
   executed records drain, and follow-up commands still commit, execute and
   converge after their dependency history has been collected.
"""

from __future__ import annotations

from repro.core.commands import Partitioner
from repro.core.config import ProtocolConfig
from repro.core.gc import GcTracker
from repro.core.identifiers import Dot
from repro.core.messages import MCommit, MPropose
from repro.core.phases import Phase
from repro.kvstore.store import KeyValueStore
from repro.protocols.atlas import AtlasProcess
from repro.protocols.caesar import CaesarProcess
from repro.simulator.inline import InlineNetwork

from tests.conftest import TempoCluster


class TestGcTracker:
    def make(self, process_id: int = 0, members=(0, 1, 2)) -> GcTracker:
        return GcTracker(process_id, members)

    def test_in_order_executions_advance_the_frontier(self):
        tracker = self.make()
        for sequence in (1, 2, 3):
            tracker.record_executed(Dot(1, sequence))
        assert tracker.local_frontier(1) == 3

    def test_out_of_order_executions_fill_gaps(self):
        tracker = self.make()
        tracker.record_executed(Dot(1, 2))
        tracker.record_executed(Dot(1, 4))
        assert tracker.local_frontier(1) == 0
        tracker.record_executed(Dot(1, 1))
        assert tracker.local_frontier(1) == 2
        tracker.record_executed(Dot(1, 3))
        assert tracker.local_frontier(1) == 4
        assert tracker.footprint()["pending_out_of_order"] == 0

    def test_foreign_sources_are_ignored(self):
        tracker = self.make(members=(0, 1, 2))
        tracker.record_executed(Dot(7, 1))
        assert tracker.local_frontier(7) == 0

    def test_announcement_is_dirty_gated(self):
        tracker = self.make()
        assert tracker.announcement() is None
        tracker.record_executed(Dot(0, 1))
        assert tracker.announcement() == {0: 1}
        # Nothing moved since: no re-announcement.
        assert tracker.announcement() is None

    def test_watermark_is_minimum_over_all_peers(self):
        tracker = self.make(process_id=0)
        for sequence in (1, 2, 3):
            tracker.record_executed(Dot(0, sequence))
        tracker.ingest(1, {0: 2})
        assert tracker.advance() == []  # peer 2 still at 0
        tracker.ingest(2, {0: 5})
        assert tracker.advance() == [(0, 1, 2)]  # min(3, 2, 5) = 2
        assert tracker.watermark_of(0) == 2
        assert tracker.collected(Dot(0, 2))
        assert not tracker.collected(Dot(0, 3))

    def test_ingest_merge_is_monotone(self):
        tracker = self.make(process_id=0)
        tracker.ingest(1, {0: 4})
        tracker.ingest(1, {0: 2})  # stale announcement must not regress
        tracker.record_executed(Dot(0, 1))
        tracker.ingest(2, {0: 9})
        assert tracker.advance() == [(0, 1, 1)]

    def test_advance_is_incremental_and_exact(self):
        """Raising a non-minimum entry never recomputes or advances; raising
        the minimum one does (the stale-set optimisation is behaviour
        preserving)."""
        tracker = self.make(process_id=0)
        tracker.record_executed(Dot(0, 1))
        tracker.ingest(1, {0: 1})
        tracker.ingest(2, {0: 1})
        assert tracker.advance() == [(0, 1, 1)]
        # Peer 1 races ahead; the minimum (still 1) is unchanged.
        tracker.ingest(1, {0: 10})
        assert tracker.advance() == []
        tracker.record_executed(Dot(0, 2))
        tracker.ingest(2, {0: 2})
        assert tracker.advance() == [(0, 2, 2)]
        assert tracker.collected_count == 2


def settle_gc(cluster, rounds: int = 80) -> None:
    """Settle long enough for at least two ``gc_interval`` windows (the
    default is 25 ms and inline settle ticks advance 1 ms per round)."""
    cluster.settle(rounds=rounds)


class TestTempoCollection:
    def test_executed_records_are_collected(self):
        cluster = TempoCluster(num_processes=3, faults=1, watermark_gc=True)
        commands = [cluster.submit(index % 3, ["hot"]) for index in range(6)]
        settle_gc(cluster)
        for process in cluster.processes:
            for command in commands:
                dot = command.dot
                assert dot in process.executed_dots()  # witness is kept
                assert process.gc.collected(dot)
                assert dot not in process._info
                assert process.phase_of(dot) is Phase.EXECUTE
            assert not process._buffered_attached
            assert not process._commit_requested

    def test_late_duplicates_are_suppressed(self):
        cluster = TempoCluster(num_processes=3, faults=1, watermark_gc=True)
        command = cluster.submit(0, ["k"])
        settle_gc(cluster)
        target = cluster.process(1)
        assert command.dot not in target._info
        timestamp = cluster.process(0).clock.value
        # Re-delivered propose and commit for the collected dot must not
        # resurrect a record or emit protocol traffic.
        target.on_message(
            0, MPropose(command.dot, command, {0: (0, 1)}, 1), 999.0
        )
        target.on_message(
            0,
            MCommit(command.dot, max(timestamp, 1), attached=frozenset()),
            999.0,
        )
        assert command.dot not in target._info
        assert not target.outbox

    def test_crashed_peer_stalls_collection(self):
        """A crashed peer stays in the minimum: survivors keep every record
        (GC stalls) rather than dropping state the peer still needs."""
        cluster = TempoCluster(num_processes=3, faults=1, watermark_gc=True)
        victim = cluster.process(2)
        victim.crash()
        victim.outbox.clear()
        for process in cluster.processes:
            process.set_alive_view(2, False)
        commands = [cluster.submit(index % 2, ["hot"]) for index in range(4)]
        settle_gc(cluster)
        for process in cluster.processes[:2]:
            for command in commands:
                assert command.dot in process.executed_dots()
                assert not process.gc.collected(command.dot)
                assert command.dot in process._info

    def test_convergence_unaffected_by_collection(self):
        cluster = TempoCluster(num_processes=3, faults=1, watermark_gc=True)
        commands = [cluster.submit(index % 3, ["hot"]) for index in range(8)]
        settle_gc(cluster)
        dots = {command.dot for command in commands}
        orders = {
            tuple(dot for dot in process.executed_dots() if dot in dots)
            for process in cluster.processes
        }
        assert len(orders) == 1
        snapshots = {
            tuple(sorted(store.snapshot().items()))
            for store in cluster.stores.values()
        }
        assert len(snapshots) == 1


def build_dep_cluster(factory, num_processes: int = 3, **kwargs):
    config = ProtocolConfig(num_processes=num_processes, faults=1)
    partitioner = Partitioner(1)
    stores = {}
    processes = []
    for process_id in range(num_processes):
        store = KeyValueStore()
        stores[process_id] = store
        processes.append(
            factory(
                process_id,
                config,
                partitioner=partitioner,
                apply_fn=store.apply,
                **kwargs,
            )
        )
    return processes, stores, InlineNetwork(processes)


class TestDependencyCollection:
    def test_atlas_archives_and_records_drain(self):
        processes, stores, network = build_dep_cluster(AtlasProcess)
        commands = []
        for index in range(6):
            process = processes[index % 3]
            command = process.new_command(["hot"])
            process.submit(command, 0.0)
            commands.append(command)
        network.settle(rounds=80)
        for process in processes:
            for command in commands:
                assert process.status_of(command.dot) == "execute"
                assert command.dot not in process._info
            footprint = process.conflict_footprint()
            assert footprint["live"] == 0, footprint
            assert footprint["archived"] == 0, footprint
            assert process.gc.collected_count >= len(commands)

    def test_atlas_follow_up_after_collection_converges(self):
        processes, stores, network = build_dep_cluster(AtlasProcess)
        for index in range(4):
            process = processes[index % 3]
            process.submit(process.new_command(["hot"]), 0.0)
        network.settle(rounds=80)
        follow_up = processes[0].new_command(["hot"])
        processes[0].submit(follow_up, 100.0)
        network.settle(now=100.0, rounds=80)
        for process in processes:
            assert process.status_of(follow_up.dot) == "execute"
        snapshots = {
            tuple(sorted(store.snapshot().items())) for store in stores.values()
        }
        assert len(snapshots) == 1

    def test_caesar_archives_and_records_drain(self):
        processes, stores, network = build_dep_cluster(CaesarProcess)
        commands = []
        for index in range(6):
            process = processes[index % 3]
            command = process.new_command(["hot"])
            process.submit(command, 0.0)
            commands.append(command)
        network.settle(rounds=80)
        for process in processes:
            for command in commands:
                assert process.status_of(command.dot) == "execute"
                assert command.dot not in process._info
            archived = sum(
                len(bucket) for bucket in process._committed_per_key.values()
            )
            assert archived == 0, process._committed_per_key
            assert not process._executed_dots
            assert process.gc.collected_count >= len(commands)

    def test_caesar_follow_up_after_collection_converges(self):
        processes, stores, network = build_dep_cluster(CaesarProcess)
        for index in range(4):
            process = processes[index % 3]
            process.submit(process.new_command(["hot"]), 0.0)
        network.settle(rounds=80)
        follow_up = processes[0].new_command(["hot"])
        processes[0].submit(follow_up, 100.0)
        network.settle(now=100.0, rounds=80)
        for process in processes:
            assert process.status_of(follow_up.dot) == "execute"
        snapshots = {
            tuple(sorted(store.snapshot().items())) for store in stores.values()
        }
        assert len(snapshots) == 1

    def test_gc_disabled_preserves_epoch1_archives(self):
        processes, stores, network = build_dep_cluster(
            AtlasProcess, watermark_gc=False
        )
        commands = []
        for index in range(4):
            process = processes[index % 3]
            command = process.new_command(["hot"])
            process.submit(command, 0.0)
            commands.append(command)
        network.settle(rounds=80)
        for process in processes:
            assert process.gc is None
            footprint = process.conflict_footprint()
            assert footprint["archived"] >= len(commands)
