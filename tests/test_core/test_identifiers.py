"""Unit tests for command identifiers (dots)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.identifiers import Dot, DotGenerator, intern_dot


class TestDot:
    def test_ordering_is_lexicographic(self):
        assert Dot(0, 1) < Dot(0, 2) < Dot(1, 1) < Dot(1, 5)

    def test_equality_and_hash(self):
        assert Dot(2, 7) == Dot(2, 7)
        assert hash(Dot(2, 7)) == hash(Dot(2, 7))
        assert Dot(2, 7) != Dot(2, 8)

    def test_initial_coordinator_is_source(self):
        assert Dot(3, 9).initial_coordinator() == 3

    def test_rejects_non_positive_sequence(self):
        with pytest.raises(ValueError):
            Dot(0, 0)
        with pytest.raises(ValueError):
            Dot(0, -1)

    def test_rejects_negative_source(self):
        with pytest.raises(ValueError):
            Dot(-1, 1)

    def test_str_is_compact(self):
        assert str(Dot(1, 2)) == "1.2"


class TestDotGenerator:
    def test_sequences_start_at_one(self):
        generator = DotGenerator(source=4)
        assert generator.next_id() == Dot(4, 1)

    def test_generates_unique_increasing_ids(self):
        generator = DotGenerator(source=0)
        dots = [generator.next_id() for _ in range(100)]
        assert len(set(dots)) == 100
        assert dots == sorted(dots)

    def test_peek_does_not_consume(self):
        generator = DotGenerator(source=1)
        assert generator.peek() == Dot(1, 1)
        assert generator.peek() == Dot(1, 1)
        assert generator.next_id() == Dot(1, 1)
        assert generator.peek() == Dot(1, 2)

    def test_generated_counts_issued_ids(self):
        generator = DotGenerator(source=2)
        assert generator.generated() == 0
        for _ in range(5):
            generator.next_id()
        assert generator.generated() == 5

    def test_iteration_yields_fresh_ids(self):
        generator = DotGenerator(source=0)
        iterator = iter(generator)
        first, second = next(iterator), next(iterator)
        assert first != second

    @given(st.integers(min_value=0, max_value=50), st.integers(min_value=1, max_value=200))
    def test_generators_from_different_sources_never_collide(self, source, count):
        left = DotGenerator(source=source)
        right = DotGenerator(source=source + 1)
        left_dots = {left.next_id() for _ in range(count)}
        right_dots = {right.next_id() for _ in range(count)}
        assert not left_dots & right_dots


class TestInterning:
    def test_peek_and_next_id_share_one_instance(self):
        generator = DotGenerator(source=7)
        peeked = generator.peek()
        assert generator.next_id() is peeked

    def test_two_generators_of_one_source_share_instances(self):
        first = DotGenerator(source=9)
        second = DotGenerator(source=9)
        assert first.next_id() is second.next_id()

    def test_intern_dot_returns_canonical_instance(self):
        generator = DotGenerator(source=11)
        minted = generator.next_id()
        assert intern_dot(11, 1) is minted
        # Equal-but-uninterned construction still compares equal.
        assert Dot(11, 1) == minted

    def test_sparse_lookup_does_not_widen_the_table(self):
        far_ahead = intern_dot(13, 1_000_000)
        assert far_ahead == Dot(13, 1_000_000)
        # The dense part of the table is unaffected.
        assert intern_dot(13, 1) == Dot(13, 1)

    def test_interned_dots_validate_like_plain_dots(self):
        with pytest.raises(ValueError):
            intern_dot(0, 0)
        with pytest.raises(ValueError):
            intern_dot(-1, 1)

    def test_hash_is_cached_and_stable(self):
        dot = Dot(3, 21)
        assert hash(dot) == 21 * 64 + 3
        assert hash(dot) == hash(intern_dot(3, 21))

    def test_equality_and_ordering_semantics_survive_interning(self):
        assert intern_dot(0, 2) > intern_dot(0, 1)
        assert intern_dot(1, 1) > intern_dot(0, 5)
        assert intern_dot(2, 2) != intern_dot(2, 3)
