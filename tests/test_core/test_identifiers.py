"""Unit tests for command identifiers (dots)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.identifiers import Dot, DotGenerator


class TestDot:
    def test_ordering_is_lexicographic(self):
        assert Dot(0, 1) < Dot(0, 2) < Dot(1, 1) < Dot(1, 5)

    def test_equality_and_hash(self):
        assert Dot(2, 7) == Dot(2, 7)
        assert hash(Dot(2, 7)) == hash(Dot(2, 7))
        assert Dot(2, 7) != Dot(2, 8)

    def test_initial_coordinator_is_source(self):
        assert Dot(3, 9).initial_coordinator() == 3

    def test_rejects_non_positive_sequence(self):
        with pytest.raises(ValueError):
            Dot(0, 0)
        with pytest.raises(ValueError):
            Dot(0, -1)

    def test_rejects_negative_source(self):
        with pytest.raises(ValueError):
            Dot(-1, 1)

    def test_str_is_compact(self):
        assert str(Dot(1, 2)) == "1.2"


class TestDotGenerator:
    def test_sequences_start_at_one(self):
        generator = DotGenerator(source=4)
        assert generator.next_id() == Dot(4, 1)

    def test_generates_unique_increasing_ids(self):
        generator = DotGenerator(source=0)
        dots = [generator.next_id() for _ in range(100)]
        assert len(set(dots)) == 100
        assert dots == sorted(dots)

    def test_peek_does_not_consume(self):
        generator = DotGenerator(source=1)
        assert generator.peek() == Dot(1, 1)
        assert generator.peek() == Dot(1, 1)
        assert generator.next_id() == Dot(1, 1)
        assert generator.peek() == Dot(1, 2)

    def test_generated_counts_issued_ids(self):
        generator = DotGenerator(source=2)
        assert generator.generated() == 0
        for _ in range(5):
            generator.next_id()
        assert generator.generated() == 5

    def test_iteration_yields_fresh_ids(self):
        generator = DotGenerator(source=0)
        iterator = iter(generator)
        first, second = next(iterator), next(iterator)
        assert first != second

    @given(st.integers(min_value=0, max_value=50), st.integers(min_value=1, max_value=200))
    def test_generators_from_different_sources_never_collide(self, source, count):
        left = DotGenerator(source=source)
        right = DotGenerator(source=source + 1)
        left_dots = {left.next_id() for _ in range(count)}
        right_dots = {right.next_id() for _ in range(count)}
        assert not left_dots & right_dots
