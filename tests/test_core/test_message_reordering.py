"""Regression tests for out-of-order and duplicate message delivery.

The simulator delivers messages with heterogeneous latencies, so handlers
must tolerate commits arriving before payloads, duplicated commits,
promises referring to unknown commands, and stale recovery traffic.
"""

from __future__ import annotations

from repro.core.commands import Partitioner
from repro.core.config import ProtocolConfig
from repro.core.messages import (
    MCommit,
    MCommitRequest,
    MPayload,
    MPromises,
    MPropose,
    MStable,
)
from repro.core.phases import Phase
from repro.core.process import TempoProcess
from repro.core.promises import Promise
from repro.core.identifiers import Dot
from repro.simulator.inline import InlineNetwork


def build(r=3):
    config = ProtocolConfig(num_processes=r, faults=1)
    partitioner = Partitioner(1)
    processes = [
        TempoProcess(process_id, config, partitioner=partitioner)
        for process_id in range(r)
    ]
    return processes, InlineNetwork(processes)


class TestOutOfOrderDelivery:
    def test_commit_before_payload_is_buffered_until_the_payload_arrives(self):
        processes, _ = build()
        target = processes[2]
        coordinator = processes[0]
        command = coordinator.new_command(["x"])
        quorums = {0: tuple(coordinator.quorum_system.fast_quorum(0, 0))}
        # Commit arrives first (e.g. reordered by the network).
        target.deliver(0, MCommit(command.dot, timestamp=7, partition=0), 0.0)
        assert target.committed_timestamp(command.dot) is None
        # Payload arrives later: the buffered commit completes immediately.
        target.deliver(0, MPayload(command.dot, command, quorums), 0.0)
        assert target.committed_timestamp(command.dot) == 7

    def test_duplicate_commit_does_not_change_the_timestamp(self):
        processes, network = build()
        command = processes[0].new_command(["x"])
        processes[0].submit(command, 0.0)
        network.settle()
        first = processes[1].committed_timestamp(command.dot)
        processes[1].deliver(0, MCommit(command.dot, timestamp=99, partition=0), 0.0)
        assert processes[1].committed_timestamp(command.dot) == first

    def test_stable_before_commit_is_remembered(self):
        processes, _ = build()
        target = processes[1]
        coordinator = processes[0]
        command = coordinator.new_command(["x"])
        quorums = {0: tuple(coordinator.quorum_system.fast_quorum(0, 0))}
        target.deliver(2, MStable(command.dot, partition=0), 0.0)
        assert command.dot not in target.executed_dots()
        # Later payload + commit + local stability complete the execution.
        target.deliver(0, MPayload(command.dot, command, quorums), 0.0)
        target.deliver(0, MCommit(command.dot, timestamp=1, partition=0,
                                  attached=frozenset({Promise(0, 1), Promise(2, 1)})), 0.0)
        target.stability_check(0.0)
        assert command.dot in target.executed_dots()

    def test_propose_after_recovery_is_rejected(self):
        processes, _ = build()
        target = processes[1]
        coordinator = processes[0]
        command = coordinator.new_command(["x"])
        quorums = {0: tuple(coordinator.quorum_system.fast_quorum(0, 0))}
        target.deliver(0, MPayload(command.dot, command, quorums), 0.0)
        from repro.core.messages import MRec

        target.deliver(2, MRec(command.dot, 10), 0.0)
        assert target.phase_of(command.dot) is Phase.RECOVER_R
        clock_before = target.clock.value
        target.deliver(0, MPropose(command.dot, command, quorums, 1), 0.0)
        # The MPropose precondition (phase = start) fails: no new proposal.
        assert target.clock.value == clock_before
        assert target.phase_of(command.dot) is Phase.RECOVER_R


class TestUnknownCommands:
    def test_attached_promises_for_unknown_commands_trigger_a_commit_request(self):
        processes, _ = build()
        target = processes[1]
        ghost = Dot(0, 42)
        message = MPromises(
            Dot(2, 1),
            detached={},
            attached={ghost: frozenset({Promise(2, 5)})},
        )
        target.deliver(2, message, 0.0)
        requests = [
            envelope
            for envelope in target.drain_outbox()
            if isinstance(envelope.message, MCommitRequest)
        ]
        assert requests and requests[0].message.dot == ghost

    def test_commit_request_for_unknown_command_is_ignored(self):
        processes, _ = build()
        target = processes[1]
        target.deliver(2, MCommitRequest(Dot(0, 99)), 0.0)
        assert target.drain_outbox() == []

    def test_commit_request_is_sent_only_once_per_identifier(self):
        processes, _ = build()
        target = processes[1]
        ghost = Dot(0, 43)
        message = MPromises(
            Dot(2, 1), attached={ghost: frozenset({Promise(2, 6)})}
        )
        target.deliver(2, message, 0.0)
        target.drain_outbox()
        target.deliver(2, message, 0.0)
        repeats = [
            envelope
            for envelope in target.drain_outbox()
            if isinstance(envelope.message, MCommitRequest)
        ]
        assert repeats == []

    def test_detached_promises_from_unknown_processes_are_harmless(self):
        processes, _ = build()
        target = processes[0]
        message = MPromises(Dot(2, 1), detached={2: ((1, 2),)})
        target.deliver(2, message, 0.0)
        assert target.promises.highest_contiguous_promise(2) == 2


class TestAckBroadcastEquivalence:
    def test_same_timestamps_with_and_without_the_optimisation(self):
        """The ack-broadcast optimisation must not change decisions."""
        def run(ack_broadcast):
            config = ProtocolConfig(num_processes=5, faults=2)
            partitioner = Partitioner(1)
            processes = [
                TempoProcess(
                    process_id, config, partitioner=partitioner,
                    ack_broadcast=ack_broadcast,
                )
                for process_id in range(5)
            ]
            network = InlineNetwork(processes)
            commands = []
            for index in range(8):
                process = processes[index % 5]
                command = process.new_command(["hot"])
                process.submit(command, 0.0)
                commands.append(command)
                network.step(0.0)
            network.settle(rounds=25)
            return {
                command.dot: processes[0].committed_timestamp(command.dot)
                for command in commands
            }

        with_opt = run(True)
        without_opt = run(False)
        assert with_opt == without_opt
