"""Unit tests for protocol messages (sizes and structure)."""

from __future__ import annotations

import pytest

from repro.core.commands import Command
from repro.core.identifiers import Dot
from repro.core.messages import (
    TEMPO_MESSAGE_TYPES,
    ClientReply,
    ClientSubmit,
    MBump,
    MCommit,
    MCommitRequest,
    MConsensus,
    MConsensusAck,
    MPayload,
    MPromises,
    MPropose,
    MProposeAck,
    MRec,
    MRecAck,
    MRecNAck,
    MStable,
    MSubmit,
)
from repro.core.phases import Phase
from repro.core.promises import Promise


def _command(payload=100):
    return Command.write(Dot(0, 1), ["k"], payload_size=payload)


class TestSizes:
    def test_payload_bearing_messages_scale_with_payload(self):
        small = MPropose(Dot(0, 1), _command(100), {0: (0, 1)}, 1)
        large = MPropose(Dot(0, 1), _command(4096), {0: (0, 1)}, 1)
        # Epoch-2: sizes are exact frame lengths, so the delta includes the
        # wider payload-length varint and frame-length prefix, not just the
        # payload bytes themselves.
        assert large.size_bytes() - small.size_bytes() >= 4096 - 100
        assert (
            large.size_bytes() - small.size_bytes()
            == large.encoded_size() - small.encoded_size()
        )

    def test_commit_does_not_carry_the_payload(self):
        commit = MCommit(Dot(0, 1), timestamp=4)
        propose = MPropose(Dot(0, 1), _command(4096), {0: (0, 1)}, 1)
        assert commit.size_bytes() < propose.size_bytes()

    def test_promises_size_scales_with_promise_count(self):
        empty = MPromises(Dot(0, 1))
        loaded = MPromises(Dot(0, 1), detached={0: ((1, 10),)})
        assert loaded.size_bytes() > empty.size_bytes()

    def test_range_encoded_detached_charges_per_wire_span(self):
        """Epoch-2: ranges are charged as the codec encodes them — per
        ``(lo, hi)`` span, not per logical promise — so a fragmented set of
        the same promises genuinely costs more bytes."""
        as_range = MPromises(Dot(0, 1), detached={0: ((1, 10),)})
        split = MPromises(Dot(0, 1), detached={0: ((1, 4), (6, 11))})
        assert as_range.size_bytes() < split.size_bytes()
        assert as_range.size_bytes() == as_range.encoded_size()
        assert split.size_bytes() == split.encoded_size()
        commit_range = MCommit(Dot(0, 1), 3, detached={1: ((2, 5),)})
        commit_base = MCommit(Dot(0, 1), 3)
        assert (
            commit_range.size_bytes() - commit_base.size_bytes()
            == commit_range.encoded_size() - commit_base.encoded_size()
        )

    def test_all_message_types_report_positive_sizes(self):
        samples = [
            MSubmit(Dot(0, 1), _command(), {0: (0, 1)}),
            MPropose(Dot(0, 1), _command(), {0: (0, 1)}, 3),
            MProposeAck(Dot(0, 1), 3),
            MPayload(Dot(0, 1), _command(), {0: (0, 1)}),
            MCommit(Dot(0, 1), 3),
            MConsensus(Dot(0, 1), 3, 1),
            MConsensusAck(Dot(0, 1), 1),
            MBump(Dot(0, 1), 3),
            MPromises(Dot(0, 1)),
            MStable(Dot(0, 1), 0),
            MRec(Dot(0, 1), 7),
            MRecAck(Dot(0, 1), 3, Phase.PROPOSE, 0, 7),
            MRecNAck(Dot(0, 1), 7),
            MCommitRequest(Dot(0, 1)),
            ClientSubmit(Dot(0, 1), _command()),
            ClientReply(Dot(0, 1)),
        ]
        for message in samples:
            assert message.size_bytes() > 0

    def test_registry_lists_every_tempo_message(self):
        names = {cls.__name__ for cls in TEMPO_MESSAGE_TYPES}
        assert names == {
            "MSubmit", "MPropose", "MProposeAck", "MPayload", "MCommit",
            "MConsensus", "MConsensusAck", "MBump", "MPromises", "MStable",
            "MRec", "MRecAck", "MRecNAck", "MCommitRequest",
            "MPromiseResync", "MExecutedClock", "MDeliveryAck",
            "MStableRequest",
        }


class TestStructure:
    def test_kind_is_class_name(self):
        assert MCommit(Dot(0, 1), 1).kind == "MCommit"

    def test_messages_are_immutable(self):
        message = MCommit(Dot(0, 1), 1)
        with pytest.raises(Exception):
            message.timestamp = 2  # type: ignore[misc]

    def test_propose_ack_carries_piggybacked_promises(self):
        from repro.core.promises import range_wire_count, range_wire_promises

        ack = MProposeAck(
            Dot(0, 1),
            timestamp=5,
            attached=frozenset({Promise(1, 5)}),
            detached={1: ((3, 4),)},
        )
        assert Promise(1, 5) in ack.attached
        assert range_wire_count(ack.detached) == 2
        assert range_wire_promises(ack.detached) == {Promise(1, 3), Promise(1, 4)}

    def test_rec_ack_carries_phase_and_accepted_ballot(self):
        ack = MRecAck(Dot(0, 1), timestamp=4, phase=Phase.RECOVER_R, accepted_ballot=0, ballot=8)
        assert ack.phase is Phase.RECOVER_R
        assert ack.accepted_ballot == 0


class TestExactSizes:
    """Epoch-2: no kind declares ``FIXED_SIZE_BYTES`` any more — varint
    encoding makes every size instance-dependent — and ``size_bytes()`` must
    equal the measured encoded frame length for every kind."""

    def _instances(self):
        from repro.protocols.dep_messages import MAccepted, MDepAcceptAck

        dot = Dot(0, 1)
        return [
            MConsensus(dot, 5, 2),
            MConsensusAck(dot, 2),
            MBump(dot, 9),
            MStable(dot, 1),
            MRec(dot, 3),
            MRecAck(dot, 5, Phase.PROPOSE, 1, 3),
            MRecNAck(dot, 4),
            MCommitRequest(dot),
            ClientReply(dot, result=None),
            MDepAcceptAck(dot, 2),
            MAccepted(dot, 7, 1),
        ]

    def test_no_kind_declares_a_fixed_size(self):
        from repro.core.messages import TEMPO_MESSAGE_TYPES
        from repro.protocols.dep_messages import DEP_MESSAGE_TYPES

        for message_type in TEMPO_MESSAGE_TYPES + DEP_MESSAGE_TYPES:
            assert getattr(message_type, "FIXED_SIZE_BYTES", None) is None, (
                message_type.__name__
            )

    def test_size_bytes_equals_encoded_size(self):
        for message in self._instances():
            assert message.size_bytes() == message.encoded_size(), (
                type(message).__name__
            )
