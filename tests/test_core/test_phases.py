"""Unit tests for command phases and their transitions (Figure 1)."""

from __future__ import annotations

import pytest

from repro.core.phases import InvalidPhaseTransition, Phase, transition


class TestPhaseSets:
    def test_pending_phases(self):
        pending = {phase for phase in Phase if phase.is_pending()}
        assert pending == {
            Phase.PAYLOAD,
            Phase.PROPOSE,
            Phase.RECOVER_R,
            Phase.RECOVER_P,
        }

    def test_start_commit_execute_are_not_pending(self):
        for phase in (Phase.START, Phase.COMMIT, Phase.EXECUTE):
            assert not phase.is_pending()

    def test_only_execute_is_terminal(self):
        assert Phase.EXECUTE.is_terminal()
        assert not Phase.COMMIT.is_terminal()


class TestTransitions:
    @pytest.mark.parametrize(
        "current,new",
        [
            (Phase.START, Phase.PAYLOAD),
            (Phase.START, Phase.PROPOSE),
            (Phase.START, Phase.COMMIT),
            (Phase.PAYLOAD, Phase.RECOVER_R),
            (Phase.PROPOSE, Phase.RECOVER_P),
            (Phase.PAYLOAD, Phase.COMMIT),
            (Phase.PROPOSE, Phase.COMMIT),
            (Phase.RECOVER_R, Phase.COMMIT),
            (Phase.RECOVER_P, Phase.COMMIT),
            (Phase.COMMIT, Phase.EXECUTE),
        ],
    )
    def test_allowed_transitions(self, current, new):
        assert transition(current, new) is new

    @pytest.mark.parametrize(
        "current,new",
        [
            (Phase.EXECUTE, Phase.COMMIT),
            (Phase.COMMIT, Phase.PROPOSE),
            (Phase.COMMIT, Phase.PAYLOAD),
            (Phase.EXECUTE, Phase.START),
            (Phase.PAYLOAD, Phase.PROPOSE),
            (Phase.PROPOSE, Phase.PAYLOAD),
            (Phase.PAYLOAD, Phase.EXECUTE),
        ],
    )
    def test_forbidden_transitions_raise(self, current, new):
        with pytest.raises(InvalidPhaseTransition):
            transition(current, new)

    def test_self_transition_is_allowed(self):
        assert transition(Phase.COMMIT, Phase.COMMIT) is Phase.COMMIT

    def test_exception_carries_phases(self):
        try:
            transition(Phase.EXECUTE, Phase.COMMIT)
        except InvalidPhaseTransition as exc:
            assert exc.current is Phase.EXECUTE
            assert exc.new is Phase.COMMIT
        else:  # pragma: no cover - defensive
            pytest.fail("expected InvalidPhaseTransition")

    def test_command_cannot_be_executed_before_commit(self):
        for phase in (Phase.START, Phase.PAYLOAD, Phase.PROPOSE):
            assert not phase.can_transition_to(Phase.EXECUTE)
