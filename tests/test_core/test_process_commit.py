"""Tests of the Tempo commit protocol (Algorithm 1/5): fast path, slow path,
timestamp agreement."""

from __future__ import annotations

import pytest

from repro.core.commands import Partitioner
from repro.core.config import ProtocolConfig
from repro.core.phases import Phase
from repro.core.process import TempoProcess
from repro.simulator.inline import RecordingNetwork


def build_cluster(r=5, f=1, **kwargs):
    config = ProtocolConfig(num_processes=r, faults=f)
    partitioner = Partitioner(1)
    kwargs.setdefault("watermark_gc", False)
    processes = [
        TempoProcess(process_id, config, partitioner=partitioner, **kwargs)
        for process_id in range(r)
    ]
    return processes, RecordingNetwork(processes)


class TestFastPath:
    def test_uncontended_command_commits_on_fast_path(self):
        processes, network = build_cluster()
        command = processes[0].new_command(["x"])
        processes[0].submit(command, 0.0)
        network.settle()
        kinds = {kind for _, _, kind in network.log}
        assert "MConsensus" not in kinds
        assert processes[0].committed_timestamp(command.dot) is not None

    def test_f1_always_takes_fast_path_even_under_contention(self):
        processes, network = build_cluster(r=5, f=1)
        commands = []
        for index in range(10):
            process = processes[index % 5]
            command = process.new_command(["hot"])
            process.submit(command, 0.0)
            commands.append(command)
        network.settle(rounds=15)
        kinds = [kind for _, _, kind in network.log]
        assert "MConsensus" not in kinds
        for command in commands:
            assert processes[0].committed_timestamp(command.dot) is not None

    def test_f2_may_take_slow_path_under_contention(self):
        processes, network = build_cluster(r=5, f=2)
        for index in range(12):
            process = processes[index % 5]
            command = process.new_command(["hot"])
            process.submit(command, 0.0)
        network.settle(rounds=20)
        kinds = [kind for _, _, kind in network.log]
        # With concurrent conflicting submissions and f=2, at least one
        # command should need consensus (proposal mismatch).
        assert "MConsensus" in kinds
        # And everything still commits.
        assert not processes[0].pending_dots()

    def test_commit_message_reaches_every_process(self):
        processes, network = build_cluster()
        command = processes[2].new_command(["y"])
        processes[2].submit(command, 0.0)
        network.settle()
        for process in processes:
            assert process.committed_timestamp(command.dot) is not None


class TestTimestampAgreement:
    def test_property1_same_timestamp_everywhere(self):
        processes, network = build_cluster(r=5, f=2)
        commands = []
        for index in range(15):
            process = processes[index % 5]
            command = process.new_command(["hot" if index % 2 == 0 else f"k{index}"])
            process.submit(command, 0.0)
            commands.append(command)
        network.settle(rounds=20)
        for command in commands:
            timestamps = {
                process.committed_timestamp(command.dot) for process in processes
            }
            timestamps.discard(None)
            assert len(timestamps) == 1, f"conflicting timestamps for {command.dot}"

    def test_conflicting_commands_get_distinct_timestamp_id_pairs(self):
        processes, network = build_cluster()
        first = processes[0].new_command(["x"])
        second = processes[1].new_command(["x"])
        processes[0].submit(first, 0.0)
        processes[1].submit(second, 0.0)
        network.settle()
        pair_first = (processes[0].committed_timestamp(first.dot), first.dot)
        pair_second = (processes[0].committed_timestamp(second.dot), second.dot)
        assert pair_first != pair_second


class TestSlowPath:
    def test_slow_path_commits_with_agreed_timestamp(self):
        # Force a slow path: f=2 and clocks arranged so the max proposal is
        # unique (Table 1, example b).
        processes, network = build_cluster(r=5, f=2)
        coordinator = processes[0]
        quorum = coordinator.quorum_system.fast_quorum(0, 0)
        others = [p for p in quorum if p != 0]
        processes[others[0]].clock.value = 6
        processes[others[1]].clock.value = 10
        processes[others[2]].clock.value = 5
        coordinator.clock.value = 5
        command = coordinator.new_command(["x"])
        coordinator.submit(command, 0.0)
        network.settle(rounds=15)
        kinds = [kind for _, _, kind in network.log]
        assert "MConsensus" in kinds and "MConsensusAck" in kinds
        timestamps = {
            process.committed_timestamp(command.dot) for process in processes
        }
        timestamps.discard(None)
        assert timestamps == {11}

    def test_slow_quorum_is_f_plus_one(self):
        processes, network = build_cluster(r=5, f=2)
        coordinator = processes[0]
        quorum = coordinator.quorum_system.fast_quorum(0, 0)
        others = [p for p in quorum if p != 0]
        processes[others[0]].clock.value = 6
        processes[others[1]].clock.value = 10
        processes[others[2]].clock.value = 5
        command = coordinator.new_command(["x"])
        coordinator.submit(command, 0.0)
        network.settle(rounds=15)
        consensus_targets = {
            destination
            for _, destination, kind in network.log
            if kind == "MConsensus"
        }
        # MConsensus goes to the whole partition; acks from f+1 suffice, and
        # the command commits.
        assert len(consensus_targets) >= processes[0].config.slow_quorum_size
        assert coordinator.committed_timestamp(command.dot) is not None


class TestPhases:
    def test_payload_processes_record_payload_phase(self):
        processes, network = build_cluster(r=5, f=1)
        command = processes[0].new_command(["x"])
        processes[0].submit(command, 0.0)
        network.step(0.0)  # deliver MPropose / MPayload only
        quorum = set(processes[0].quorum_system.fast_quorum(0, 0))
        outside = [p for p in range(5) if p not in quorum]
        for process_id in outside:
            assert processes[process_id].phase_of(command.dot) in (
                Phase.PAYLOAD,
                Phase.COMMIT,
            )

    def test_duplicate_propose_is_ignored(self):
        processes, network = build_cluster()
        command = processes[0].new_command(["x"])
        processes[0].submit(command, 0.0)
        network.settle()
        # Replay an MPropose after commit: the phase precondition rejects it.
        from repro.core.messages import MPropose

        before = processes[1].clock.value
        processes[1].deliver(
            0,
            MPropose(command.dot, command, {0: tuple(processes[0].quorum_system.fast_quorum(0, 0))}, 1),
            0.0,
        )
        assert processes[1].clock.value == before
        assert processes[1].phase_of(command.dot) in (Phase.COMMIT, Phase.EXECUTE)

    def test_new_command_mints_unique_dots(self):
        processes, _ = build_cluster()
        dots = {processes[0].new_command(["x"]).dot for _ in range(10)}
        assert len(dots) == 10

    def test_submit_requires_replicating_an_accessed_partition(self):
        config = ProtocolConfig(num_processes=3, faults=1, num_partitions=2)

        class _Partitioner(Partitioner):
            def __init__(self):
                super().__init__(num_partitions=2)

            def partition_of(self, key):
                return 1

        process = TempoProcess(0, config, partitioner=_Partitioner())
        command = process.new_command(["only-on-partition-1"])
        with pytest.raises(ValueError):
            process.submit(command, 0.0)
