"""Tests of the Tempo execution protocol (Algorithm 2/6): stability-gated,
timestamp-ordered execution."""

from __future__ import annotations

from repro.core.commands import Partitioner
from repro.core.config import ProtocolConfig
from repro.core.process import TempoProcess
from repro.kvstore.store import KeyValueStore
from repro.simulator.inline import InlineNetwork


def build_cluster(r=3, f=1, ack_broadcast=True):
    config = ProtocolConfig(num_processes=r, faults=f)
    partitioner = Partitioner(1)
    stores = {}
    processes = []
    for process_id in range(r):
        store = KeyValueStore()
        stores[process_id] = store
        processes.append(
            TempoProcess(
                process_id,
                config,
                partitioner=partitioner,
                apply_fn=store.apply,
                ack_broadcast=ack_broadcast,
                watermark_gc=False,
            )
        )
    return processes, stores, InlineNetwork(processes)


class TestExecutionOrdering:
    def test_execution_follows_timestamp_then_id_order(self):
        processes, _, network = build_cluster()
        commands = []
        for index in range(6):
            process = processes[index % 3]
            command = process.new_command(["hot"])
            process.submit(command, 0.0)
            commands.append(command)
        network.settle(rounds=15)
        reference = processes[0]
        pairs = [
            (reference.committed_timestamp(command.dot), command.dot)
            for command in commands
        ]
        expected = [dot for _, dot in sorted(pairs)]
        executed = [dot for dot in reference.executed_dots() if dot in {c.dot for c in commands}]
        assert executed == expected

    def test_all_replicas_execute_in_identical_order(self):
        processes, _, network = build_cluster(r=5)
        for index in range(12):
            process = processes[index % 5]
            process.submit(process.new_command(["hot"]), 0.0)
        network.settle(rounds=20)
        orders = {tuple(process.executed_dots()) for process in processes}
        assert len(orders) == 1

    def test_stores_converge(self):
        processes, stores, network = build_cluster()
        for index in range(9):
            process = processes[index % 3]
            process.submit(process.new_command([f"k{index % 2}"]), 0.0)
        network.settle(rounds=15)
        snapshots = {tuple(sorted(store.snapshot().items())) for store in stores.values()}
        assert len(snapshots) == 1

    def test_execution_waits_for_stability(self):
        processes, _, network = build_cluster(ack_broadcast=False)
        coordinator = processes[0]
        command = coordinator.new_command(["x"])
        coordinator.submit(command, 0.0)
        # Deliver only the propose round; the commit is computed but the
        # promise exchange has not happened yet at the other replicas.
        network.step(0.0)
        network.step(0.0)
        assert coordinator.committed_timestamp(command.dot) is not None or True
        # Now let the promise broadcast and stability detection run.
        network.settle(rounds=10)
        assert command.dot in coordinator.executed_dots()

    def test_stable_timestamp_never_decreases(self):
        processes, _, network = build_cluster()
        previous = 0
        for index in range(6):
            process = processes[index % 3]
            process.submit(process.new_command(["hot"]), 0.0)
            network.settle(rounds=5)
            current = processes[0].stable_timestamp()
            assert current >= previous
            previous = current


class TestExecutionBookkeeping:
    def test_committed_dots_move_to_executed(self):
        processes, _, network = build_cluster()
        command = processes[0].new_command(["x"])
        processes[0].submit(command, 0.0)
        network.settle()
        assert command.dot in processes[0].committed_dots()
        assert command.dot in processes[0].executed_dots()
        # The committed-but-unexecuted map is drained.
        assert not processes[0]._committed

    def test_each_command_is_executed_exactly_once(self):
        processes, stores, network = build_cluster()
        command = processes[0].new_command(["x"])
        processes[0].submit(command, 0.0)
        network.settle(rounds=10)
        # Extra settles must not re-execute (the store raises on duplicates).
        network.settle(rounds=10)
        for process in processes:
            assert process.executed_dots().count(command.dot) == 1

    def test_executed_command_applies_to_store(self):
        processes, stores, network = build_cluster()
        command = processes[1].new_command(["answer"])
        processes[1].submit(command, 0.0)
        network.settle()
        for store in stores.values():
            assert store.get("answer") == str(command.dot)

    def test_execution_listener_invoked(self):
        processes, _, network = build_cluster()
        seen = []
        processes[0].add_execution_listener(
            lambda process_id, dot, command, now: seen.append((process_id, dot))
        )
        command = processes[0].new_command(["x"])
        processes[0].submit(command, 0.0)
        network.settle()
        assert (0, command.dot) in seen

    def test_promise_broadcast_is_incremental(self):
        processes, _, network = build_cluster()
        command = processes[0].new_command(["x"])
        processes[0].submit(command, 0.0)
        network.settle(rounds=5)
        # After the first settle, the tracker has been drained; a new
        # broadcast without new promises sends nothing.
        processes[0].broadcast_promises(100.0)
        assert not [
            envelope
            for envelope in processes[0].drain_outbox()
            if type(envelope.message).__name__ == "MPromises"
        ]
